//! `vaengine` — command-line front end for the text processing engine.
//!
//! ```text
//! vaengine generate --flavour pubmed --size 4M --seed 7 --out ./corpus
//! vaengine analyze  --input ./corpus --procs 8 --out coords.csv
//! vaengine themeview --coords coords.csv --width 80 --height 30
//! ```
//!
//! `analyze` ingests a directory of MEDLINE or TREC-format files (format
//! sniffed per file), runs the full parallel pipeline on the requested
//! number of simulated processors, writes the master's coordinate file,
//! and prints the theme summary. `themeview` re-renders a saved
//! coordinate file as terrain.

use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;
use visual_analytics::engine::io::{read_coords_csv, write_coords_csv};
use visual_analytics::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage:\n  vaengine generate --flavour <pubmed|trec|newswire> --size <bytes[K|M]> [--seed N] --out <dir>\n  vaengine analyze --input <dir> [--procs N] [--clusters K] [--out coords.csv]\n  vaengine themeview --coords <coords.csv> [--width N] [--height N]"
    );
    exit(2);
}

struct Args(Vec<String>);

impl Args {
    fn value(&self, flag: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn value_or<'a>(&'a self, flag: &str, default: &'a str) -> &'a str {
        self.value(flag).unwrap_or(default)
    }
}

fn parse_size(s: &str) -> u64 {
    let (num, mult) = match s.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&s[..s.len() - 1], 1024u64),
        Some(b'M') | Some(b'm') => (&s[..s.len() - 1], 1024 * 1024),
        Some(b'G') | Some(b'g') => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    num.parse::<u64>().unwrap_or_else(|_| {
        eprintln!("bad size: {s}");
        exit(2)
    }) * mult
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        usage()
    };
    let args = Args(argv[1..].to_vec());
    match cmd.as_str() {
        "generate" => generate(&args),
        "analyze" => analyze(&args),
        "themeview" => themeview_cmd(&args),
        _ => usage(),
    }
}

fn generate(args: &Args) {
    let flavour = args.value_or("--flavour", "pubmed");
    let size = parse_size(args.value_or("--size", "2M"));
    let seed: u64 = args.value_or("--seed", "42").parse().unwrap_or(42);
    let Some(out) = args.value("--out") else {
        usage()
    };
    let spec = match flavour {
        "pubmed" => CorpusSpec::pubmed(size, seed),
        "trec" => CorpusSpec::trec(size, seed),
        "newswire" => CorpusSpec::newswire(size, seed),
        other => {
            eprintln!("unknown flavour {other} (pubmed|trec|newswire)");
            exit(2);
        }
    };
    let set = spec.generate();
    corpus::load::write_dir(&set, Path::new(out)).unwrap_or_else(|e| {
        eprintln!("write failed: {e}");
        exit(1);
    });
    println!(
        "wrote {} sources, {:.1} MB, {} records to {out}",
        set.sources.len(),
        set.total_bytes() as f64 / 1e6,
        set.total_records()
    );
}

fn analyze(args: &Args) {
    let Some(input) = args.value("--input") else {
        usage()
    };
    let procs: usize = args.value_or("--procs", "8").parse().unwrap_or(8);
    let out = PathBuf::from(args.value_or("--out", "coords.csv"));
    let sources = corpus::load::load_dir(Path::new(input)).unwrap_or_else(|e| {
        eprintln!("cannot load {input}: {e}");
        exit(1);
    });
    if sources.sources.is_empty() {
        eprintln!("no MEDLINE, TREC, or mbox format files found under {input}");
        exit(1);
    }
    println!(
        "loaded {} sources ({:.1} MB); analyzing on {procs} simulated processors…",
        sources.sources.len(),
        sources.total_bytes() as f64 / 1e6
    );
    let config = EngineConfig {
        n_clusters: args
            .value("--clusters")
            .and_then(|v| v.parse().ok())
            .unwrap_or(12),
        ..EngineConfig::default()
    };
    let run = run_engine(procs, Arc::new(CostModel::pnnl_2007()), &sources, &config);
    let master = run.master();
    let coords = master.coords.as_ref().expect("master coordinates");
    write_coords_csv(&out, coords, master.all_assignments.as_deref()).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        exit(1);
    });

    println!(
        "\n{} documents, vocabulary {}, N={} major terms, M={} dimensions",
        master.summary.total_docs,
        master.summary.vocab_size,
        master.summary.n_major,
        master.summary.m_dims
    );
    println!("themes:");
    let mut order: Vec<usize> = (0..master.cluster_sizes.len()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(master.cluster_sizes[c]));
    for &c in &order {
        if master.cluster_sizes[c] > 0 {
            println!(
                "  {:>6} docs — {}",
                master.cluster_sizes[c],
                master.cluster_labels[c].join(", ")
            );
        }
    }
    println!(
        "\nvirtual time: {:.1}s on {procs} procs of the modeled 2007 cluster",
        run.virtual_time
    );
    println!("coordinates written to {}", out.display());
}

fn themeview_cmd(args: &Args) {
    let Some(path) = args.value("--coords") else {
        usage()
    };
    let width: usize = args.value_or("--width", "80").parse().unwrap_or(80);
    let height: usize = args.value_or("--height", "30").parse().unwrap_or(30);
    let rows = read_coords_csv(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let coords: Vec<(f64, f64)> = rows.iter().map(|&(_, x, y, _)| (x, y)).collect();
    let terrain = Terrain::build(&coords, width, height, None);
    let peaks = terrain.peaks(9, 0.2, (width / 12).max(2));
    print!("{}", render_ascii(&terrain, &peaks));
    println!("{} documents, {} peaks", coords.len(), peaks.len());
}
