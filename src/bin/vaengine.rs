//! `vaengine` — command-line front end for the text processing engine.
//!
//! ```text
//! vaengine generate --flavour pubmed --size 4M --seed 7 --out ./corpus
//! vaengine analyze  --input ./corpus --procs 8 --out coords.csv
//! vaengine snapshot --input ./corpus --procs 8 --out engine.isnap
//! vaengine query    --snapshot engine.isnap --search "heart attack"
//! vaengine themeview --coords coords.csv --width 80 --height 30
//! ```
//!
//! `analyze` ingests a directory of MEDLINE or TREC-format files (format
//! sniffed per file), runs the full parallel pipeline on the requested
//! number of simulated processors, writes the master's coordinate file,
//! and prints the theme summary; `--checkpoint-dir` adds per-stage
//! checkpoints and `--resume` restarts a killed run from the last one.
//! `snapshot` runs the same pipeline but persists every engine artifact
//! into one checksummed snapshot file, which `query` then serves —
//! boolean and ranked retrieval plus cluster/rectangle drill-downs —
//! without re-running any pipeline stage. `themeview` re-renders a saved
//! coordinate file as terrain.
//!
//! Observability: `--trace-out` records per-rank stage/collective spans
//! and writes a Chrome trace-event file (open in `chrome://tracing` or
//! Perfetto); `--report-out` writes the structured run report as JSON
//! (the same per-stage table printed on stderr); `query --repeat N`
//! repeats each requested query kind and reports p50/p95/p99 serving
//! latency. `INSPIRE_LOG=error|warn|info|debug` sets the log level.
//!
//! Live ingestion: `ingest` appends document batches to a write-ahead
//! log and seals them into immutable index segments over a base
//! snapshot; `compact` folds the segments back into one; `query` and
//! `serve` accept `--ingest-dir` to answer from the merged
//! (base + segments) view, and the server hot-swaps its state whenever
//! the manifest generation advances — no restart, no dropped requests.

use inspire_serve::{ServeConfig, ServeRequest, ServeState, Server};
use inspire_trace::report::RunReport;
use inspire_trace::Registry;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use visual_analytics::engine::interact::{select_cluster, select_rect};
use visual_analytics::engine::io::{read_coords_csv, write_coords_csv};
use visual_analytics::engine::query::{self, Query};
use visual_analytics::engine::report::build_run_report;
use visual_analytics::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage:\n  vaengine generate --flavour <pubmed|trec|newswire> --size <bytes[K|M]> [--seed N] --out <dir>\n  vaengine analyze|run --input <dir> [--procs N] [--clusters K] [--out coords.csv]\n                   [--checkpoint-dir <dir>] [--resume] [--snapshot-out <file.isnap>]\n                   [--trace-out <trace.json>] [--report-out <report.json>]\n  vaengine snapshot --input <dir> --out <file.isnap> [--procs N] [--clusters K]\n                    [--checkpoint-dir <dir>] [--resume]\n                    [--trace-out <trace.json>] [--report-out <report.json>]\n  vaengine ingest --dir <ingest-dir> [--base <file.isnap>] [--input <file|dir>]\n                  [--delete id,id,...] [--crash-after-wal]\n  vaengine compact --dir <ingest-dir>\n  vaengine query --snapshot <file.isnap> | --ingest-dir <dir>\n                 [--search \"free text\"] [--query \"a AND NOT title:b\"]\n                 [--term <term>] [--top N] [--cluster C] [--rect x0,y0,x1,y1]\n                 [--similar <doc> | --similar-text \"free text\"] [--nprobe N]\n                 [--json] [--repeat N] [--report-out <report.json>]\n  vaengine serve --snapshot <file.isnap> | --ingest-dir <dir>\n                 [--addr 127.0.0.1:7878] [--workers N] [--cache N] [--queue N]\n                 [--access-log <file>] [--slow-log-n N] [--slow-threshold-ms N]\n  vaengine themeview --coords <coords.csv> [--width N] [--height N]"
    );
    exit(2);
}

struct Args(Vec<String>);

impl Args {
    fn value(&self, flag: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn value_or<'a>(&'a self, flag: &str, default: &'a str) -> &'a str {
        self.value(flag).unwrap_or(default)
    }

    fn has(&self, flag: &str) -> bool {
        self.0.iter().any(|a| a == flag)
    }
}

fn parse_size(s: &str) -> u64 {
    let (num, mult) = match s.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&s[..s.len() - 1], 1024u64),
        Some(b'M') | Some(b'm') => (&s[..s.len() - 1], 1024 * 1024),
        Some(b'G') | Some(b'g') => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    num.parse::<u64>().unwrap_or_else(|_| {
        eprintln!("bad size: {s}");
        exit(2)
    }) * mult
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        usage()
    };
    let args = Args(argv[1..].to_vec());
    match cmd.as_str() {
        "generate" => generate(&args),
        "analyze" | "run" => analyze(&args),
        "snapshot" => snapshot_cmd(&args),
        "ingest" => ingest_cmd(&args),
        "compact" => compact_cmd(&args),
        "query" => query_cmd(&args),
        "serve" => serve_cmd(&args),
        "themeview" => themeview_cmd(&args),
        _ => usage(),
    }
}

fn generate(args: &Args) {
    let flavour = args.value_or("--flavour", "pubmed");
    let size = parse_size(args.value_or("--size", "2M"));
    let seed: u64 = args.value_or("--seed", "42").parse().unwrap_or(42);
    let Some(out) = args.value("--out") else {
        usage()
    };
    let spec = match flavour {
        "pubmed" => CorpusSpec::pubmed(size, seed),
        "trec" => CorpusSpec::trec(size, seed),
        "newswire" => CorpusSpec::newswire(size, seed),
        other => {
            eprintln!("unknown flavour {other} (pubmed|trec|newswire)");
            exit(2);
        }
    };
    let set = spec.generate();
    corpus::load::write_dir(&set, Path::new(out)).unwrap_or_else(|e| {
        eprintln!("write failed: {e}");
        exit(1);
    });
    println!(
        "wrote {} sources, {:.1} MB, {} records to {out}",
        set.sources.len(),
        set.total_bytes() as f64 / 1e6,
        set.total_records()
    );
}

fn load_sources(input: &str) -> SourceSet {
    let sources = corpus::load::load_dir(Path::new(input)).unwrap_or_else(|e| {
        eprintln!("cannot load {input}: {e}");
        exit(1);
    });
    if sources.sources.is_empty() {
        eprintln!("no MEDLINE, TREC, or mbox format files found under {input}");
        exit(1);
    }
    sources
}

/// Engine configuration from the shared `analyze`/`snapshot` flags.
fn engine_config(args: &Args) -> EngineConfig {
    EngineConfig {
        n_clusters: args
            .value("--clusters")
            .and_then(|v| v.parse().ok())
            .unwrap_or(12),
        checkpoint_dir: args.value("--checkpoint-dir").map(PathBuf::from),
        resume: args.has("--resume"),
        snapshot_out: args.value("--snapshot-out").map(PathBuf::from),
        trace: args.value("--trace-out").is_some(),
        ..EngineConfig::default()
    }
}

/// Shared `--trace-out` / `--report-out` handling for `analyze` and
/// `snapshot`: export the Chrome trace, print the run-report table on
/// stderr, and persist the report JSON.
fn emit_observability(args: &Args, title: &str, run: &EngineRun, wall_s: f64) {
    if let Some(path) = args.value("--trace-out") {
        inspire_trace::chrome::write_chrome_trace(Path::new(path), &run.run.traces).unwrap_or_else(
            |e| {
                eprintln!("cannot write trace {path}: {e}");
                exit(1);
            },
        );
        println!("chrome trace written to {path}");
    }
    let mut report = build_run_report(title, &run.run, wall_s);
    let master = run.master();
    report.meta.push((
        "documents".to_string(),
        master.summary.total_docs.to_string(),
    ));
    report
        .meta
        .push(("vocab".to_string(), master.summary.vocab_size.to_string()));
    eprint!("{}", report.render_table());
    if let Some(path) = args.value("--report-out") {
        report.write_json(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot write report {path}: {e}");
            exit(1);
        });
        println!("run report written to {path}");
    }
}

fn print_themes(master: &EngineOutput) {
    println!(
        "\n{} documents, vocabulary {}, N={} major terms, M={} dimensions",
        master.summary.total_docs,
        master.summary.vocab_size,
        master.summary.n_major,
        master.summary.m_dims
    );
    println!("themes:");
    let mut order: Vec<usize> = (0..master.cluster_sizes.len()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(master.cluster_sizes[c]));
    for &c in &order {
        if master.cluster_sizes[c] > 0 {
            println!(
                "  {:>6} docs — {}",
                master.cluster_sizes[c],
                master.cluster_labels[c].join(", ")
            );
        }
    }
}

fn print_snapshot_report(report: &SnapshotReport) {
    println!(
        "snapshot: {} bytes written in {:.3}s",
        report.total_bytes, report.write_seconds
    );
    for (name, bytes) in &report.sections {
        println!("  {name:<8} {bytes:>12} bytes");
    }
}

fn analyze(args: &Args) {
    let Some(input) = args.value("--input") else {
        usage()
    };
    let procs: usize = args.value_or("--procs", "8").parse().unwrap_or(8);
    let out = PathBuf::from(args.value_or("--out", "coords.csv"));
    let sources = load_sources(input);
    println!(
        "loaded {} sources ({:.1} MB); analyzing on {procs} simulated processors…",
        sources.sources.len(),
        sources.total_bytes() as f64 / 1e6
    );
    let config = engine_config(args);
    let started = std::time::Instant::now();
    let run = run_engine(procs, Arc::new(CostModel::pnnl_2007()), &sources, &config);
    let wall_s = started.elapsed().as_secs_f64();
    let master = run.master();
    let coords = master.coords.as_ref().expect("master coordinates");
    write_coords_csv(&out, coords, master.all_assignments.as_deref()).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        exit(1);
    });

    print_themes(master);
    if let Some(report) = &master.snapshot_report {
        print_snapshot_report(report);
    }
    println!(
        "\nvirtual time: {:.1}s on {procs} procs of the modeled 2007 cluster",
        run.virtual_time
    );
    println!("coordinates written to {}", out.display());
    emit_observability(args, "analyze", &run, wall_s);
}

fn snapshot_cmd(args: &Args) {
    let Some(input) = args.value("--input") else {
        usage()
    };
    let Some(out) = args.value("--out") else {
        usage()
    };
    let procs: usize = args.value_or("--procs", "8").parse().unwrap_or(8);
    let sources = load_sources(input);
    println!(
        "loaded {} sources ({:.1} MB); building snapshot on {procs} simulated processors…",
        sources.sources.len(),
        sources.total_bytes() as f64 / 1e6
    );
    let config = EngineConfig {
        snapshot_out: Some(PathBuf::from(out)),
        ..engine_config(args)
    };
    let started = std::time::Instant::now();
    let run = run_engine(procs, Arc::new(CostModel::pnnl_2007()), &sources, &config);
    let wall_s = started.elapsed().as_secs_f64();
    let master = run.master();
    print_themes(master);
    let Some(report) = &master.snapshot_report else {
        eprintln!("snapshot write failed; see warnings above");
        exit(1);
    };
    print_snapshot_report(report);
    println!("snapshot written to {out}");
    emit_observability(args, "snapshot", &run, wall_s);
}

/// Sources to ingest from `--input`: one file, or a directory walked in
/// the same sorted order `snapshot` uses, so batch-by-batch ingestion
/// visits documents in the exact order a clean rebuild would.
fn load_ingest_sources(input: &str) -> Vec<corpus::Source> {
    let path = Path::new(input);
    if path.is_dir() {
        return load_sources(input).sources;
    }
    match corpus::load::load_file(path) {
        Ok(Some(src)) => vec![src],
        Ok(None) => {
            eprintln!("{input} is not a recognized MEDLINE, TREC, or mbox file");
            exit(1);
        }
        Err(e) => {
            eprintln!("cannot load {input}: {e}");
            exit(1);
        }
    }
}

fn ingest_cmd(args: &Args) {
    let Some(dir) = args.value("--dir") else {
        usage()
    };
    let base = args.value("--base").map(PathBuf::from);
    let mut ing = inspire_ingest::IngestDir::open_or_create(Path::new(dir), base.as_deref())
        .unwrap_or_else(|e| {
            eprintln!("cannot open ingest dir {dir}: {e}");
            exit(1);
        });
    let rec = &ing.recovery;
    if rec.sealed_records > 0 || rec.torn_bytes > 0 || rec.removed_strays > 0 {
        println!(
            "recovered: {} unsealed WAL records sealed, {} torn bytes truncated, {} strays removed",
            rec.sealed_records, rec.torn_bytes, rec.removed_strays
        );
    }
    if let Some(input) = args.value("--input") {
        let sources = load_ingest_sources(input);
        if args.has("--crash-after-wal") {
            // Crash-test hook: stop in the window where the records are
            // durable (WAL fsynced) but not yet visible (unsealed). The
            // next open replays and seals them.
            for src in sources {
                let name = src.name.clone();
                let bytes = ing
                    .append_wal(&inspire_ingest::WalRecord::AddBatch(src))
                    .unwrap_or_else(|e| {
                        eprintln!("WAL append failed: {e}");
                        exit(1);
                    });
                println!("wal: {name} durable at byte {bytes} (unsealed)");
            }
            println!("exiting before seal (--crash-after-wal)");
            exit(0);
        }
        for src in sources {
            let name = src.name.clone();
            let stats = ing.append(src).unwrap_or_else(|e| {
                eprintln!("ingest of {name} failed: {e}");
                exit(1);
            });
            println!(
                "sealed {name}: {} docs, wal {:.1} ms, seal {:.1} ms, {} ({} bytes), generation {}",
                stats.docs,
                stats.wal_s * 1e3,
                stats.seal_s * 1e3,
                stats.segment_file,
                stats.segment_bytes,
                stats.generation
            );
        }
    }
    if let Some(list) = args.value("--delete") {
        let ids: Vec<u32> = list
            .split(',')
            .map(|v| {
                v.trim().parse().unwrap_or_else(|_| {
                    eprintln!("bad --delete id {v:?}");
                    exit(2);
                })
            })
            .collect();
        let n = ids.len();
        let stats = ing.delete(ids).unwrap_or_else(|e| {
            eprintln!("delete failed: {e}");
            exit(1);
        });
        println!(
            "tombstoned {n} documents in {} , generation {}",
            stats.segment_file, stats.generation
        );
    }
    let m = ing.manifest();
    println!(
        "ingest dir {dir}: generation {}, {} segments, {} total docs",
        m.generation,
        m.segments.len(),
        ing.total_docs()
    );
}

fn compact_cmd(args: &Args) {
    let Some(dir) = args.value("--dir") else {
        usage()
    };
    match inspire_ingest::compact_dir(Path::new(dir)) {
        Ok(Some(r)) => println!(
            "compacted {} segments into 1 ({} docs, {} bytes, {} tombstoned postings dropped), generation {}",
            r.segments_before, r.docs, r.bytes_written, r.postings_dropped, r.generation
        ),
        Ok(None) => println!("nothing to compact (fewer than two segments)"),
        Err(e) => {
            eprintln!("compaction failed: {e}");
            exit(1);
        }
    }
}

/// Normalized `(min, max)` corners of a `--rect` selection.
type RectCorners = ((f64, f64), (f64, f64));

/// `--rect x0,y0,x1,y1` → normalized `(min, max)` corners.
fn parse_rect(rect: &str) -> Result<RectCorners, String> {
    let parts: Vec<f64> = rect.split(',').filter_map(|v| v.parse().ok()).collect();
    if parts.len() != 4 {
        return Err(format!("bad --rect {rect:?}, expected x0,y0,x1,y1"));
    }
    Ok((
        (parts[0].min(parts[2]), parts[1].min(parts[3])),
        (parts[0].max(parts[2]), parts[1].max(parts[3])),
    ))
}

/// Load a snapshot into serving state, printing the standard banner.
/// `--json` mode moves the banner to stderr so stdout carries only the
/// query bodies.
fn load_serve_state(path: &str, json: bool) -> ServeState {
    let started = std::time::Instant::now();
    let snap = EngineSnapshot::open(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot load snapshot {path}: {e}");
        exit(1);
    });
    let meta = snap.meta().clone();
    let banner = format!(
        "snapshot {path}: stage {:?}, {} docs, vocabulary {}, {} bytes, written at P={}",
        meta.stage,
        meta.total_docs,
        meta.vocab_size,
        snap.store().total_bytes(),
        meta.nprocs,
    );
    let state = ServeState::from_snapshot(snap).unwrap_or_else(|e| {
        eprintln!("cannot restore snapshot {path}: {e}");
        exit(1);
    });
    let loaded = format!("loaded in {:.1} ms", started.elapsed().as_secs_f64() * 1e3);
    if json {
        eprintln!("{banner}");
        eprintln!("{loaded}");
    } else {
        println!("{banner}");
        println!("{loaded}");
    }
    state
}

/// Load the merged (base + segments) serving view of an ingest
/// directory, printing a banner in the same style as snapshot loads.
fn load_live_serve_state(dir: &str, json: bool) -> ServeState {
    let started = std::time::Instant::now();
    let state = inspire_serve::load_live_state(Path::new(dir)).unwrap_or_else(|e| {
        eprintln!("cannot load ingest dir {dir}: {e}");
        exit(1);
    });
    let banner = format!(
        "ingest dir {dir}: generation {}, {} segments over base of {} docs, {} docs total",
        state.generation,
        state.segments_open(),
        state.meta.total_docs,
        inspire_core::query::SearchIndex::total_docs(&state),
    );
    let loaded = format!("loaded in {:.1} ms", started.elapsed().as_secs_f64() * 1e3);
    if json {
        eprintln!("{banner}");
        eprintln!("{loaded}");
    } else {
        println!("{banner}");
        println!("{loaded}");
    }
    state
}

fn query_cmd(args: &Args) {
    let ingest_dir = args.value("--ingest-dir");
    let snapshot = args.value("--snapshot");
    let path = match (snapshot, ingest_dir) {
        (Some(p), None) => p,
        (None, Some(d)) => d,
        _ => usage(),
    };
    let top: usize = args.value_or("--top", "10").parse().unwrap_or(10);
    let repeat: usize = args
        .value_or("--repeat", "1")
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    let json = args.has("--json");
    let started = std::time::Instant::now();
    let state = match ingest_dir {
        Some(d) => load_live_serve_state(d, json),
        None => load_serve_state(path, json),
    };
    let mut metrics = Registry::new();
    metrics.observe("snapshot_load_seconds", started.elapsed());
    let fail = |e: String| -> ! {
        eprintln!("query failed: {e}");
        exit(1);
    };

    // The typed request list, in CLI flag order. Both output modes
    // execute these; `--json` prints the exact bodies the HTTP server
    // serves (same `execute` path, byte for byte).
    let mut requests: Vec<ServeRequest> = Vec::new();
    if let Some(term) = args.value("--term") {
        requests.push(ServeRequest::Term {
            term: term.to_ascii_lowercase(),
            top,
        });
    }
    if let Some(expr) = args.value("--query") {
        let parsed =
            Query::parse(expr).unwrap_or_else(|e| fail(format!("bad query {expr:?}: {e}")));
        requests.push(ServeRequest::Boolean { expr: parsed, top });
    }
    if let Some(text) = args.value("--search") {
        requests.push(ServeRequest::Search {
            text: text.to_string(),
            top,
        });
    }
    if let Some(c) = args.value("--cluster") {
        let cluster: u32 = c
            .parse()
            .unwrap_or_else(|_| fail(format!("bad cluster id {c:?}")));
        requests.push(ServeRequest::Cluster { cluster, top });
    }
    if let Some(rect) = args.value("--rect") {
        let (min, max) = parse_rect(rect).unwrap_or_else(|e| fail(e));
        requests.push(ServeRequest::Rect { min, max, top });
    }
    let nprobe: usize = match args.value("--nprobe") {
        None => inspire_serve::request::DEFAULT_NPROBE,
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| fail(format!("bad --nprobe {v:?} (>= 1)"))),
    };
    if let Some(d) = args.value("--similar") {
        let doc: u32 = d
            .parse()
            .unwrap_or_else(|_| fail(format!("bad document id {d:?}")));
        requests.push(ServeRequest::Similar {
            doc: Some(doc),
            text: None,
            top,
            nprobe,
        });
    }
    if let Some(text) = args.value("--similar-text") {
        requests.push(ServeRequest::Similar {
            doc: None,
            text: Some(text.to_string()),
            top,
            nprobe,
        });
    }

    // Each requested query kind runs `repeat` times against the serving
    // metrics registry; results print on the first pass only.
    for pass in 0..repeat {
        let first = pass == 0;
        for req in &requests {
            let name = format!("query_{}_seconds", metric_kind(req));
            if json {
                let body = metrics.time(&name, || inspire_serve::execute(&state, req));
                match body {
                    Ok(b) => {
                        if first {
                            print!("{b}");
                        }
                    }
                    Err(e) => fail(e.message),
                }
            } else if let Err(e) = print_human(&state, req, &name, &mut metrics, first) {
                fail(e);
            }
        }
    }
    let summaries = metrics.summaries();
    if !summaries.is_empty() {
        eprint!("{}", metrics.render_table());
    }
    if let Some(out) = args.value("--report-out") {
        let report = RunReport {
            title: "query".to_string(),
            meta: vec![
                ("snapshot".to_string(), path.to_string()),
                ("repeat".to_string(), repeat.to_string()),
            ],
            wall_time_s: started.elapsed().as_secs_f64(),
            queries: summaries,
            ..RunReport::default()
        };
        report.write_json(Path::new(out)).unwrap_or_else(|e| {
            eprintln!("cannot write report {out}: {e}");
            exit(1);
        });
        println!("serving report written to {out}");
    }
}

/// Serving-metric kind segment per query kind (`query_<kind>_seconds`).
/// `Boolean` keeps the historical `eval` kind the run reports already
/// use, now in the `subsystem_name_unit` naming convention.
fn metric_kind(req: &ServeRequest) -> &'static str {
    match req {
        ServeRequest::Term { .. } => "term",
        ServeRequest::Boolean { .. } => "eval",
        ServeRequest::Search { .. } => "search",
        ServeRequest::Cluster { .. } => "cluster",
        ServeRequest::Rect { .. } => "rect",
        ServeRequest::Similar { .. } => "similar",
    }
}

/// Execute one request and print the human-readable result (first pass
/// only); timings land in `metrics` under `name` on every pass.
fn print_human(
    state: &ServeState,
    req: &ServeRequest,
    name: &str,
    metrics: &mut Registry,
    first: bool,
) -> Result<(), String> {
    let need_index = || {
        if state.has_index() {
            Ok(())
        } else {
            Err(format!(
                "stage {:?} snapshot has no inverted index",
                state.meta.stage
            ))
        }
    };
    type Layout<'a> = (&'a [(f64, f64)], &'a [u32]);
    let need_layout = || -> Result<Layout<'_>, String> {
        match (&state.coords, &state.assignments) {
            (Some(c), Some(a)) => Ok((c, a)),
            _ => Err(format!(
                "stage {:?} snapshot has no clustering/projection to drill into",
                state.meta.stage
            )),
        }
    };
    match req {
        ServeRequest::Term { term, top } => {
            need_index()?;
            let posts = metrics.time(name, || query::lookup_in(state, term));
            if first {
                let mut docs: Vec<u32> = posts.iter().map(|p| p.doc).collect();
                docs.dedup();
                println!(
                    "term {term:?}: {} postings in {} documents",
                    posts.len(),
                    docs.len()
                );
                for p in posts.iter().take(*top) {
                    println!("  doc {:>7}  field {}  freq {}", p.doc, p.field, p.freq);
                }
            }
        }
        ServeRequest::Boolean { expr, top } => {
            need_index()?;
            let docs = metrics.time(name, || query::evaluate_in(state, expr));
            if first {
                println!(
                    "query {:?}: {} matching documents",
                    expr.normalized(),
                    docs.len()
                );
                for d in docs.iter().take(*top) {
                    println!("  doc {d}");
                }
                if docs.len() > *top {
                    println!("  … and {} more", docs.len() - top);
                }
            }
        }
        ServeRequest::Search { text, top } => {
            need_index()?;
            let hits = metrics.time(name, || query::search_in(state, text, *top));
            if first {
                println!("search {text:?}: top {} of ranked hits", hits.len());
                for h in &hits {
                    println!("  doc {:>7}  score {:.4}", h.doc, h.score);
                }
            }
        }
        ServeRequest::Cluster { cluster, top } => {
            let (coords, assignments) = need_layout()?;
            let docs = metrics.time(name, || select_cluster(assignments, *cluster));
            if first {
                let label = state
                    .cluster_labels
                    .get(*cluster as usize)
                    .map(|l| l.join(", "))
                    .unwrap_or_default();
                println!("cluster {cluster} ({label}): {} documents", docs.len());
                for d in docs.iter().take(*top) {
                    let (x, y) = coords[*d as usize];
                    println!("  doc {d:>7}  ({x:.4}, {y:.4})");
                }
            }
        }
        ServeRequest::Rect { min, max, top } => {
            let (coords, assignments) = need_layout()?;
            let docs = metrics.time(name, || select_rect(coords, *min, *max));
            if first {
                println!(
                    "rect ({:.3},{:.3})–({:.3},{:.3}): {} documents",
                    min.0,
                    min.1,
                    max.0,
                    max.1,
                    docs.len()
                );
                for d in docs.iter().take(*top) {
                    println!("  doc {d:>7}  cluster {}", assignments[*d as usize]);
                }
            }
        }
        ServeRequest::Similar {
            doc,
            text,
            top,
            nprobe,
        } => {
            if !state.has_ann() {
                return Err(format!(
                    "stage {:?} snapshot has no ANN sections; rebuild snapshot",
                    state.meta.stage
                ));
            }
            let query: Vec<f64> = match (doc, text) {
                (Some(d), _) => {
                    if state.is_deleted(*d) {
                        return Err(format!("document {d} is deleted"));
                    }
                    state
                        .doc_signature(*d)
                        .ok_or_else(|| format!("unknown document {d}"))?
                        .to_vec()
                }
                (None, Some(t)) => state.embed_text(t).expect("ANN sections checked"),
                (None, None) => return Err("missing --similar or --similar-text".to_string()),
            };
            let (hits, stats) = metrics.time(name, || state.similar(&query, *top, *nprobe));
            if first {
                let what = match (doc, text) {
                    (Some(d), _) => format!("doc {d}"),
                    (_, Some(t)) => format!("{t:?}"),
                    _ => String::new(),
                };
                println!(
                    "similar to {what}: top {} (nprobe {nprobe}, {} clusters probed, {} candidates)",
                    hits.len(),
                    stats.probed,
                    stats.candidates
                );
                for h in &hits {
                    println!("  doc {:>7}  score {:.4}", h.doc, h.score);
                }
            }
        }
    }
    Ok(())
}

/// SIGINT/SIGTERM → a flag the serve loop polls. Raw `signal(2)` FFI:
/// the container bakes in no signal-handling crate, and a
/// store-to-atomic handler is async-signal-safe.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_shutdown_handler() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

fn serve_cmd(args: &Args) {
    let ingest_dir = args.value("--ingest-dir").map(PathBuf::from);
    let cfg = ServeConfig {
        addr: args.value_or("--addr", "127.0.0.1:7878").to_string(),
        workers: args.value_or("--workers", "8").parse().unwrap_or(8),
        cache_capacity: args.value_or("--cache", "1024").parse().unwrap_or(1024),
        queue_depth: args.value_or("--queue", "256").parse().unwrap_or(256),
        access_log: args.value("--access-log").map(PathBuf::from),
        slow_log_n: args.value_or("--slow-log-n", "32").parse().unwrap_or(32),
        slow_threshold_ms: args
            .value_or("--slow-threshold-ms", "0")
            .parse()
            .unwrap_or(0),
        ..ServeConfig::default()
    };
    let state = Arc::new(match &ingest_dir {
        Some(dir) => load_live_serve_state(&dir.display().to_string(), false),
        None => {
            let Some(path) = args.value("--snapshot") else {
                usage()
            };
            load_serve_state(path, false)
        }
    });
    let server = Server::start(Arc::clone(&state), &cfg).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", cfg.addr);
        exit(1);
    });
    println!(
        "serving on http://{} ({} workers, cache {}, queue {})",
        server.local_addr(),
        cfg.workers,
        cfg.cache_capacity,
        cfg.queue_depth
    );
    println!(
        "endpoints: /term /query /search /cluster /rect /similar /metrics /healthz /debug/slow"
    );
    println!(
        "formats: /metrics?format=prom (Prometheus), /debug/slow?format=chrome (trace viewer)"
    );
    install_shutdown_handler();
    // 50 ms shutdown poll; every 10th tick (~500 ms) also polls the
    // ingest manifest and hot-swaps the serving state when a seal or
    // compaction advanced the generation. In-flight requests keep the
    // Arc they started with, so a flip never drops or errors a request.
    let mut ticks = 0u64;
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
        ticks += 1;
        if let Some(dir) = &ingest_dir {
            if ticks.is_multiple_of(10) {
                if let Some(generation) = inspire_ingest::peek_generation(dir) {
                    if generation != server.generation() {
                        match inspire_serve::load_live_state(dir) {
                            Ok(next) => {
                                let seg = next.segments_open();
                                server.swap_state(Arc::new(next));
                                println!("generation {generation} live ({seg} segments)");
                            }
                            Err(e) => eprintln!("generation {generation} reload failed: {e}"),
                        }
                    }
                }
            }
        }
    }
    println!("shutdown signal received, draining…");
    let summary = server.shutdown();
    println!(
        "drained: {} served, {} errors, {} rejected, cache hit rate {:.1}%",
        summary.served,
        summary.errors,
        summary.rejected_429,
        summary.cache.hit_rate() * 100.0
    );
}

fn themeview_cmd(args: &Args) {
    let Some(path) = args.value("--coords") else {
        usage()
    };
    let width: usize = args.value_or("--width", "80").parse().unwrap_or(80);
    let height: usize = args.value_or("--height", "30").parse().unwrap_or(30);
    let rows = read_coords_csv(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let coords: Vec<(f64, f64)> = rows.iter().map(|&(_, x, y, _)| (x, y)).collect();
    let terrain = Terrain::build(&coords, width, height, None);
    let peaks = terrain.peaks(9, 0.2, (width / 12).max(2));
    print!("{}", render_ascii(&terrain, &peaks));
    println!("{} documents, {} peaks", coords.len(), peaks.len());
}
