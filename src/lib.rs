//! # visual-analytics — scalable visual analytics of massive textual datasets
//!
//! A production-quality Rust reproduction of *Scalable Visual Analytics of
//! Massive Textual Datasets* (Krishnan, Bohn, Cowley, Crow, Nieplocha —
//! IPPS 2007): the first scalable implementation of the IN-SPIRE text
//! processing engine, here rebuilt from scratch on an SPMD runtime with a
//! Global-Arrays-style one-sided communication substrate.
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`perfmodel`] — the virtual-time cost model of the paper's 2007
//!   Itanium/InfiniBand cluster.
//! * [`spmd`] — the SPMD runtime: threads as ranks, MPI-style collectives,
//!   per-rank virtual clocks.
//! * [`ga`] — global arrays, distributed hashmap, atomic task queue.
//! * [`corpus`] — synthetic PubMed-like and TREC GOV2-like corpora.
//! * [`engine`] (inspire-core) — the text processing pipeline: scan,
//!   FAST-INV inverted indexing with dynamic load balancing, Bookstein
//!   topicality, association matrix, knowledge signatures, distributed
//!   k-means, PCA projection.
//! * [`themeview`] — terrain visualization of the projected documents.
//! * [`ingest`] (inspire-ingest) — live ingestion: write-ahead log,
//!   immutable index segments, crash-safe manifest, compaction.
//! * [`serve`] (inspire-serve) — the concurrent serving tier, including
//!   merge-on-read over base snapshot + ingest segments.
//!
//! ## Quickstart
//!
//! ```
//! use visual_analytics::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. A small PubMed-like corpus.
//! let corpus = CorpusSpec::pubmed(64 * 1024, 42).generate();
//!
//! // 2. Run the engine on 4 simulated cluster processors.
//! let run = run_engine(
//!     4,
//!     Arc::new(CostModel::pnnl_2007()),
//!     &corpus,
//!     &EngineConfig::for_testing(),
//! );
//!
//! // 3. Rank 0 holds the 2-D coordinates; build the ThemeView terrain.
//! let coords = run.master().coords.clone().unwrap();
//! let terrain = Terrain::build(&coords, 40, 20, None);
//! assert!(!terrain.heights.is_empty());
//! println!("virtual time on the modeled cluster: {:.1}s", run.virtual_time);
//! ```

pub use corpus;
pub use ga;
pub use inspire_core as engine;
pub use inspire_ingest as ingest;
pub use inspire_serve as serve;
pub use perfmodel;
pub use spmd;
pub use themeview;

/// Everything needed for typical use.
pub mod prelude {
    pub use corpus::{CorpusSpec, CorpusStats, Flavour, SourceSet};
    pub use inspire_core::pipeline::{run_engine, EngineOutput, EngineRun};
    pub use inspire_core::seq::run_sequential;
    pub use inspire_core::{
        Balancing, ClusterMethod, EngineConfig, EngineSnapshot, Selection, Session, SnapshotReport,
        Stage, Theme,
    };
    pub use perfmodel::{ClusterSpec, CostModel, WorkloadScale};
    pub use spmd::{Component, Runtime};
    pub use themeview::{render_ascii, render_csv, render_pgm, Terrain};
}
