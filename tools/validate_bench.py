#!/usr/bin/env python3
"""Validate a BENCH JSON file produced by the bench binaries.

Replaces the old CI pattern of `grep -q '"key"'` against the newest
timestamped file: this actually parses the JSON, checks every section's
shape, types, and value ranges, and exits non-zero with a readable
message when something is off.

Usage:
  validate_bench.py results/BENCH_latest.json --kind scaling \
      [--max-index-msgs N] [--min-compression-ratio X]
  validate_bench.py results/BENCH_serving_latest.json --kind serving \
      [--require-zero-wrong] [--min-in-flight N] [--min-cache-hits N] \
      [--max-trace-overhead-pct X]
  validate_bench.py results/BENCH_postings_latest.json --kind postings \
      [--min-compression-ratio X]
  validate_bench.py results/BENCH_ingest_latest.json --kind ingest \
      [--max-ttv SECONDS] [--max-segments N]
  validate_bench.py results/BENCH_ann_latest.json --kind ann \
      [--min-recall-at-10 X] [--min-speedup X] [--min-compression-ratio X]
  validate_bench.py metrics.prom --kind prom [--require-ingest]

`--kind prom` validates a Prometheus text-format scrape of
`/metrics?format=prom` rather than a BENCH JSON: every sample family
must carry a `# TYPE` line, summary quantiles must be monotone, the
`_sum`/`_count` pairs must be consistent, and the serve-side metric
names the dashboards key on must be present (`--require-ingest` adds
the WAL/seal/compaction names a live ingest-backed server exposes).

Stdlib only — the CI image has no third-party Python packages.
"""

import argparse
import json
import sys

FAILURES = []


def fail(msg):
    FAILURES.append(msg)


def check(cond, msg):
    if not cond:
        fail(msg)
    return cond


def get(obj, path, typ):
    """Fetch a dotted path, checking presence and type; None on failure."""
    cur = obj
    for part in path.split("."):
        if not isinstance(cur, dict) or part not in cur:
            fail(f"missing field: {path}")
            return None
        cur = cur[part]
    # bool is an int subclass in Python; keep the check strict.
    if typ is float:
        ok = isinstance(cur, (int, float)) and not isinstance(cur, bool)
    elif typ is int:
        ok = isinstance(cur, int) and not isinstance(cur, bool)
    else:
        ok = isinstance(cur, typ)
    if not ok:
        fail(f"field {path}: expected {typ.__name__}, got {type(cur).__name__} ({cur!r})")
        return None
    return cur


def nonneg(obj, path, typ=float):
    v = get(obj, path, typ)
    if v is not None:
        check(v >= 0, f"field {path}: negative value {v}")
    return v


def check_histogram(h, where):
    ok = True
    for field in ("count", "min_ns", "max_ns", "p50_ns", "p95_ns", "p99_ns"):
        v = h.get(field)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(f"{where}: bad {field}: {v!r}")
            ok = False
    if not isinstance(h.get("name"), str) or not h["name"]:
        fail(f"{where}: missing histogram name")
        ok = False
    if ok and h["count"] > 0:
        if not h["p50_ns"] <= h["p95_ns"] <= h["p99_ns"] <= h["max_ns"]:
            fail(
                f"{where}: percentiles not monotone: "
                f"p50={h['p50_ns']} p95={h['p95_ns']} p99={h['p99_ns']} max={h['max_ns']}"
            )


def validate_scaling(doc, args):
    check(get(doc, "bench", str) == "intra_rank_scaling", "bench kind is not intra_rank_scaling")
    pos_docs = get(doc, "docs", int)
    check(pos_docs is None or pos_docs > 0, "docs must be positive")
    pf = get(doc, "parallel_fraction", float)
    if pf is not None:
        check(0.0 <= pf <= 1.0, f"parallel_fraction out of [0,1]: {pf}")

    # comm: the aggregated-exchange counters CI used to grep for.
    for k in ("scan_msgs", "scan_bytes", "index_msgs", "index_bytes",
              "index_batched_msgs", "index_scalar_equiv",
              "vocab_rpc_msgs_batched", "vocab_rpc_scalar_equiv"):
        nonneg(doc, f"comm.{k}", int)
    for k in ("index_batching_factor", "vocab_rpc_batching_factor"):
        nonneg(doc, f"comm.{k}", float)
    index_msgs = doc.get("comm", {}).get("index_msgs")
    if args.max_index_msgs is not None and isinstance(index_msgs, int):
        check(
            index_msgs <= args.max_index_msgs,
            f"comm.index_msgs regressed: {index_msgs} > cap {args.max_index_msgs}",
        )

    # snapshot: write/load costs and section byte counts.
    for k in ("pipeline_wall_s", "write_s", "load_s", "load_to_first_query_s",
              "load_speedup_vs_pipeline"):
        nonneg(doc, f"snapshot.{k}", float)
    total = nonneg(doc, "snapshot.total_bytes", int)
    check(total is None or total > 0, "snapshot.total_bytes must be positive")

    # Block-compressed index accounting: compressed section bytes vs the
    # fixed-width equivalent, with an optional hard floor on the ratio.
    comp = nonneg(doc, "snapshot.index_compressed_bytes", int)
    check(comp is None or comp > 0, "snapshot.index_compressed_bytes must be positive")
    nonneg(doc, "snapshot.index_fixed_equiv_bytes", int)
    ratio = nonneg(doc, "snapshot.index_compression_ratio", float)
    if args.min_compression_ratio is not None and ratio is not None:
        check(
            ratio >= args.min_compression_ratio,
            f"snapshot.index_compression_ratio regressed: {ratio} < "
            f"floor {args.min_compression_ratio}",
        )
    sections = get(doc, "snapshot.sections", dict)
    if sections is not None:
        check(len(sections) > 0, "snapshot.sections is empty")
        for name, size in sections.items():
            check(
                isinstance(size, int) and size >= 0,
                f"snapshot.sections.{name}: bad byte count {size!r}",
            )

    # imbalance: the P=4 run-report digest.
    procs = get(doc, "imbalance.procs", int)
    check(procs is None or procs >= 2, f"imbalance.procs too small: {procs}")
    nonneg(doc, "imbalance.virtual_time_s", float)
    nonneg(doc, "imbalance.max_imbalance_pct", float)
    stages = get(doc, "imbalance.stages", list)
    if stages is not None:
        check(len(stages) > 0, "imbalance.stages is empty")
        for i, row in enumerate(stages):
            if not isinstance(row, dict) or "name" not in row:
                fail(f"imbalance.stages[{i}]: not a stage row")

    # widths: the scaling sweep itself.
    widths = get(doc, "widths", list)
    if widths is not None:
        check(len(widths) >= 1, "widths is empty")
        for i, w in enumerate(widths):
            if not isinstance(w, dict):
                fail(f"widths[{i}]: not an object")
                continue
            for k in ("wall_s_median", "wall_s_min", "measured_speedup", "projected_speedup"):
                v = w.get(k)
                if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                    fail(f"widths[{i}].{k}: bad value {v!r}")
            if w.get("threads") != i + 1:
                fail(f"widths[{i}].threads: expected {i + 1}, got {w.get('threads')!r}")


def validate_serving(doc, args):
    check(get(doc, "bench", str) == "serving_load", "bench kind is not serving_load")
    srv = get(doc, "serving", dict)
    if srv is None:
        return
    clients = nonneg(doc, "serving.clients", int)
    check(clients is None or clients > 0, "serving.clients must be positive")
    nonneg(doc, "serving.requests", int)
    nonneg(doc, "serving.wall_s", float)
    qps = nonneg(doc, "serving.qps", float)
    ok = nonneg(doc, "serving.ok", int)
    errors = nonneg(doc, "serving.errors", int)
    nonneg(doc, "serving.rejected_429", int)
    wrong = nonneg(doc, "serving.wrong_answers", int)
    max_in_flight = nonneg(doc, "serving.max_in_flight", int)

    check(ok is None or ok > 0, "serving.ok: no successful requests at all")
    check(qps is None or qps > 0, "serving.qps must be positive")
    check(errors is None or errors == 0, f"serving.errors: {errors} failed requests")
    if args.require_zero_wrong:
        check(wrong == 0, f"serving.wrong_answers: {wrong} bodies diverged from the oracle")
    if args.min_in_flight is not None:
        check(
            isinstance(max_in_flight, int) and max_in_flight >= args.min_in_flight,
            f"serving.max_in_flight: {max_in_flight} < required {args.min_in_flight}",
        )

    hits = nonneg(doc, "serving.cache.hits", int)
    nonneg(doc, "serving.cache.misses", int)
    nonneg(doc, "serving.cache.evictions", int)
    rate = get(doc, "serving.cache.hit_rate", float)
    if rate is not None:
        check(0.0 <= rate <= 1.0, f"serving.cache.hit_rate out of [0,1]: {rate}")
    if args.min_cache_hits is not None:
        check(
            isinstance(hits, int) and hits >= args.min_cache_hits,
            f"serving.cache.hits: {hits} < required {args.min_cache_hits}",
        )

    kinds = get(doc, "serving.kinds", list)
    if kinds is not None:
        check(len(kinds) > 0, "serving.kinds is empty")
        for h in kinds:
            if isinstance(h, dict):
                check_histogram(h, f"serving.kinds[{h.get('name', '?')}]")
            else:
                fail("serving.kinds: non-object entry")

    # Tracing overhead: present as a number for in-process runs, null
    # for external --addr runs. The cap only makes sense for the former,
    # so enforcing it against a null value is itself a failure.
    overhead = srv.get("trace_overhead_pct", "absent")
    if overhead == "absent":
        fail("missing field: serving.trace_overhead_pct")
    elif overhead is not None and (not isinstance(overhead, (int, float))
                                   or isinstance(overhead, bool)):
        fail(f"serving.trace_overhead_pct: bad value {overhead!r}")
    if args.max_trace_overhead_pct is not None:
        if not isinstance(overhead, (int, float)) or isinstance(overhead, bool):
            fail("serving.trace_overhead_pct: cap requested but no measured value "
                 "(external --addr run?)")
        else:
            check(
                overhead <= args.max_trace_overhead_pct,
                f"serving.trace_overhead_pct regressed: {overhead:.3f}% > "
                f"cap {args.max_trace_overhead_pct}%",
            )


def validate_postings(doc, args):
    check(get(doc, "bench", str) == "postings_codec", "bench kind is not postings_codec")
    for k in ("lists", "postings", "encoded_bytes", "fixed_width_bytes",
              "seek_lists", "seek_postings"):
        v = nonneg(doc, k, int)
        if k in ("lists", "postings", "encoded_bytes", "fixed_width_bytes"):
            check(v is None or v > 0, f"field {k} must be positive")
    for k in ("encode_mb_s", "encode_postings_s", "decode_mb_s", "decode_postings_s",
              "scalar_varint_mb_s", "unrolled_varint_mb_s", "seek_postings_s"):
        v = nonneg(doc, k, float)
        check(v is None or v > 0, f"field {k}: throughput must be positive")
    speedup = nonneg(doc, "unrolled_speedup", float)
    check(speedup is None or speedup > 0, "unrolled_speedup must be positive")
    ratio = nonneg(doc, "compression_ratio", float)
    if args.min_compression_ratio is not None and ratio is not None:
        check(
            ratio >= args.min_compression_ratio,
            f"compression_ratio regressed: {ratio} < floor {args.min_compression_ratio}",
        )


def validate_ingest(doc, args):
    check(get(doc, "bench", str) == "ingest", "bench kind is not ingest")
    ing = get(doc, "ingest", dict)
    if ing is None:
        return
    docs = nonneg(doc, "ingest.docs", int)
    check(docs is None or docs > 0, "ingest.docs must be positive")
    batches = nonneg(doc, "ingest.batches", int)
    check(batches is None or batches > 0, "ingest.batches must be positive")
    nonneg(doc, "ingest.base_docs", int)

    rate = nonneg(doc, "ingest.wal_append_docs_per_s", float)
    check(rate is None or rate > 0, "ingest.wal_append_docs_per_s must be positive")
    nonneg(doc, "ingest.seal_latency_s", float)
    ttv = nonneg(doc, "ingest.time_to_visibility_s", float)
    if args.max_ttv is not None and ttv is not None:
        check(
            ttv <= args.max_ttv,
            f"ingest.time_to_visibility_s regressed: {ttv} > cap {args.max_ttv}",
        )

    amp = nonneg(doc, "ingest.write_amplification", float)
    check(amp is None or amp >= 1.0,
          f"ingest.write_amplification below 1: {amp} (physical < logical?)")
    logical = nonneg(doc, "ingest.logical_bytes", int)
    check(logical is None or logical > 0, "ingest.logical_bytes must be positive")
    nonneg(doc, "ingest.physical_bytes", int)

    before = nonneg(doc, "ingest.segments_before_compact", int)
    after = nonneg(doc, "ingest.segments_after_compact", int)
    if before is not None and after is not None:
        check(after <= before,
              f"compaction grew the segment count: {before} -> {after}")
    if args.max_segments is not None and after is not None:
        check(
            after <= args.max_segments,
            f"ingest.segments_after_compact: {after} > ceiling {args.max_segments}",
        )

    wrong = nonneg(doc, "ingest.wrong_answers", int)
    check(wrong == 0,
          f"ingest.wrong_answers: {wrong} merged bodies diverged from the rebuild")


def validate_ann(doc, args):
    check(get(doc, "bench", str) == "ann", "bench kind is not ann")
    for k in ("corpus_bytes", "docs", "m_dims", "k_centroids", "queries",
              "top", "deep", "quantized_bytes", "exact_sig_bytes"):
        v = nonneg(doc, k, int)
        check(v is None or v > 0, f"field {k} must be positive")
    nonneg(doc, "exhaustive_q_per_s", float)

    # Headline operating point: recall/speedup floors are the CI gates.
    nprobe = nonneg(doc, "ann_nprobe", int)
    k_cent = doc.get("k_centroids")
    if nprobe is not None and isinstance(k_cent, int):
        check(1 <= nprobe <= k_cent,
              f"ann_nprobe out of range: {nprobe} not in [1, {k_cent}]")
    for field in ("ann_recall_at_10", "ann_recall_at_100"):
        r = nonneg(doc, field, float)
        check(r is None or r <= 1.0, f"{field} above 1: {r}")
    nonneg(doc, "ann_candidate_count", float)
    speedup = nonneg(doc, "ann_speedup_vs_exhaustive", float)
    recall10 = doc.get("ann_recall_at_10")
    if args.min_recall_at_10 is not None and isinstance(recall10, (int, float)):
        check(
            recall10 >= args.min_recall_at_10,
            f"ann_recall_at_10 regressed: {recall10} < floor {args.min_recall_at_10}",
        )
    if args.min_speedup is not None and speedup is not None:
        check(
            speedup >= args.min_speedup,
            f"ann_speedup_vs_exhaustive regressed: {speedup} < floor {args.min_speedup}",
        )

    # Quantized signature store must actually shrink the f64 sections.
    ratio = nonneg(doc, "sig_compression_ratio", float)
    if args.min_compression_ratio is not None and ratio is not None:
        check(
            ratio >= args.min_compression_ratio,
            f"sig_compression_ratio regressed: {ratio} < floor {args.min_compression_ratio}",
        )

    # The nprobe/recall curve: monotone nprobe, recall/speedup in range,
    # ending at the exact point (nprobe = k has recall 1.0 by identity).
    sweep = get(doc, "sweep", list)
    if sweep is not None:
        check(len(sweep) >= 2, "sweep has fewer than 2 points")
        last_np = 0
        for i, p in enumerate(sweep):
            if not isinstance(p, dict):
                fail(f"sweep[{i}]: not an object")
                continue
            np_ = p.get("nprobe")
            if not isinstance(np_, int) or np_ <= last_np:
                fail(f"sweep[{i}].nprobe: not strictly increasing ({np_!r} after {last_np})")
            else:
                last_np = np_
            for field in ("recall_at_10", "recall_at_100"):
                v = p.get(field)
                if not isinstance(v, (int, float)) or isinstance(v, bool) \
                        or not 0.0 <= v <= 1.0:
                    fail(f"sweep[{i}].{field}: bad recall {v!r}")
            for field in ("candidates", "q_per_s", "speedup"):
                v = p.get(field)
                if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                    fail(f"sweep[{i}].{field}: bad value {v!r}")
        if sweep and isinstance(sweep[-1], dict):
            tail = sweep[-1]
            if isinstance(k_cent, int) and tail.get("nprobe") != k_cent:
                fail(f"sweep does not end at nprobe = k ({tail.get('nprobe')!r} != {k_cent})")
            for field in ("recall_at_10", "recall_at_100"):
                v = tail.get(field)
                if isinstance(v, (int, float)) and v != 1.0:
                    fail(f"sweep[-1].{field}: nprobe = k must have recall 1.0, got {v}")


# Serve-side families every scrape must expose, whatever backs the
# server. Quantile/sum/count suffixes are derived, not listed.
PROM_REQUIRED_SERVE = (
    "serve_requests_total",
    "serve_errors_total",
    "serve_cache_hits_total",
    "serve_cache_misses_total",
    "serve_uptime_seconds",
    "snapshot_generation",
)

# Families only an ingest-dir-backed server exposes (WAL gauges are
# computed live; the histograms come from the ingest metrics sidecar).
PROM_REQUIRED_INGEST = (
    "wal_backlog_bytes",
    "wal_unsealed_records",
    "seal_latency_seconds",
    "compaction_duration_seconds",
    "time_to_visibility_seconds",
    "snapshot_generation",
)


def parse_prom(text):
    """Prometheus text format -> (samples, types).

    samples: base family name -> {sample name or (name, quantile): value}
    types:   family name -> declared type from its `# TYPE` line
    """
    samples = {}
    types = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        parts = line.split()
        if len(parts) != 2:
            fail(f"prom line {lineno}: expected 'name value', got {line!r}")
            continue
        name, raw = parts
        quantile = None
        if "{" in name:
            name, _, labels = name.partition("{")
            labels = labels.rstrip("}")
            for lab in labels.split(","):
                k, _, v = lab.partition("=")
                if k == "quantile":
                    quantile = v.strip('"')
        try:
            value = float(raw)
        except ValueError:
            fail(f"prom line {lineno}: bad sample value {raw!r}")
            continue
        base = name
        for suffix in ("_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in types:
                base = base[: -len(suffix)]
        fam = samples.setdefault(base, {})
        fam[(name, quantile) if quantile is not None else name] = value
    return samples, types


def validate_prom(text, args):
    samples, types = parse_prom(text)
    check(len(samples) > 0, "no samples in prom scrape")

    required = list(PROM_REQUIRED_SERVE)
    if args.require_ingest:
        required += [n for n in PROM_REQUIRED_INGEST if n not in required]
    for name in required:
        check(name in samples, f"required metric family missing: {name}")

    for base, fam in samples.items():
        if base not in types:
            fail(f"family {base}: samples without a # TYPE line")
            continue
        if types[base] != "summary":
            continue
        # Summaries: monotone quantiles and a consistent _sum/_count pair.
        quantiles = {k[1]: v for k, v in fam.items() if isinstance(k, tuple)}
        ordered = sorted(quantiles.items(), key=lambda kv: float(kv[0]))
        values = [v for _, v in ordered]
        check(values == sorted(values),
              f"family {base}: quantiles not monotone: {ordered}")
        total = fam.get(f"{base}_sum")
        count = fam.get(f"{base}_count")
        check(total is not None, f"family {base}: missing {base}_sum")
        check(count is not None, f"family {base}: missing {base}_count")
        if total is not None and count is not None:
            if count == 0:
                check(total == 0, f"family {base}: count 0 but sum {total}")
            else:
                check(total > 0, f"family {base}: count {count:.0f} but sum {total}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("path", help="BENCH JSON file to validate")
    ap.add_argument("--kind", choices=("scaling", "serving", "postings", "ingest", "ann", "prom"),
                    required=True)
    ap.add_argument("--max-index-msgs", type=int, default=None,
                    help="scaling: fail if comm.index_msgs exceeds this")
    ap.add_argument("--min-compression-ratio", type=float, default=None,
                    help="scaling/postings: fail if the compression ratio is below this")
    ap.add_argument("--require-zero-wrong", action="store_true",
                    help="serving: fail on any wrong_answers")
    ap.add_argument("--min-in-flight", type=int, default=None,
                    help="serving: fail if max_in_flight is below this")
    ap.add_argument("--min-cache-hits", type=int, default=None,
                    help="serving: fail if cache.hits is below this")
    ap.add_argument("--max-ttv", type=float, default=None,
                    help="ingest: fail if time_to_visibility_s exceeds this")
    ap.add_argument("--max-segments", type=int, default=None,
                    help="ingest: fail if segments_after_compact exceeds this")
    ap.add_argument("--max-trace-overhead-pct", type=float, default=None,
                    help="serving: fail if trace_overhead_pct exceeds this "
                         "(or is unmeasured)")
    ap.add_argument("--min-recall-at-10", type=float, default=None,
                    help="ann: fail if ann_recall_at_10 is below this")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="ann: fail if ann_speedup_vs_exhaustive is below this")
    ap.add_argument("--require-ingest", action="store_true",
                    help="prom: also require the WAL/seal/compaction families")
    args = ap.parse_args()

    # `prom` validates raw Prometheus text, not a BENCH JSON document.
    if args.kind == "prom":
        try:
            with open(args.path, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"validate_bench: {args.path}: {e}", file=sys.stderr)
            return 1
        validate_prom(text, args)
        if FAILURES:
            print(f"validate_bench: {args.path}: {len(FAILURES)} problem(s)",
                  file=sys.stderr)
            for msg in FAILURES:
                print(f"  - {msg}", file=sys.stderr)
            return 1
        print(f"validate_bench: {args.path}: ok (prom)")
        return 0

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_bench: {args.path}: {e}", file=sys.stderr)
        return 1

    if args.kind == "scaling":
        validate_scaling(doc, args)
    elif args.kind == "postings":
        validate_postings(doc, args)
    elif args.kind == "ingest":
        validate_ingest(doc, args)
    elif args.kind == "ann":
        validate_ann(doc, args)
    else:
        validate_serving(doc, args)

    if FAILURES:
        print(f"validate_bench: {args.path}: {len(FAILURES)} problem(s)", file=sys.stderr)
        for msg in FAILURES:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print(f"validate_bench: {args.path}: ok ({args.kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
