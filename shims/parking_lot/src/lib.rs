//! Offline stand-in for `parking_lot`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of `parking_lot`'s API it uses — [`Mutex`],
//! [`RwLock`], and [`Condvar`] with the poison-free calling convention
//! (`lock()` returns the guard directly) — implemented on top of
//! `std::sync`. Like the real crate, locks do **not** poison: a panic
//! while holding a lock leaves it usable by other threads. The SPMD
//! runtime depends on this — its panic-propagation path locks the
//! rendezvous mutex from a `Drop` impl during unwinding, which must not
//! itself panic.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait`] can take it out and put the post-wait guard back,
/// giving parking_lot's `wait(&mut guard)` signature on std primitives.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Condition variable paired with [`Mutex`], `wait(&mut guard)` style.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard taken during wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
