//! Offline stand-in for `rayon`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of rayon's API it uses: `into_par_iter().map(..)
//! .collect()` over index ranges and vectors, plus [`ThreadPool`] /
//! [`ThreadPoolBuilder`] with [`ThreadPool::install`] scoping the
//! parallelism width.
//!
//! Execution model: a parallel iterator materializes its items, splits
//! them into at most `current_num_threads()` contiguous chunks, runs each
//! chunk on its own scoped OS thread, and concatenates the chunk results
//! **in chunk order** — so `collect` preserves input order exactly like
//! rayon's indexed collect. There is no work stealing; chunks are
//! near-equal by item count. For the coarse-grained batches this
//! workspace parallelizes (record batches, document chunks), that is
//! within noise of a stealing scheduler and keeps the implementation
//! auditable.
//!
//! `install` does not migrate the closure to a worker thread (it runs on
//! the caller); it only scopes the ambient width. This is deliberate: the
//! SPMD runtime's per-rank contexts are `!Send` and must stay on their
//! rank thread, with only the pure chunk closures fanning out.

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Ambient parallelism width; 0 = uninitialized (use the host default).
    static AMBIENT_WIDTH: Cell<usize> = const { Cell::new(0) };
}

fn host_default_width() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The number of threads parallel iterators fan out to on this thread.
pub fn current_num_threads() -> usize {
    let w = AMBIENT_WIDTH.with(Cell::get);
    if w == 0 {
        host_default_width()
    } else {
        w
    }
}

/// Error type mirroring rayon's builder failure (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a fixed-width [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pool width; 0 means the host default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            host_default_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A handle fixing the fan-out width for work run under [`install`].
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with this pool's width as the ambient parallelism for any
    /// parallel iterators it drives. Runs on the calling thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = AMBIENT_WIDTH.with(Cell::get);
        AMBIENT_WIDTH.with(|w| w.set(self.threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                AMBIENT_WIDTH.with(|w| w.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }
}

/// Map `items` through `f` in contiguous chunks across scoped threads;
/// results come back in input order.
fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let width = current_num_threads().min(items.len()).max(1);
    if width <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let base = n / width;
    let extra = n % width;
    // Chunk c gets base items, the first `extra` chunks one more.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(width);
    let mut it = items.into_iter();
    for c in 0..width {
        let len = base + usize::from(c < extra);
        chunks.push(it.by_ref().take(len).collect());
    }
    let f = &f;
    let mut out: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut flat = Vec::with_capacity(n);
    for part in &mut out {
        flat.append(part);
    }
    flat
}

pub mod iter {
    use super::par_map_vec;

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        type Item: Send;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    /// The driving subset of rayon's trait: `map` + order-preserving
    /// `collect`.
    pub trait ParallelIterator: Sized {
        type Item: Send;

        /// Materialize all items (driving any pending parallel stages).
        fn drive(self) -> Vec<Self::Item>;

        fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
            Map { base: self, f }
        }

        fn collect<C: From<Vec<Self::Item>>>(self) -> C {
            C::from(self.drive())
        }
    }

    /// Parallel iterator over an already-materialized item list.
    pub struct VecParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecParIter<T> {
        type Item = T;
        fn drive(self) -> Vec<T> {
            self.items
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecParIter<T>;
        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { items: self }
        }
    }

    macro_rules! impl_range_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Iter = VecParIter<$t>;
                fn into_par_iter(self) -> VecParIter<$t> {
                    VecParIter { items: self.collect() }
                }
            }
        )*};
    }

    impl_range_par_iter!(usize, u64, u32, i64, i32);

    /// A mapped parallel iterator; the map is applied in parallel when
    /// driven.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        type Item = R;
        fn drive(self) -> Vec<R> {
            par_map_vec(self.base.drive(), self.f)
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        let expect: Vec<usize> = (0..1000usize).map(|i| i * 2).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn vec_par_iter_roundtrip() {
        let v: Vec<String> = vec!["a".to_string(), "b".to_string()]
            .into_par_iter()
            .map(|s| s + "!")
            .collect();
        assert_eq!(v, vec!["a!", "b!"]);
    }

    #[test]
    fn install_scopes_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let inner = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            inner.install(|| assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn parallel_result_matches_serial_under_any_width() {
        let serial: Vec<u64> = (0..503u64).map(|i| i * i + 1).collect();
        for width in [1, 2, 4, 7] {
            let pool = ThreadPoolBuilder::new().num_threads(width).build().unwrap();
            let par: Vec<u64> =
                pool.install(|| (0..503u64).into_par_iter().map(|i| i * i + 1).collect());
            assert_eq!(par, serial, "width {width}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let _: Vec<()> = (0..64usize)
                .into_par_iter()
                .map(|_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    // Hold the chunk long enough that chunks overlap.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                })
                .collect();
        });
        assert!(ids.lock().unwrap().len() > 1);
    }
}
