//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small, deterministic subset of `rand` 0.9 it actually
//! uses: a seedable generator ([`rngs::StdRng`], xoshiro256** seeded via
//! SplitMix64), the [`Rng`] extension trait with `random` and
//! `random_range`, and [`SeedableRng::seed_from_u64`].
//!
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng`, but
//! every consumer in this workspace only relies on *determinism for a
//! given seed* and reasonable uniformity, both of which hold.

use std::ops::{Range, RangeInclusive};

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (or the unit
/// interval for floats) from a raw 64-bit stream.
pub trait FromRng {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample.
///
/// Implemented as blanket impls over [`SampleUniform`] (mirroring
/// upstream rand) so that integer-literal inference flows through
/// `random_range(0..3)` the same way it does with the real crate.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_closed<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_closed(rng, lo, hi)
    }
}

/// Unbiased integer sample in `[0, span)` (Lemire's multiply-shift with
/// rejection).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span {
            return (m >> 64) as u64;
        }
        // Small-threshold rejection pass: accept unless lo falls in the
        // biased region.
        let threshold = span.wrapping_neg() % span;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn sample_closed<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_uniform!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let u: $t = FromRng::from_rng(rng);
                lo + u * (hi - lo)
            }
            fn sample_closed<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_float_uniform!(f64, f32);

/// The user-facing generator trait: a raw 64-bit source plus sampling
/// conveniences, usable through `&mut dyn`-style unsized references.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` over its natural domain.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** generator seeded through SplitMix64 — deterministic,
    /// fast, and statistically solid for the synthetic-corpus workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniformish() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.random_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = r.random_range(0usize..=3);
            assert!(y <= 3);
            let f = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_bound() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut r = StdRng::seed_from_u64(5);
        let _ = sample(&mut r);
    }
}
