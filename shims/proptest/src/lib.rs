//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest's API its test suites use: the
//! [`proptest!`] macro over `arg in strategy` test functions, integer /
//! float range strategies, [`prop::collection::vec`], tuple strategies,
//! `any::<T>()`, a regex-subset string strategy, and
//! [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream, deliberate for an offline shim:
//! - **No shrinking.** A failing case reports its inputs via the normal
//!   assert panic message; it is not minimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from the test
//!   name, so failures reproduce exactly on re-run.
//! - Default case count is 32 (upstream 256); override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` as usual.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategies are usable behind references (string literals arrive as
    /// `&&str` from the macro).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.inner.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.inner.random_range(self.clone())
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.inner.random_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.inner.random_range(self.clone())
                }
            }
        )*};
    }

    impl_float_strategy!(f64, f32);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

    /// Types with a natural "anything goes" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.inner.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.inner.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning several magnitudes.
            let m: f64 = rng.inner.random_range(-1.0f64..1.0);
            let e: i32 = rng.inner.random_range(-60i32..60);
            m * (2.0f64).powi(e)
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    // ---- regex-subset string strategy -------------------------------

    /// One regex atom with its repetition bounds.
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    enum Atom {
        /// `.` — any char except newline.
        AnyNonNewline,
        /// `\PC` — any non-control char.
        NonControl,
        /// `[...]` — union of inclusive char ranges.
        Class(Vec<(char, char)>),
        Lit(char),
    }

    /// Non-ASCII chars mixed into `.` / `\PC` samples so unicode paths
    /// get exercised.
    const UNICODE_POOL: &[char] = &[
        'é', 'ß', 'λ', 'Ω', 'ñ', 'ü', '中', '文', '日', '本', '∑', '—', '“', '✓', '😀', '\u{00A0}',
    ];

    fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Atom {
        match chars.next().expect("dangling escape in pattern") {
            'P' | 'p' => {
                // Only the `\PC` (non-control) category is supported.
                let cat = chars.next().expect("escape category");
                assert_eq!(cat, 'C', "unsupported unicode category in shim");
                Atom::NonControl
            }
            'n' => Atom::Lit('\n'),
            't' => Atom::Lit('\t'),
            'r' => Atom::Lit('\r'),
            c => Atom::Lit(c),
        }
    }

    fn parse_class_char(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> char {
        match chars.next().expect("unterminated char class") {
            '\\' => match chars.next().expect("dangling escape in class") {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                c => c,
            },
            c => c,
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Atom {
        let mut ranges = Vec::new();
        while let Some(&c) = chars.peek() {
            if c == ']' {
                chars.next();
                return Atom::Class(ranges);
            }
            let lo = parse_class_char(chars);
            if chars.peek() == Some(&'-') {
                // A trailing `-` right before `]` is a literal dash.
                let mut ahead = chars.clone();
                ahead.next();
                if ahead.peek() == Some(&']') {
                    ranges.push((lo, lo));
                } else {
                    chars.next();
                    let hi = parse_class_char(chars);
                    assert!(lo <= hi, "inverted class range in pattern");
                    ranges.push((lo, hi));
                }
            } else {
                ranges.push((lo, lo));
            }
        }
        panic!("unterminated char class in pattern");
    }

    fn parse_repetition(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut min = String::new();
        while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
            min.push(chars.next().unwrap());
        }
        let min: usize = min.parse().expect("repetition lower bound");
        let max = if chars.peek() == Some(&',') {
            chars.next();
            let mut max = String::new();
            while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                max.push(chars.next().unwrap());
            }
            max.parse().expect("repetition upper bound")
        } else {
            min
        };
        assert_eq!(chars.next(), Some('}'), "unterminated repetition");
        (min, max)
    }

    fn parse_pattern(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::AnyNonNewline,
                '[' => parse_class(&mut chars),
                '\\' => parse_escape(&mut chars),
                other => Atom::Lit(other),
            };
            let (min, max) = parse_repetition(&mut chars);
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Lit(c) => *c,
            Atom::AnyNonNewline | Atom::NonControl => {
                // Mostly printable ASCII, with a unicode tail.
                if rng.inner.random_range(0u32..100) < 88 {
                    char::from(rng.inner.random_range(0x20u8..0x7F))
                } else {
                    UNICODE_POOL[rng.inner.random_range(0usize..UNICODE_POOL.len())]
                }
            }
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.inner.random_range(0usize..ranges.len())];
                char::from_u32(rng.inner.random_range(lo as u32..=hi as u32))
                    .expect("class range crosses surrogates")
            }
        }
    }

    /// String literals are regex-subset strategies, as in upstream
    /// proptest.
    impl Strategy for str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let pieces = parse_pattern(self);
            let mut out = String::new();
            for piece in &pieces {
                let n = rng.inner.random_range(piece.min..=piece.max);
                for _ in 0..n {
                    out.push(sample_char(&piece.atom, rng));
                }
            }
            out
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size specifications accepted by [`vec`]: an exact length or a
    /// half-open range.
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner.random_range(self.min..=self.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// Per-test RNG, seeded from the test name so each run of a given
    /// test sees the same case sequence.
    pub struct TestRng {
        pub(crate) inner: rand::rngs::StdRng,
    }

    impl TestRng {
        pub fn for_test(test_name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(h),
            }
        }
    }

    /// Runner configuration; only `cases` is meaningful in the shim.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of upstream's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: an optional `#![proptest_config(..)]` followed
/// by `#[test] fn name(arg in strategy, ...) { body }` items. Each body
/// runs `cases` times with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property body; panics (fails the test) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn string_strategy_honors_class_and_length() {
        let mut rng = TestRng::for_test("class");
        for _ in 0..200 {
            let s = "[a-z0-9 ]{0,40}".sample(&mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
    }

    #[test]
    fn string_strategy_space_to_tilde_range_with_newline() {
        let mut rng = TestRng::for_test("range");
        for _ in 0..200 {
            let s = "[ -~\\n]{0,60}".sample(&mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));
        }
    }

    #[test]
    fn dot_never_yields_newline() {
        let mut rng = TestRng::for_test("dot");
        for _ in 0..100 {
            let s = ".{0,80}".sample(&mut rng);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn non_control_category_excludes_controls() {
        let mut rng = TestRng::for_test("pc");
        for _ in 0..100 {
            let s = "\\PC{0,50}".sample(&mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn trailing_dash_in_class_is_literal() {
        let mut rng = TestRng::for_test("dash");
        let mut saw_dash = false;
        for _ in 0..500 {
            let s = "[a.;-]{1,4}".sample(&mut rng);
            assert!(s.chars().all(|c| "a.;-".contains(c)));
            saw_dash |= s.contains('-');
        }
        assert!(saw_dash);
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..10, 0..6).sample(&mut rng);
            assert!(v.len() < 6);
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = crate::collection::vec(0u64..10, 4usize).sample(&mut rng);
        assert_eq!(exact.len(), 4);
    }

    #[test]
    fn tuple_and_range_from_strategies() {
        let mut rng = TestRng::for_test("tuple");
        let (x, y) = (-1.0f64..1.0, 5u32..).sample(&mut rng);
        assert!((-1.0..1.0).contains(&x));
        assert!(y >= 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(a in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(a < 100);
            prop_assert!(v.len() < 10, "len {}", v.len());
            prop_assert_eq!(a, a);
        }
    }

    #[test]
    fn macro_generated_test_exists() {
        // `macro_roundtrip` above compiled as a #[test]; invoking it
        // directly also works.
        macro_roundtrip();
    }
}
