//! Knowledge signature (document vector) generation (paper §3.4, step 6).
//!
//! > *"Each process computes the knowledge signatures by cycling through
//! > each record. For each term that exists in that record, we obtain the
//! > row within the association matrix. These rows represent a term vector
//! > that when linearly combined with other term vectors and then
//! > normalized we form a signature of that record. During the linear
//! > combination, each term vector is multiplied by the frequency of that
//! > term within that record. … Each signature is normalized based on a
//! > L1 Norm."*
//!
//! The module also implements the §4.2 observation: with too few
//! dimensions *"many records had less than desirable signatures and some
//! were null"*. [`SignatureStats`] counts null and weak signatures so the
//! pipeline can apply the adaptive-dimensionality remedy (expand N and M
//! and regenerate).

use crate::assoc::AssociationMatrix;
use crate::scan::ScanOutput;
use ga::GlobalArray2D;
use perfmodel::WorkKind;
use spmd::{Ctx, ReduceOp};

/// A signature with fewer than this many non-zero dimensions is "weak".
pub const WEAK_DIMS: usize = 3;

/// Documents per intra-rank chunk for signature generation. Fixed so
/// chunk boundaries — and the order signature blocks concatenate in —
/// do not depend on the pool width.
const SIG_DOC_CHUNK: usize = 64;

/// Quality statistics over all documents (globally reduced).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignatureStats {
    pub total: u64,
    /// Documents whose signature is identically zero (no major terms).
    pub null: u64,
    /// Documents with a non-null signature on fewer than [`WEAK_DIMS`]
    /// dimensions.
    pub weak: u64,
}

impl SignatureStats {
    /// Fraction of documents with null-or-weak signatures.
    pub fn weak_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.null + self.weak) as f64 / self.total as f64
        }
    }
}

/// The signatures of this rank's documents plus the persisted global
/// array (the engine's "valuable intermediate product", §2.1 step 7).
pub struct Signatures {
    /// Row-major `n_local × m` local signature block.
    pub local: Vec<f64>,
    /// Signature dimensionality (M). Can be zero when no terms qualified
    /// as topics (degenerate corpora); documents still exist and project
    /// to the origin.
    pub m: usize,
    /// Number of local documents (tracked explicitly so `m == 0` does not
    /// lose them).
    n_local: usize,
    /// The global docs×M array holding every rank's signatures.
    pub global: GlobalArray2D<f64>,
    /// Global quality statistics.
    pub stats: SignatureStats,
}

impl Signatures {
    /// Signature of local document index `i` (empty slice when `m == 0`).
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.n_local);
        &self.local[i * self.m..(i + 1) * self.m]
    }

    pub fn n_local(&self) -> usize {
        self.n_local
    }

    /// Reassemble signatures from persisted parts (the snapshot restore
    /// path). `local` must be the row-major `n_local × m` block and
    /// `global` the already-populated docs×M array.
    pub fn from_parts(
        local: Vec<f64>,
        m: usize,
        n_local: usize,
        global: GlobalArray2D<f64>,
        stats: SignatureStats,
    ) -> Signatures {
        debug_assert_eq!(local.len(), n_local * m);
        Signatures {
            local,
            m,
            n_local,
            global,
            stats,
        }
    }
}

/// Generate signatures for this rank's documents. Collective.
pub fn generate(ctx: &Ctx, scan: &ScanOutput, am: &AssociationMatrix) -> Signatures {
    let m = am.m;
    // Each document's signature depends only on its own terms, so the
    // per-doc loop fans out over the intra-rank pool: each fixed-size
    // chunk produces its block of rows, and blocks concatenate in chunk
    // index order — bit-identical to the serial loop at any pool width.
    // The Flops charge lands once, after the merge.
    let blocks: Vec<(Vec<f64>, u64, u64, u64)> =
        ctx.pool()
            .map_chunks(scan.docs.len(), SIG_DOC_CHUNK, |chunk| {
                let mut block = vec![0.0f64; chunk.len() * m];
                let mut null = 0u64;
                let mut weak = 0u64;
                let mut flops = 0u64;
                for (bi, d) in scan.docs[chunk].iter().enumerate() {
                    let sig = &mut block[bi * m..(bi + 1) * m];
                    for (t, freq) in d.distinct_terms() {
                        if let Some(row) = am.row(t) {
                            let w = freq as f64;
                            for (s, &a) in sig.iter_mut().zip(row) {
                                *s += w * a;
                            }
                            flops += 2 * m as u64;
                        }
                    }
                    // L1 normalization.
                    let l1: f64 = sig.iter().map(|x| x.abs()).sum();
                    flops += m as u64;
                    if l1 == 0.0 {
                        null += 1;
                    } else {
                        for s in sig.iter_mut() {
                            *s /= l1;
                        }
                        if sig.iter().filter(|&&x| x != 0.0).count() < WEAK_DIMS {
                            weak += 1;
                        }
                    }
                }
                (block, null, weak, flops)
            });
    let mut local = Vec::with_capacity(scan.docs.len() * m);
    let mut null = 0u64;
    let mut weak = 0u64;
    let mut flops = 0u64;
    for (block, n, w, f) in blocks {
        local.extend_from_slice(&block);
        null += n;
        weak += w;
        flops += f;
    }
    ctx.charge(WorkKind::Flops, flops);

    // Persist into the global signature array (step 7).
    let global = GlobalArray2D::<f64>::create(ctx, scan.total_docs as usize, m);
    if !scan.docs.is_empty() {
        global.put_rows(ctx, scan.doc_base as usize, &local);
    }
    ctx.barrier();

    // Global quality statistics.
    let sums = ctx.allreduce_u64(vec![scan.docs.len() as u64, null, weak], ReduceOp::Sum);
    let stats = SignatureStats {
        total: sums[0],
        null: sums[1],
        weak: sums[2],
    };

    Signatures {
        local,
        m,
        n_local: scan.docs.len(),
        global,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc;
    use crate::config::EngineConfig;
    use crate::index::invert;
    use crate::scan::scan;
    use crate::topicality::select_topics;
    use corpus::CorpusSpec;
    use spmd::Runtime;

    fn corpus() -> corpus::SourceSet {
        CorpusSpec {
            source_bytes: 8 * 1024,
            ..CorpusSpec::pubmed(48 * 1024, 31)
        }
        .generate()
    }

    fn full_sigs(p: usize) -> (usize, Vec<f64>, SignatureStats) {
        let src = corpus();
        let rt = Runtime::for_testing();
        let mut res = rt.run(p, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let topics = select_topics(ctx, &idx, &cfg, cfg.n_major, cfg.m_dims());
            let am = assoc::build(ctx, &s, &idx, &topics);
            let sigs = generate(ctx, &s, &am);
            ctx.barrier();
            // Materialize the full matrix for comparison.
            (sigs.m, sigs.global.to_vec_collective(ctx), sigs.stats)
        });
        res.results.remove(0)
    }

    #[test]
    fn signatures_l1_normalized() {
        let (m, all, _) = full_sigs(2);
        let n_docs = all.len() / m;
        let mut checked = 0;
        for d in 0..n_docs {
            let row = &all[d * m..(d + 1) * m];
            let l1: f64 = row.iter().map(|x| x.abs()).sum();
            if l1 > 0.0 {
                assert!((l1 - 1.0).abs() < 1e-9, "doc {d} l1 {l1}");
                checked += 1;
            }
        }
        assert!(checked > 0, "no non-null signatures at all");
    }

    #[test]
    fn signatures_identical_across_p() {
        let (m1, v1, st1) = full_sigs(1);
        for p in [2, 3] {
            let (m, v, st) = full_sigs(p);
            assert_eq!(m, m1);
            assert_eq!(st, st1, "stats differ at P={p}");
            assert_eq!(v.len(), v1.len());
            for (i, (a, b)) in v.iter().zip(&v1).enumerate() {
                assert!((a - b).abs() < 1e-9, "P={p} sig[{i}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn signatures_nonnegative() {
        // Association entries are probabilities and frequencies are
        // positive, so signatures live on the simplex.
        let (_, v, _) = full_sigs(2);
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn stats_account_for_all_docs() {
        let (m, v, st) = full_sigs(2);
        assert_eq!(st.total as usize, v.len() / m);
        assert!(st.null + st.weak <= st.total);
    }

    #[test]
    fn weak_fraction_bounds() {
        let s = SignatureStats {
            total: 100,
            null: 5,
            weak: 15,
        };
        assert!((s.weak_fraction() - 0.2).abs() < 1e-12);
        let empty = SignatureStats {
            total: 0,
            null: 0,
            weak: 0,
        };
        assert_eq!(empty.weak_fraction(), 0.0);
    }
}
