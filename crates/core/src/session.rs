//! The analyst session: a high-level facade over the whole system.
//!
//! The paper's §2 describes the analyst workflow the engine exists to
//! serve: load a collection, see its themes, search and browse, select
//! and drill down. [`Session`] packages that workflow as a library API so
//! a frontend (or the `vaengine` CLI, or a test) doesn't have to
//! orchestrate crates by hand:
//!
//! ```text
//! let session = Session::analyze(corpus, &config, 8, model);
//! session.themes();              // labeled clusters with sizes
//! session.coords();              // the 2-D layout
//! session.search("cardi...");    // ranked retrieval
//! let sub = session.drill_down(&selection);  // a new Session
//! ```
//!
//! Each drill-down produces a *new* session over the selected subset —
//! the stack of sessions is the analyst's navigation history.

use crate::config::EngineConfig;
use crate::index::invert;
use crate::interact::{select_cluster, select_radius, select_rect, subset_corpus};
use crate::pipeline::{run_engine, EngineOutput};
use crate::query::{search as tfidf_search, Hit};
use crate::scan::scan;
use crate::DocId;
use corpus::SourceSet;
use perfmodel::CostModel;
use spmd::Runtime;
use std::sync::Arc;

/// One theme (cluster) as the analyst sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct Theme {
    pub cluster: u32,
    pub size: u64,
    /// Most characteristic topic terms, best first.
    pub labels: Vec<String>,
}

/// A selection of documents for drill-down.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// Axis-aligned rectangle in layout space.
    Rect { min: (f64, f64), max: (f64, f64) },
    /// Circle in layout space (the "lasso a mountain" gesture).
    Radius { center: (f64, f64), radius: f64 },
    /// One theme.
    Cluster(u32),
    /// Explicit document ids.
    Docs(Vec<DocId>),
}

/// An analyzed collection: the corpus plus the engine's products.
pub struct Session {
    sources: SourceSet,
    config: EngineConfig,
    nprocs: usize,
    model: Arc<CostModel>,
    master: EngineOutput,
    virtual_time: f64,
}

impl Session {
    /// Run the full pipeline over `sources` on `nprocs` simulated
    /// processors.
    pub fn analyze(
        sources: SourceSet,
        config: &EngineConfig,
        nprocs: usize,
        model: Arc<CostModel>,
    ) -> Session {
        let run = run_engine(nprocs, model.clone(), &sources, config);
        let virtual_time = run.virtual_time;
        let master = run.outputs.into_iter().next().expect("rank 0 output");
        Session {
            sources,
            config: config.clone(),
            nprocs,
            model,
            master,
            virtual_time,
        }
    }

    /// Number of documents in this session's collection.
    pub fn n_docs(&self) -> usize {
        self.master.summary.total_docs as usize
    }

    /// The 2-D document layout (in global document order).
    pub fn coords(&self) -> &[(f64, f64)] {
        self.master.coords.as_deref().expect("master holds coords")
    }

    /// Cluster assignment per document.
    pub fn assignments(&self) -> &[u32] {
        self.master
            .all_assignments
            .as_deref()
            .expect("master holds assignments")
    }

    /// The discovered themes, largest first.
    pub fn themes(&self) -> Vec<Theme> {
        let mut out: Vec<Theme> = self
            .master
            .cluster_sizes
            .iter()
            .enumerate()
            .filter(|(_, &size)| size > 0)
            .map(|(c, &size)| Theme {
                cluster: c as u32,
                size,
                labels: self.master.cluster_labels[c].clone(),
            })
            .collect();
        out.sort_by_key(|t| std::cmp::Reverse(t.size));
        out
    }

    /// Engine bookkeeping (dimensions, vocabulary, timings).
    pub fn summary(&self) -> &crate::pipeline::EngineSummary {
        &self.master.summary
    }

    /// Virtual seconds the analysis took on the modeled cluster.
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }

    /// Ranked retrieval against this session's collection.
    ///
    /// Reruns scan+index (the session does not pin the engine's internal
    /// structures across the thread boundary); acceptable for interactive
    /// corpus sizes, and exercised this way by the CLI.
    pub fn search(&self, query: &str, top: usize) -> Vec<Hit> {
        let rt = Runtime::new(self.model.clone());
        let sources = &self.sources;
        let config = &self.config;
        let mut res = rt.run(self.nprocs.min(4), |ctx| {
            let s = scan(ctx, sources, config);
            let idx = invert(ctx, &s, config);
            tfidf_search(ctx, &s, &idx, query, top)
        });
        res.results.remove(0)
    }

    /// Resolve a [`Selection`] to document ids.
    pub fn select(&self, selection: &Selection) -> Vec<DocId> {
        match selection {
            Selection::Rect { min, max } => select_rect(self.coords(), *min, *max),
            Selection::Radius { center, radius } => select_radius(self.coords(), *center, *radius),
            Selection::Cluster(c) => select_cluster(self.assignments(), *c),
            Selection::Docs(ids) => {
                let n = self.n_docs() as DocId;
                let mut ids: Vec<DocId> = ids.iter().copied().filter(|&d| d < n).collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            }
        }
    }

    /// Drill down: re-analyze the selected documents as their own
    /// collection, returning the new (child) session.
    ///
    /// Returns `None` for an empty selection.
    pub fn drill_down(&self, selection: &Selection) -> Option<Session> {
        let docs = self.select(selection);
        if docs.is_empty() {
            return None;
        }
        let sub = subset_corpus(&self.sources, &docs);
        Some(Session::analyze(
            sub,
            &self.config,
            self.nprocs,
            self.model.clone(),
        ))
    }

    /// The underlying corpus (e.g., to persist a selection).
    pub fn sources(&self) -> &SourceSet {
        &self.sources
    }

    /// The master engine output, for advanced consumers.
    pub fn output(&self) -> &EngineOutput {
        &self.master
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusSpec;

    fn session() -> Session {
        let sources = CorpusSpec::pubmed(192 * 1024, 777).generate();
        Session::analyze(
            sources,
            &EngineConfig::for_testing(),
            3,
            Arc::new(CostModel::zero()),
        )
    }

    #[test]
    fn themes_ordered_and_consistent() {
        let s = session();
        let themes = s.themes();
        assert!(!themes.is_empty());
        for w in themes.windows(2) {
            assert!(w[0].size >= w[1].size);
        }
        let total: u64 = themes.iter().map(|t| t.size).sum();
        assert_eq!(total, s.n_docs() as u64);
    }

    #[test]
    fn coords_and_assignments_cover_all_docs() {
        let s = session();
        assert_eq!(s.coords().len(), s.n_docs());
        assert_eq!(s.assignments().len(), s.n_docs());
    }

    #[test]
    fn search_returns_ranked_hits() {
        let s = session();
        // Search for a theme label — it must hit documents.
        let term = s.themes()[0].labels[0].clone();
        let hits = s.search(&term, 5);
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn drill_down_by_cluster_matches_theme_size() {
        let s = session();
        let theme = &s.themes()[0];
        let child = s
            .drill_down(&Selection::Cluster(theme.cluster))
            .expect("non-empty selection");
        assert_eq!(child.n_docs() as u64, theme.size);
        // The child found its own sub-structure.
        assert!(!child.themes().is_empty());
    }

    #[test]
    fn drill_down_docs_selection_dedups_and_bounds() {
        let s = session();
        let picked = Selection::Docs(vec![0, 1, 1, 2, 9_999_999]);
        let ids = s.select(&picked);
        assert_eq!(ids, vec![0, 1, 2]);
        let child = s.drill_down(&picked).unwrap();
        assert_eq!(child.n_docs(), 3);
    }

    #[test]
    fn empty_selection_yields_no_session() {
        let s = session();
        assert!(s
            .drill_down(&Selection::Rect {
                min: (1e9, 1e9),
                max: (1e9 + 1.0, 1e9 + 1.0)
            })
            .is_none());
    }

    #[test]
    fn nested_drill_down() {
        let s = session();
        let child = s
            .drill_down(&Selection::Cluster(s.themes()[0].cluster))
            .unwrap();
        // Drill again into the child's largest theme.
        let grandchild = child.drill_down(&Selection::Cluster(child.themes()[0].cluster));
        if let Some(g) = grandchild {
            assert!(g.n_docs() <= child.n_docs());
        }
    }
}
