//! Small dense linear algebra: symmetric Jacobi eigendecomposition.
//!
//! The projection stage needs the top eigenvectors of an M×M covariance
//! matrix (M is the signature dimensionality, tens to a few hundred).
//! The cyclic Jacobi method is simple, numerically robust for symmetric
//! matrices, and deterministic — ideal at this size; no external linear
//! algebra dependency is needed.

/// Eigendecomposition result: pairs sorted by descending eigenvalue.
#[derive(Debug, Clone)]
pub struct Eigen {
    pub values: Vec<f64>,
    /// Row `k` of `vectors` is the unit eigenvector for `values[k]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix given in
/// row-major order. Returns all eigenpairs sorted by descending
/// eigenvalue. Eigenvector signs are canonicalized (largest-magnitude
/// component positive) so results are reproducible.
///
/// # Panics
/// Panics if `a.len() != n * n`.
pub fn jacobi_eigen(a: &[f64], n: usize, max_sweeps: usize) -> Eigen {
    assert_eq!(a.len(), n * n, "matrix must be n x n");
    if n == 0 {
        return Eigen {
            values: Vec::new(),
            vectors: Vec::new(),
        };
    }
    let mut m = a.to_vec();
    // Eigenvector accumulator, starts as identity.
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    for _sweep in 0..max_sweeps {
        // Sum of squares of off-diagonal elements.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i * n + j] * m[i * n + j];
            }
        }
        if off < 1e-22 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-30 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into v (columns p and q).
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract eigenpairs and sort by descending eigenvalue.
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|j| {
            let val = m[j * n + j];
            let mut vec: Vec<f64> = (0..n).map(|i| v[i * n + j]).collect();
            // Sign convention: largest-|component| positive.
            let lead = vec
                .iter()
                .cloned()
                .fold(0.0f64, |acc, x| if x.abs() > acc.abs() { x } else { acc });
            if lead < 0.0 {
                for x in &mut vec {
                    *x = -*x;
                }
            }
            (val, vec)
        })
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    Eigen {
        values: pairs.iter().map(|(v, _)| *v).collect(),
        vectors: pairs.into_iter().map(|(_, v)| v).collect(),
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matvec(a: &[f64], n: usize, x: &[f64]) -> Vec<f64> {
        (0..n).map(|i| dot(&a[i * n..(i + 1) * n], x)).collect()
    }

    #[test]
    fn diagonal_matrix_trivial() {
        let a = vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let e = jacobi_eigen(&a, 3, 30);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = vec![2.0, 1.0, 1.0, 2.0];
        let e = jacobi_eigen(&a, 2, 30);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector of 3 is (1,1)/sqrt(2).
        let v = &e.vectors[0];
        assert!((v[0] - v[1]).abs() < 1e-9);
        assert!((dot(v, v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigen_equation_holds() {
        // A symmetric random-ish matrix.
        let n = 8;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let val = ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.4;
                a[i * n + j] = val;
                a[j * n + i] = val;
            }
        }
        let e = jacobi_eigen(&a, n, 50);
        for (k, v) in e.vectors.iter().enumerate() {
            let av = matvec(&a, n, v);
            for i in 0..n {
                assert!(
                    (av[i] - e.values[k] * v[i]).abs() < 1e-8,
                    "A v != lambda v at pair {k}, row {i}"
                );
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let n = 6;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let val = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                a[i * n + j] = val;
                a[j * n + i] = val;
            }
        }
        let e = jacobi_eigen(&a, n, 50);
        for i in 0..n {
            for j in 0..n {
                let d = dot(&e.vectors[i], &e.vectors[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-9, "({i},{j}) dot {d}");
            }
        }
    }

    #[test]
    fn trace_preserved() {
        let n = 5;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let val = ((i + j) % 7) as f64;
                a[i * n + j] = val;
                a[j * n + i] = val;
            }
        }
        let trace: f64 = (0..n).map(|i| a[i * n + i]).sum();
        let e = jacobi_eigen(&a, n, 50);
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn sign_convention_deterministic() {
        let a = vec![2.0, 1.0, 1.0, 2.0];
        let e1 = jacobi_eigen(&a, 2, 30);
        let e2 = jacobi_eigen(&a, 2, 30);
        assert_eq!(e1.vectors, e2.vectors);
        // Leading component positive.
        for v in &e1.vectors {
            let lead = v
                .iter()
                .cloned()
                .fold(0.0f64, |acc, x| if x.abs() > acc.abs() { x } else { acc });
            assert!(lead > 0.0);
        }
    }

    #[test]
    fn empty_matrix() {
        let e = jacobi_eigen(&[], 0, 10);
        assert!(e.values.is_empty());
    }

    #[test]
    fn dist2_and_dot() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
