//! The engine: orchestration of all pipeline stages with per-component
//! time attribution (paper Figure 3/4).

use crate::assoc;
use crate::cluster::{cluster_documents, Clustering};
use crate::config::EngineConfig;
use crate::index::{invert, RankLoad};
use crate::project::project_nd;
use crate::scan::scan;
use crate::signature::{generate, SignatureStats};
use crate::snapshot::{
    self, config_fingerprint, corpus_fingerprint, republish_snapshot, write_engine_snapshot,
    SnapshotInput, SnapshotReport, Stage,
};
use crate::topicality::select_topics;
use corpus::SourceSet;
use perfmodel::CostModel;
use spmd::{Component, Ctx, RunResult, Runtime};
use std::sync::Arc;

/// Summary of one engine execution (identical on every rank).
#[derive(Debug, Clone)]
pub struct EngineSummary {
    pub vocab_size: usize,
    pub total_docs: u32,
    pub total_tokens: u64,
    /// Final N after any adaptive expansion.
    pub n_major: usize,
    /// Final M after any adaptive expansion.
    pub m_dims: usize,
    /// How many times the dimensionality was expanded (§4.2 remedy).
    pub dim_expansions: usize,
    pub sig_stats: SignatureStats,
    pub kmeans_iters: usize,
    pub kmeans_objective: f64,
    pub variance_explained: f64,
    /// Per-rank inversion load statistics (Figure 9).
    pub load: Vec<RankLoad>,
}

/// Per-rank engine output.
#[derive(Debug, Clone)]
pub struct EngineOutput {
    /// 2-D coordinates of this rank's documents.
    pub local_coords: Vec<(f64, f64)>,
    /// All coordinates in document order (rank 0 only — the "master
    /// writes the file" step).
    pub coords: Option<Vec<(f64, f64)>>,
    /// This rank's full projection (row-major `n_local × projection_dims`;
    /// equals `local_coords` when 2-D, adds a third component when 3-D).
    pub local_coords_nd: Vec<f64>,
    /// Number of projected dimensions (2 or 3).
    pub projection_dims: usize,
    /// Cluster assignment per local document.
    pub assignments: Vec<u32>,
    /// All documents' cluster assignments in global order (rank 0 only).
    pub all_assignments: Option<Vec<u32>>,
    /// Global id of this rank's first document.
    pub doc_base: u32,
    /// Cluster labels: for each cluster, its most characteristic topic
    /// terms (strongest centroid dimensions), best first.
    pub cluster_labels: Vec<Vec<String>>,
    /// Documents per cluster (global).
    pub cluster_sizes: Vec<u64>,
    /// What the final snapshot write reported, when
    /// [`EngineConfig::snapshot_out`] was set (rank 0 only).
    pub snapshot_report: Option<SnapshotReport>,
    pub summary: EngineSummary,
}

/// The text processing engine.
pub struct Engine {
    pub config: EngineConfig,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// Execute the full pipeline on one rank (collective: every rank of
    /// the runtime must call this with the same corpus and config).
    pub fn run(&self, ctx: &Ctx, sources: &SourceSet) -> EngineOutput {
        self.run_until(ctx, sources, Stage::Final)
            .expect("run_until(Stage::Final) always produces an output")
    }

    /// Write a stage checkpoint when a checkpoint directory is configured.
    /// Failures are warnings, not errors: a run never dies because its
    /// checkpoint could not be written.
    fn maybe_checkpoint(&self, ctx: &Ctx, stage: Stage, inp: &SnapshotInput<'_>) {
        let Some(dir) = &self.config.checkpoint_dir else {
            return;
        };
        if ctx.rank() == 0 {
            if let Err(e) = std::fs::create_dir_all(dir) {
                inspire_trace::log_warn!(ctx.rank(), "cannot create {}: {e}", dir.display());
            }
        }
        let path = snapshot::checkpoint_path(dir, stage);
        if let Err(e) = write_engine_snapshot(ctx, &path, inp) {
            if ctx.rank() == 0 {
                inspire_trace::log_warn!(
                    ctx.rank(),
                    "checkpoint write {} failed: {e}",
                    path.display()
                );
            }
        }
    }

    /// Execute the pipeline through `stop_after`, inclusive.
    ///
    /// With [`EngineConfig::checkpoint_dir`] set, a cumulative snapshot is
    /// written after every completed stage; with [`EngineConfig::resume`]
    /// also set, the most advanced valid checkpoint matching this
    /// configuration, corpus, and processor count is restored and only
    /// the remaining stages run — bit-identical to the uninterrupted run.
    /// Corrupt or mismatched checkpoints are skipped (falling back to
    /// earlier stages or a full run), never trusted partially.
    ///
    /// Returns `None` when stopped before [`Stage::Final`]; the
    /// crash/resume tests use this to simulate a run dying at each stage
    /// boundary. Collective: every rank must pass the same `stop_after`.
    pub fn run_until(
        &self,
        ctx: &Ctx,
        sources: &SourceSet,
        stop_after: Stage,
    ) -> Option<EngineOutput> {
        let cfg = &self.config;

        // Declare the working set so the memory-pressure model can apply
        // (the Figure 5 anomaly). At identity scale the nominal size is
        // the real corpus size.
        let scale = &ctx.model().scale;
        let nominal_bytes = if scale.nominal_bytes > scale.actual_bytes {
            scale.nominal_bytes
        } else {
            sources.total_bytes()
        };
        let ws = ctx.model().memory.working_set(nominal_bytes, ctx.nprocs());
        ctx.set_working_set(ws);

        let config_fp = config_fingerprint(cfg);
        let corpus_fp = corpus_fingerprint(sources);
        let warn0 = |what: &str, e: &std::io::Error| {
            if ctx.rank() == 0 {
                inspire_trace::log_warn!(ctx.rank(), "{what} ({e}); recomputing");
            }
        };

        // Every rank opens the same checkpoint files read-only, so the
        // resume decision is identical everywhere without communication.
        let mut resume = if cfg.resume {
            cfg.checkpoint_dir
                .as_deref()
                .and_then(|d| snapshot::latest_checkpoint(d, config_fp, corpus_fp, ctx.nprocs()))
        } else {
            None
        };

        // A final-stage checkpoint short-circuits the whole pipeline.
        if resume.as_ref().map(|s| s.meta().stage) == Some(Stage::Final) {
            match resume.as_ref().unwrap().restore_output(ctx) {
                Ok(mut out) => {
                    // A requested snapshot must still appear even though
                    // nothing was recomputed: copy the checkpoint's bytes.
                    if let Some(path) = &cfg.snapshot_out {
                        match republish_snapshot(ctx, resume.as_ref().unwrap(), path) {
                            Ok(report) => out.snapshot_report = report,
                            Err(e) => warn0("snapshot republish failed", &e),
                        }
                    }
                    return Some(out);
                }
                Err(e) => {
                    warn0("final checkpoint restore failed", &e);
                    resume = None;
                }
            }
        }
        let mut have = resume.as_ref().map(|s| s.meta().stage);

        // ---- Scan & Map ----
        let mut restored_scan = None;
        if have >= Some(Stage::Scan) {
            match ctx.component(Component::Scan, || {
                resume.as_ref().unwrap().restore_scan(ctx)
            }) {
                Ok(s) => restored_scan = Some(s),
                Err(e) => {
                    warn0("scan checkpoint restore failed", &e);
                    have = None;
                }
            }
        }
        let scanned = match restored_scan {
            Some(s) => s,
            None => ctx.component(Component::Scan, || scan(ctx, sources, cfg)),
        };
        let mut inp = SnapshotInput {
            stage: Stage::Scan,
            config_fp,
            corpus_fp,
            scan: &scanned,
            index: None,
            topics: None,
            am: None,
            sigs: None,
            expansions: 0,
            clustering: None,
            coords_nd: None,
            projection_dims: 0,
            variance_explained: 0.0,
            labels: None,
        };
        if have < Some(Stage::Scan) {
            self.maybe_checkpoint(ctx, Stage::Scan, &inp);
        }
        if stop_after == Stage::Scan {
            return None;
        }

        // ---- Inverted file indexing + global term statistics ----
        let mut restored_index = None;
        if have >= Some(Stage::Index) {
            match ctx.component(Component::Index, || {
                resume.as_ref().unwrap().restore_index(ctx)
            }) {
                Ok(i) => restored_index = Some(i),
                Err(e) => {
                    warn0("index checkpoint restore failed", &e);
                    have = Some(Stage::Scan);
                }
            }
        }
        let index = match restored_index {
            Some(i) => i,
            None => ctx.component(Component::Index, || invert(ctx, &scanned, cfg)),
        };
        inp.stage = Stage::Index;
        inp.index = Some(&index);
        if have < Some(Stage::Index) {
            self.maybe_checkpoint(ctx, Stage::Index, &inp);
        }
        if stop_after == Stage::Index {
            return None;
        }

        // ---- Topicality → association matrix → signatures, with the
        // adaptive-dimensionality loop (§4.2) ----
        let mut restored_sig = None;
        if have >= Some(Stage::Sig) {
            match ctx.component(Component::DocVec, || {
                resume.as_ref().unwrap().restore_sig_state(ctx)
            }) {
                Ok(s) => restored_sig = Some(s),
                Err(e) => {
                    warn0("signature checkpoint restore failed", &e);
                    have = Some(Stage::Index);
                }
            }
        }
        let (topics, am, sigs, expansions) = match restored_sig {
            Some(s) => s,
            None => {
                let mut n_major = cfg.n_major;
                let mut m_dims = cfg.m_dims();
                let mut expansions = 0usize;
                loop {
                    let topics = ctx.component(Component::Topic, || {
                        select_topics(ctx, &index, cfg, n_major, m_dims)
                    });
                    let am = ctx.component(Component::Assoc, || {
                        assoc::build(ctx, &scanned, &index, &topics)
                    });
                    let sigs = ctx.component(Component::DocVec, || generate(ctx, &scanned, &am));
                    let expand = cfg.adaptive_dims
                        && expansions < cfg.max_dim_expansions
                        && sigs.stats.weak_fraction() > cfg.weak_sig_threshold
                        && topics.major.len() == n_major; // no more terms to add otherwise
                    if !expand {
                        break (topics, am, sigs, expansions);
                    }
                    expansions += 1;
                    n_major = (n_major * 3) / 2;
                    m_dims = ((n_major as f64 * cfg.topic_ratio).round() as usize).max(m_dims + 1);
                }
            }
        };
        inp.stage = Stage::Sig;
        inp.topics = Some(&topics);
        inp.am = Some(&am);
        inp.sigs = Some(&sigs);
        inp.expansions = expansions;
        if have < Some(Stage::Sig) {
            self.maybe_checkpoint(ctx, Stage::Sig, &inp);
        }
        if stop_after == Stage::Sig {
            return None;
        }

        // ---- Clustering and projection ----
        let (clustering, projection) = ctx.component(Component::ClusProj, || {
            let cl = cluster_documents(ctx, &sigs, scanned.doc_base, scanned.total_docs, cfg);
            let proj = project_nd(ctx, &sigs, &cl, cfg.projection_dims);
            (cl, proj)
        });

        let cluster_labels = label_clusters(&clustering, &topics.topics, &scanned.terms);

        inp.stage = Stage::Final;
        inp.clustering = Some(&clustering);
        inp.coords_nd = Some(&projection.local_coords_nd);
        inp.projection_dims = projection.dims;
        inp.variance_explained = projection.variance_explained;
        inp.labels = Some(&cluster_labels);
        self.maybe_checkpoint(ctx, Stage::Final, &inp);
        let mut snapshot_report = None;
        if let Some(path) = &cfg.snapshot_out {
            match write_engine_snapshot(ctx, path, &inp) {
                Ok(report) => snapshot_report = report,
                Err(e) => {
                    if ctx.rank() == 0 {
                        inspire_trace::log_warn!(
                            ctx.rank(),
                            "snapshot write {} failed: {e}",
                            path.display()
                        );
                    }
                }
            }
        }

        // The master also collects cluster assignments (alongside the
        // coordinates it writes out).
        let all_assignments = ctx
            .gather_data(
                0,
                clustering.assignments.clone(),
                (clustering.assignments.len() * 4) as u64,
            )
            .map(|parts| parts.concat());

        Some(EngineOutput {
            local_coords: projection.local_coords,
            coords: projection.all_coords,
            local_coords_nd: projection.local_coords_nd,
            projection_dims: projection.dims,
            all_assignments,
            assignments: clustering.assignments.clone(),
            doc_base: scanned.doc_base,
            cluster_labels,
            cluster_sizes: clustering.sizes.clone(),
            snapshot_report,
            summary: EngineSummary {
                vocab_size: scanned.vocab_size(),
                total_docs: scanned.total_docs,
                total_tokens: index.total_tokens,
                n_major: topics.major.len(),
                m_dims: topics.m_dims(),
                dim_expansions: expansions,
                sig_stats: sigs.stats,
                kmeans_iters: clustering.iterations,
                kmeans_objective: clustering.objective,
                variance_explained: projection.variance_explained,
                load: index.load.clone(),
            },
        })
    }
}

/// For each cluster, the topic terms with the strongest centroid weight.
fn label_clusters(
    clustering: &Clustering,
    topics: &[crate::TermId],
    terms: &intern::TermTable,
) -> Vec<Vec<String>> {
    const LABELS_PER_CLUSTER: usize = 5;
    (0..clustering.k)
        .map(|c| {
            let cen = clustering.centroid(c);
            let mut dims: Vec<usize> = (0..clustering.m).collect();
            dims.sort_by(|&a, &b| cen[b].partial_cmp(&cen[a]).unwrap().then(a.cmp(&b)));
            dims.iter()
                .take(LABELS_PER_CLUSTER)
                .filter(|&&d| cen[d] > 0.0)
                .map(|&d| terms[topics[d] as usize].to_string())
                .collect()
        })
        .collect()
}

/// Outcome of a full multi-rank engine execution.
#[derive(Debug)]
pub struct EngineRun {
    /// Per-rank outputs.
    pub outputs: Vec<EngineOutput>,
    /// Virtual wall-clock (slowest rank), seconds on the modeled cluster.
    pub virtual_time: f64,
    /// Per-component critical-path times.
    pub components: spmd::timer::TimerSnapshot,
    /// Per-rank clocks and communication statistics.
    pub run: RunResult<()>,
}

impl EngineRun {
    /// The rank-0 output (which holds the gathered coordinates).
    pub fn master(&self) -> &EngineOutput {
        &self.outputs[0]
    }
}

/// Convenience: run the engine on `nprocs` ranks under `model`.
pub fn run_engine(
    nprocs: usize,
    model: Arc<CostModel>,
    sources: &SourceSet,
    config: &EngineConfig,
) -> EngineRun {
    let rt = Runtime::new(model)
        .with_threads_per_rank(config.threads_per_rank)
        .with_tracing(config.trace);
    let engine = Engine::new(config.clone());
    let mut outputs: Vec<Option<EngineOutput>> = Vec::new();
    let res = rt.run(nprocs, |ctx| engine.run(ctx, sources));
    let mut run_results = Vec::with_capacity(nprocs);
    for out in res.results {
        outputs.push(Some(out));
        run_results.push(());
    }
    let run = RunResult {
        results: run_results,
        clocks: res.clocks,
        timers: res.timers,
        stats: res.stats,
        traces: res.traces,
    };
    EngineRun {
        outputs: outputs.into_iter().map(|o| o.unwrap()).collect(),
        virtual_time: run.virtual_time(),
        components: run.component_times(),
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusSpec;

    fn corpus() -> SourceSet {
        CorpusSpec {
            source_bytes: 8 * 1024,
            ..CorpusSpec::pubmed(192 * 1024, 17)
        }
        .generate()
    }

    #[test]
    fn end_to_end_produces_coordinates() {
        let src = corpus();
        let run = run_engine(
            3,
            Arc::new(CostModel::zero()),
            &src,
            &EngineConfig::for_testing(),
        );
        let master = run.master();
        let coords = master.coords.as_ref().expect("rank 0 gathers coords");
        assert_eq!(coords.len() as u32, master.summary.total_docs);
        assert!(master.summary.vocab_size > 500);
        assert!(master.summary.total_tokens > 8_000);
    }

    #[test]
    fn outputs_agree_across_ranks() {
        let src = corpus();
        let run = run_engine(
            4,
            Arc::new(CostModel::zero()),
            &src,
            &EngineConfig::for_testing(),
        );
        for o in &run.outputs {
            assert_eq!(o.summary.vocab_size, run.outputs[0].summary.vocab_size);
            assert_eq!(o.cluster_sizes, run.outputs[0].cluster_sizes);
            assert_eq!(o.cluster_labels, run.outputs[0].cluster_labels);
        }
        // Only rank 0 holds the gathered coordinates.
        assert!(run.outputs[0].coords.is_some());
        assert!(run.outputs[1..].iter().all(|o| o.coords.is_none()));
    }

    #[test]
    fn deterministic_across_processor_counts() {
        let src = corpus();
        let cfg = EngineConfig::for_testing();
        let zero = Arc::new(CostModel::zero());
        let c1 = run_engine(1, zero.clone(), &src, &cfg)
            .master()
            .coords
            .clone()
            .unwrap();
        for p in [2, 5] {
            let cp = run_engine(p, zero.clone(), &src, &cfg)
                .master()
                .coords
                .clone()
                .unwrap();
            assert_eq!(c1.len(), cp.len());
            for (i, ((x, y), (x1, y1))) in cp.iter().zip(&c1).enumerate() {
                assert!(
                    (x - x1).abs() < 1e-6 && (y - y1).abs() < 1e-6,
                    "P={p} doc {i} ({x},{y}) vs ({x1},{y1})"
                );
            }
        }
    }

    #[test]
    fn component_times_populated_under_real_model() {
        let src = corpus();
        let run = run_engine(
            2,
            Arc::new(CostModel::pnnl_2007()),
            &src,
            &EngineConfig::for_testing(),
        );
        let ct = run.components;
        for comp in [
            Component::Scan,
            Component::Index,
            Component::Topic,
            Component::Assoc,
            Component::DocVec,
            Component::ClusProj,
        ] {
            assert!(ct.get(comp) > 0.0, "{comp:?} has zero time");
        }
        assert!(run.virtual_time > 0.0);
    }

    #[test]
    fn cluster_labels_are_real_terms() {
        let src = corpus();
        let run = run_engine(
            2,
            Arc::new(CostModel::zero()),
            &src,
            &EngineConfig::for_testing(),
        );
        let labels = &run.master().cluster_labels;
        assert!(!labels.is_empty());
        let mut non_empty = 0;
        for l in labels {
            if !l.is_empty() {
                non_empty += 1;
                for term in l {
                    assert!(term.len() >= 3, "label {term}");
                }
            }
        }
        assert!(non_empty > 0);
    }

    #[test]
    fn adaptive_dims_reports_expansions() {
        let src = corpus();
        // Force expansion by starting with absurdly few major terms.
        let cfg = EngineConfig {
            n_major: 10,
            adaptive_dims: true,
            max_dim_expansions: 3,
            weak_sig_threshold: 0.01,
            ..EngineConfig::for_testing()
        };
        let run = run_engine(2, Arc::new(CostModel::zero()), &src, &cfg);
        let s = &run.master().summary;
        // With only 10 major terms most PubMed records have weak
        // signatures, so the engine must expand at least once.
        assert!(s.dim_expansions >= 1, "expected expansion, got {s:?}");
        assert!(s.n_major > 10);
    }
}
