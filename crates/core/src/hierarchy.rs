//! Hierarchical (agglomerative) clustering.
//!
//! Paper §3.5: *"other types of clustering could be applied that would
//! enable different means to explore the relationships of the data (e.g.,
//! hierarchical clustering: single-link, complete, and various adaptive
//! cutting approaches)"*. This module provides exactly those: agglomerative
//! clustering with single, complete, and average linkage, plus fixed-k and
//! adaptive (largest-gap) dendrogram cuts.
//!
//! In the parallel engine, hierarchical clustering runs as a second level
//! over the k-means centroids (the classical scalable recipe: a
//! fine-grained distributed k-means produces `k_fine` centroids, which
//! every rank then agglomerates identically — no additional communication,
//! deterministic everywhere). See
//! [`EngineConfig::cluster_method`](crate::config::EngineConfig).

use crate::linalg::dist2;

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance (chains).
    Single,
    /// Maximum pairwise distance (compact).
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

/// One merge step: clusters `a` and `b` (ids; leaves are `0..n`, merge
/// `i` creates id `n + i`) joined at `distance`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    pub a: usize,
    pub b: usize,
    pub distance: f64,
}

/// A full agglomeration history over `n_leaves` points.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    pub n_leaves: usize,
    /// `n_leaves - 1` merges in non-decreasing distance order (for
    /// single/complete/average linkage on a metric this holds by
    /// construction of the greedy algorithm... up to inversions for
    /// average linkage, which we tolerate).
    pub merges: Vec<Merge>,
}

/// Agglomerate `n` points of dimension `m` (row-major) under `linkage`.
///
/// The classic O(n³)-worst-case greedy algorithm with a running distance
/// matrix (Lance–Williams updates), entirely adequate for the centroid
/// counts (tens to a few hundred) it is applied to. Ties break toward the
/// lexicographically smallest `(a, b)` pair, so results are deterministic.
pub fn agglomerate(points: &[f64], n: usize, m: usize, linkage: Linkage) -> Dendrogram {
    assert_eq!(points.len(), n * m, "points must be n x m");
    if n == 0 {
        return Dendrogram {
            n_leaves: 0,
            merges: Vec::new(),
        };
    }
    // dist[i][j] for active cluster ids; usize::MAX marks dead rows.
    // Cluster ids: 0..n leaves, n..2n-1 merged.
    let total = 2 * n - 1;
    let mut active: Vec<bool> = vec![false; total];
    let mut sizes: Vec<usize> = vec![0; total];
    for i in 0..n {
        active[i] = true;
        sizes[i] = 1;
    }
    // Distance matrix over ids (triangular, grown as merges happen).
    let mut dist = vec![f64::INFINITY; total * total];
    let idx = |a: usize, b: usize| -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        lo * total + hi
    };
    for i in 0..n {
        for j in (i + 1)..n {
            dist[idx(i, j)] =
                dist2(&points[i * m..(i + 1) * m], &points[j * m..(j + 1) * m]).sqrt();
        }
    }

    let mut merges = Vec::with_capacity(n - 1);
    for step in 0..n.saturating_sub(1) {
        // Find the closest active pair (deterministic tie-break).
        let mut best = (f64::INFINITY, usize::MAX, usize::MAX);
        let ids: Vec<usize> = (0..total).filter(|&i| active[i]).collect();
        for (pi, &a) in ids.iter().enumerate() {
            for &b in &ids[pi + 1..] {
                let d = dist[idx(a, b)];
                if d < best.0 || (d == best.0 && (a, b) < (best.1, best.2)) {
                    best = (d, a, b);
                }
            }
        }
        let (d, a, b) = best;
        let new_id = n + step;
        merges.push(Merge { a, b, distance: d });
        // Lance–Williams update of distances to the merged cluster.
        for &c in &ids {
            if c == a || c == b {
                continue;
            }
            let dca = dist[idx(c, a)];
            let dcb = dist[idx(c, b)];
            let dnew = match linkage {
                Linkage::Single => dca.min(dcb),
                Linkage::Complete => dca.max(dcb),
                Linkage::Average => {
                    let (sa, sb) = (sizes[a] as f64, sizes[b] as f64);
                    (sa * dca + sb * dcb) / (sa + sb)
                }
            };
            dist[idx(c, new_id)] = dnew;
        }
        active[a] = false;
        active[b] = false;
        active[new_id] = true;
        sizes[new_id] = sizes[a] + sizes[b];
    }

    Dendrogram {
        n_leaves: n,
        merges,
    }
}

impl Dendrogram {
    /// Leaf → cluster assignment after cutting to exactly `k` clusters
    /// (the last `k - 1` merges are undone). Cluster labels are dense
    /// `0..k`, ordered by smallest leaf id for determinism.
    pub fn cut(&self, k: usize) -> Vec<u32> {
        let n = self.n_leaves;
        if n == 0 {
            return Vec::new();
        }
        let k = k.clamp(1, n);
        // Apply the first n - k merges with union-find.
        let mut parent: Vec<usize> = (0..2 * n - 1).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for (i, mg) in self.merges.iter().take(n - k).enumerate() {
            let new_id = n + i;
            let ra = find(&mut parent, mg.a);
            let rb = find(&mut parent, mg.b);
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        // Root of each leaf, relabeled densely by first appearance.
        let mut label_of_root = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for leaf in 0..n {
            let r = find(&mut parent, leaf);
            let next = label_of_root.len() as u32;
            let label = *label_of_root.entry(r).or_insert(next);
            out.push(label);
        }
        out
    }

    /// Adaptive cut (§3.5's "adaptive cutting approaches"): cut at the
    /// largest relative gap between consecutive merge distances, bounded
    /// to `[min_k, max_k]` clusters. Falls back to `min_k` when the
    /// dendrogram is too small or flat.
    pub fn adaptive_cut(&self, min_k: usize, max_k: usize) -> Vec<u32> {
        let n = self.n_leaves;
        if n == 0 {
            return Vec::new();
        }
        let min_k = min_k.clamp(1, n);
        let max_k = max_k.clamp(min_k, n);
        // Cutting before merge i leaves n - i clusters; k in [min_k, max_k]
        // corresponds to merge indices [n - max_k, n - min_k].
        let mut best = (0.0f64, min_k);
        for k in min_k..=max_k {
            let i = n - k; // first undone merge
            if i == 0 || i >= self.merges.len() {
                continue;
            }
            let before = self.merges[i - 1].distance.max(1e-12);
            let gap = self.merges[i].distance / before;
            if gap > best.0 {
                best = (gap, k);
            }
        }
        self.cut(best.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs and one far outlier.
    fn blobs() -> (Vec<f64>, usize) {
        let pts = vec![
            0.0, 0.0, //
            0.1, 0.0, //
            0.0, 0.1, //
            5.0, 5.0, //
            5.1, 5.0, //
            5.0, 5.1, //
            20.0, 20.0, //
        ];
        (pts, 7)
    }

    #[test]
    fn cut_recovers_blobs_every_linkage() {
        let (pts, n) = blobs();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = agglomerate(&pts, n, 2, linkage);
            assert_eq!(d.merges.len(), n - 1);
            let labels = d.cut(3);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_eq!(labels[4], labels[5]);
            assert_ne!(labels[0], labels[3]);
            assert_ne!(labels[0], labels[6]);
            assert_ne!(labels[3], labels[6]);
        }
    }

    #[test]
    fn cut_k1_is_one_cluster_and_kn_is_all_singletons() {
        let (pts, n) = blobs();
        let d = agglomerate(&pts, n, 2, Linkage::Average);
        assert!(d.cut(1).iter().all(|&l| l == 0));
        let singles = d.cut(n);
        let set: std::collections::HashSet<u32> = singles.iter().copied().collect();
        assert_eq!(set.len(), n);
    }

    #[test]
    fn adaptive_cut_finds_three_blobs() {
        let (pts, n) = blobs();
        let d = agglomerate(&pts, n, 2, Linkage::Complete);
        let labels = d.adaptive_cut(2, 6);
        let set: std::collections::HashSet<u32> = labels.iter().copied().collect();
        assert_eq!(set.len(), 3, "labels {labels:?}");
    }

    #[test]
    fn single_link_chains_where_complete_does_not() {
        // A chain of points 1 apart, with one pair 1.5 apart at the end:
        // single link merges the chain early; complete link keeps chain
        // ends apart.
        let pts: Vec<f64> = vec![0.0, 1.0, 2.0, 3.0, 4.0]
            .into_iter()
            .flat_map(|x| [x, 0.0])
            .collect();
        let single = agglomerate(&pts, 5, 2, Linkage::Single);
        let complete = agglomerate(&pts, 5, 2, Linkage::Complete);
        // Single link: every merge at distance 1.
        assert!(single
            .merges
            .iter()
            .all(|m| (m.distance - 1.0).abs() < 1e-9));
        // Complete link: final merge spans the whole chain (distance 4).
        let last = complete.merges.last().unwrap();
        assert!((last.distance - 4.0).abs() < 1e-9, "{last:?}");
    }

    #[test]
    fn merges_nondecreasing_for_single_and_complete() {
        let (pts, n) = blobs();
        for linkage in [Linkage::Single, Linkage::Complete] {
            let d = agglomerate(&pts, n, 2, linkage);
            for w in d.merges.windows(2) {
                assert!(w[0].distance <= w[1].distance + 1e-12, "{linkage:?}");
            }
        }
    }

    #[test]
    fn deterministic_under_ties() {
        // A perfect square: all nearest-neighbor distances equal.
        let pts = vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let a = agglomerate(&pts, 4, 2, Linkage::Single);
        let b = agglomerate(&pts, 4, 2, Linkage::Single);
        assert_eq!(a.merges, b.merges);
    }

    #[test]
    fn empty_and_singleton() {
        let d = agglomerate(&[], 0, 3, Linkage::Average);
        assert!(d.merges.is_empty());
        assert!(d.cut(1).is_empty());
        let d1 = agglomerate(&[1.0, 2.0], 1, 2, Linkage::Average);
        assert!(d1.merges.is_empty());
        assert_eq!(d1.cut(1), vec![0]);
    }
}
