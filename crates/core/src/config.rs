//! Engine configuration.

use crate::hierarchy::Linkage;
use crate::tokenize::TokenizerConfig;
use std::path::PathBuf;

/// Load-balancing strategy for the inversion stage (§3.3 and Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Balancing {
    /// Fixed-size chunking over a shared atomic task queue: own loads
    /// first, then stealing (the paper's approach).
    Dynamic,
    /// Static owner-computes: each process inverts exactly its own loads
    /// (the baseline dynamic balancing is compared against).
    Static,
    /// Master-worker task handout through rank 0, the classical
    /// message-passing alternative the paper argues does not scale: every
    /// request is serviced by a single master, so requests queue behind
    /// each other as the processor count grows.
    MasterWorker,
}

/// Document clustering method (§3.5). K-means is the paper's default;
/// hierarchical runs agglomerative clustering over the centroids of a
/// finer-grained k-means, per the paper's "other types of clustering
/// could be applied" remark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterMethod {
    /// Distributed k-means (Dhillon–Modha), the paper's approach.
    KMeans,
    /// Two-level: fine k-means (`n_clusters × fine_factor` centroids)
    /// followed by identical-everywhere agglomeration of the centroids.
    Hierarchical {
        linkage: Linkage,
        /// Fine-grained centroids per final cluster.
        fine_factor: usize,
        /// Use the adaptive largest-gap cut instead of a fixed k.
        adaptive: bool,
    },
}

/// Full engine configuration. `Default` is tuned for the megabyte-scale
/// corpora used in tests and examples; the benchmark harness scales the
/// dimensionality up for paper-sized runs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// N: number of major terms selected by topicality.
    pub n_major: usize,
    /// M = `max(2, n_major * topic_ratio)`: anchoring topic dimensions
    /// ("typically 10 % of the top N", §3.4).
    pub topic_ratio: f64,
    /// k for the distributed k-means clustering.
    pub n_clusters: usize,
    /// How documents are clustered.
    pub cluster_method: ClusterMethod,
    /// Project to 2 or 3 dimensions (§3.5 "the 2-d or 3-d projection
    /// coordinate"); the ThemeView terrain uses the first two either way.
    pub projection_dims: usize,
    /// Maximum k-means iterations.
    pub max_kmeans_iters: usize,
    /// Relative objective improvement below which k-means stops.
    pub kmeans_tol: f64,
    /// Fixed-size chunking: documents per inversion load (§3.3).
    pub chunk_docs: usize,
    /// Load-balancing strategy for inversion.
    pub balancing: Balancing,
    /// Enable the adaptive-dimensionality remedy (§4.2): when too many
    /// signatures come out null/weak, expand N and M and regenerate.
    pub adaptive_dims: bool,
    /// Maximum number of dimensionality expansions.
    pub max_dim_expansions: usize,
    /// Fraction of null-or-weak signatures that triggers an expansion.
    pub weak_sig_threshold: f64,
    /// Terms must appear in at least this many documents to be topical.
    pub min_df: u32,
    /// Terms in more than this fraction of documents are too common to
    /// discriminate.
    pub max_df_frac: f64,
    /// Tokenizer settings.
    pub tokenizer: TokenizerConfig,
    /// Seed for the engine's deterministic choices (k-means init).
    pub seed: u64,
    /// Intra-rank worker threads for the hot pipeline stages (tokenize,
    /// inversion counting, association accumulation, signature
    /// generation). Host wall-clock parallelism only: results and virtual
    /// time are bit-identical at any width. 1 (the default) is serial.
    pub threads_per_rank: usize,
    /// When set, the engine writes a cumulative checkpoint snapshot into
    /// this directory after every completed pipeline stage.
    pub checkpoint_dir: Option<PathBuf>,
    /// With [`EngineConfig::checkpoint_dir`] set: resume from the most
    /// advanced valid checkpoint that matches this configuration, corpus,
    /// and processor count, re-running only the remaining stages.
    pub resume: bool,
    /// When set, write the complete engine output as a single-file
    /// snapshot (servable by `vaengine query --snapshot`) at this path.
    pub snapshot_out: Option<PathBuf>,
    /// Record per-rank stage/collective spans for Chrome trace-event
    /// export (`vaengine analyze --trace-out`). Off by default; tracing
    /// only reads clocks, so engine output is identical either way.
    pub trace: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_major: 600,
            topic_ratio: 0.1,
            n_clusters: 12,
            cluster_method: ClusterMethod::KMeans,
            projection_dims: 2,
            max_kmeans_iters: 40,
            kmeans_tol: 1e-4,
            chunk_docs: 32,
            balancing: Balancing::Dynamic,
            adaptive_dims: true,
            max_dim_expansions: 2,
            weak_sig_threshold: 0.05,
            min_df: 3,
            max_df_frac: 0.2,
            tokenizer: TokenizerConfig::default(),
            seed: 0x1f5b,
            threads_per_rank: 1,
            checkpoint_dir: None,
            resume: false,
            snapshot_out: None,
            trace: false,
        }
    }
}

impl EngineConfig {
    /// M: the number of anchoring topic dimensions.
    pub fn m_dims(&self) -> usize {
        ((self.n_major as f64 * self.topic_ratio).round() as usize).max(2)
    }

    /// A configuration sized for small unit-test corpora.
    pub fn for_testing() -> Self {
        EngineConfig {
            n_major: 200,
            n_clusters: 6,
            max_kmeans_iters: 15,
            chunk_docs: 8,
            min_df: 2,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_is_ten_percent_of_n() {
        let c = EngineConfig::default();
        assert_eq!(c.m_dims(), 60);
    }

    #[test]
    fn m_has_floor() {
        let c = EngineConfig {
            n_major: 5,
            topic_ratio: 0.1,
            ..Default::default()
        };
        assert_eq!(c.m_dims(), 2);
    }
}
