//! # inspire-core — the parallel text processing engine
//!
//! A from-scratch implementation of the text processing engine described in
//! *Scalable Visual Analytics of Massive Textual Datasets* (IPPS 2007):
//! the backend that turns a raw document collection into the 2-D document
//! coordinates a ThemeView visualization is built from.
//!
//! The pipeline follows the paper's §2.1 processing steps exactly:
//!
//! 1. [`scan`] — **Scan & Map**: partition sources by size, tokenize,
//!    build the field-to-term forward index, and register vocabulary in a
//!    distributed hashmap that assigns global term IDs.
//! 2. [`index`] — **Inverted File Indexing**: FAST-INV-style two-pass
//!    inversion (count, then scatter into preallocated slots) of the
//!    forward index into a term-to-(document, field) index held in a
//!    global array, with **fixed-size-chunking dynamic load balancing**
//!    over a shared atomic task queue.
//! 3. [`index`] — **Global term statistics**: document and collection
//!    frequencies accumulated into global arrays.
//! 4. [`topicality`] — **Topicality**: Bookstein serial-clustering
//!    condensation scores; global top-N merge selects the *major terms*,
//!    the top M ≈ 10 % of those anchor the topic space.
//! 5. [`assoc`] — **Association matrix**: the N×M matrix of conditional
//!    probabilities `P(tᵢ | tⱼ)·(1 − P(tⱼ))`, merged with an Allreduce.
//! 6. [`signature`] — **Knowledge signatures**: per-document
//!    frequency-weighted combinations of association rows, L1-normalized;
//!    with the paper's *adaptive dimensionality* remedy for null/weak
//!    signatures.
//! 7. [`cluster`] — **Clustering**: distributed k-means (Dhillon–Modha).
//! 8. [`project`] — **Projection**: PCA over the cluster centroids
//!    (Jacobi eigensolver), first two principal components, gather of the
//!    2-D coordinates on rank 0.
//!
//! [`pipeline::Engine`] orchestrates the stages and attributes virtual
//! time to the paper's component names (scan, index, topic, AM, DocVec,
//! ClusProj). Running the engine with `nprocs = 1` *is* the sequential
//! reference; [`seq`] wraps that as an explicit oracle for tests.

pub mod ann;
pub mod assoc;
pub mod cluster;
pub mod config;
pub mod dedup;
pub mod hierarchy;
pub mod index;
pub mod interact;
pub mod io;
pub mod linalg;
pub mod pipeline;
pub mod project;
pub mod query;
pub mod report;
pub mod scan;
pub mod seq;
pub mod session;
pub mod signature;
pub mod snapshot;
pub mod tokenize;
pub mod topicality;

pub use config::{Balancing, ClusterMethod, EngineConfig};
pub use pipeline::{Engine, EngineOutput, EngineSummary};
pub use report::build_run_report;
pub use session::{Selection, Session, Theme};
pub use snapshot::{EngineSnapshot, SnapshotReport, Stage};

/// Global term identifier assigned by the distributed vocabulary map.
pub type TermId = u32;
/// Global document identifier (dense, in corpus order).
pub type DocId = u32;

/// Field names the scanners recognize, indexed by `FieldId`.
pub const FIELD_NAMES: &[&str] = &[
    "pmid", "title", "abstract", "mesh", "author", "docno", "url", "body",
];

/// Index into [`FIELD_NAMES`].
pub type FieldId = u8;

/// Resolve a field name to its id, if known.
pub fn field_id(name: &str) -> Option<FieldId> {
    FIELD_NAMES
        .iter()
        .position(|&n| n == name)
        .map(|i| i as FieldId)
}
