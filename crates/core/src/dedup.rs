//! Near-duplicate detection over knowledge signatures.
//!
//! Document collections are full of near-copies (press-release reprints,
//! crawl aliases, forwarded messages); IN-SPIRE surfaces them so analysts
//! read one representative instead of twelve. The knowledge signatures
//! make this cheap: near-duplicates have nearly identical signature
//! vectors, and the k-means clustering has already bucketed candidates —
//! only documents in the *same cluster* can plausibly exceed a high
//! similarity threshold, so comparisons stay within clusters rather than
//! O(n²) over the corpus.
//!
//! Each rank compares its own documents against same-cluster documents
//! with a greater global id (so each pair is reported exactly once,
//! rank-independently), fetching the peers' signatures from the global
//! signature array — one-sided traffic the cost model charges like any
//! other GA access.

use crate::cluster::Clustering;
use crate::linalg::dot;
use crate::signature::Signatures;
use crate::DocId;
use perfmodel::WorkKind;
use spmd::Ctx;

/// One detected near-duplicate pair, `a < b`.
#[derive(Debug, Clone, PartialEq)]
pub struct DuplicatePair {
    pub a: DocId,
    pub b: DocId,
    /// Cosine similarity of the signatures, in `[0, 1]` for the engine's
    /// non-negative signatures.
    pub similarity: f64,
}

/// Find all same-cluster pairs with cosine similarity ≥ `threshold`.
/// Collective; every rank receives the full, globally sorted list.
pub fn find_near_duplicates(
    ctx: &Ctx,
    sigs: &Signatures,
    clustering: &Clustering,
    doc_base: DocId,
    threshold: f64,
) -> Vec<DuplicatePair> {
    let m = sigs.m;
    // Global assignment table (one u32 per document).
    let assignments_global: Vec<Vec<u32>> = ctx.allgather(
        clustering.assignments.clone(),
        (clustering.assignments.len() * 4) as u64,
    );
    let assignments: Vec<u32> = assignments_global.concat();

    // Cluster → member doc ids (ascending).
    let mut members: Vec<Vec<DocId>> = vec![Vec::new(); clustering.k.max(1)];
    for (doc, &c) in assignments.iter().enumerate() {
        if (c as usize) < members.len() {
            members[c as usize].push(doc as DocId);
        }
    }

    let mut local_pairs: Vec<DuplicatePair> = Vec::new();
    let mut flops = 0u64;
    for i in 0..sigs.n_local() {
        let my_doc = doc_base + i as DocId;
        let my_sig = sigs.row(i);
        let my_norm = dot(my_sig, my_sig).sqrt();
        if my_norm == 0.0 {
            continue;
        }
        let c = assignments[my_doc as usize] as usize;
        for &other in &members[c] {
            if other <= my_doc {
                continue;
            }
            // Fetch the peer's signature (local-block access when the
            // peer is ours, one-sided otherwise).
            let other_sig = sigs.global.get_row(ctx, other as usize);
            let other_norm = dot(&other_sig, &other_sig).sqrt();
            flops += 3 * m as u64;
            if other_norm == 0.0 {
                continue;
            }
            let cos = dot(my_sig, &other_sig) / (my_norm * other_norm);
            if cos >= threshold {
                local_pairs.push(DuplicatePair {
                    a: my_doc,
                    b: other,
                    similarity: cos,
                });
            }
        }
    }
    ctx.charge(WorkKind::Flops, flops);

    // Assemble the global list on every rank.
    let bytes = (local_pairs.len() * 24) as u64;
    let all: Vec<Vec<DuplicatePair>> = ctx.allgather(local_pairs, bytes);
    let mut out: Vec<DuplicatePair> = all.concat();
    out.sort_by_key(|x| (x.a, x.b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc;
    use crate::cluster::cluster_documents;
    use crate::config::EngineConfig;
    use crate::index::invert;
    use crate::scan::scan;
    use crate::signature::generate;
    use crate::topicality::select_topics;
    use corpus::{CorpusSpec, Source, SourceSet};
    use spmd::Runtime;

    /// A corpus with a planted duplicate: the first record of the first
    /// source is appended verbatim as an extra final source.
    fn corpus_with_duplicate() -> (SourceSet, usize) {
        let mut set = CorpusSpec::pubmed(96 * 1024, 99).generate();
        let first = &set.sources[0];
        let range = first.record_ranges()[0].clone();
        let mut dup = first.data[range].to_vec();
        dup.extend_from_slice(b"\n");
        let total_before = set.total_records();
        set.sources.push(Source {
            name: "zz-duplicate.txt".into(),
            data: dup,
            format: corpus::FormatKind::Medline,
        });
        (set, total_before)
    }

    fn run_dedup(p: usize) -> (Vec<DuplicatePair>, DocId) {
        let (src, n_before) = corpus_with_duplicate();
        let rt = Runtime::for_testing();
        let mut res = rt.run(p, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let topics = select_topics(ctx, &idx, &cfg, cfg.n_major, cfg.m_dims());
            let am = assoc::build(ctx, &s, &idx, &topics);
            let sigs = generate(ctx, &s, &am);
            let cl = cluster_documents(ctx, &sigs, s.doc_base, s.total_docs, &cfg);
            find_near_duplicates(ctx, &sigs, &cl, s.doc_base, 0.999)
        });
        (res.results.remove(0), n_before as DocId)
    }

    #[test]
    fn planted_duplicate_is_found() {
        let (pairs, dup_doc) = run_dedup(3);
        // The duplicate of doc 0 sits at the very end of the corpus.
        let hit = pairs.iter().find(|p| p.a == 0 && p.b == dup_doc);
        assert!(hit.is_some(), "missing planted pair in {pairs:?}");
        assert!(hit.unwrap().similarity > 0.999);
    }

    #[test]
    fn duplicate_detection_identical_across_p() {
        let (p1, _) = run_dedup(1);
        let (p4, _) = run_dedup(4);
        assert_eq!(p1.len(), p4.len());
        for (x, y) in p1.iter().zip(&p4) {
            assert_eq!((x.a, x.b), (y.a, y.b));
            assert!((x.similarity - y.similarity).abs() < 1e-9);
        }
    }

    #[test]
    fn pairs_are_ordered_and_unique() {
        let (pairs, _) = run_dedup(2);
        for w in pairs.windows(2) {
            assert!((w[0].a, w[0].b) < (w[1].a, w[1].b));
        }
        for p in &pairs {
            assert!(p.a < p.b);
            assert!((0.0..=1.0 + 1e-9).contains(&p.similarity));
        }
    }

    #[test]
    fn threshold_one_only_exact_copies() {
        // With threshold slightly above 1.0, nothing can match.
        let (src, _) = corpus_with_duplicate();
        let rt = Runtime::for_testing();
        let res = rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let topics = select_topics(ctx, &idx, &cfg, cfg.n_major, cfg.m_dims());
            let am = assoc::build(ctx, &s, &idx, &topics);
            let sigs = generate(ctx, &s, &am);
            let cl = cluster_documents(ctx, &sigs, s.doc_base, s.total_docs, &cfg);
            find_near_duplicates(ctx, &sigs, &cl, s.doc_base, 1.0 + 1e-6).len()
        });
        assert!(res.results.iter().all(|&n| n == 0));
    }
}
