//! Engine snapshots: every pipeline artifact in one checksummed
//! `inspire-store` container, for stage checkpoint/resume and
//! snapshot-backed query serving.
//!
//! A snapshot is **cumulative by stage**: a `Stage::Index` file contains
//! everything a `Stage::Scan` file does plus the inversion products, and
//! a `Stage::Final` file holds the complete engine output. Resuming from
//! a stage-*k* checkpoint restarts the pipeline at stage *k+1* and — at
//! the same processor count — reproduces the uninterrupted run
//! bit-for-bit (the restore paths rebuild exactly the per-rank state the
//! live stages would have produced; the engine is deterministic from
//! there).
//!
//! Restore requires the snapshot's processor count, with one exception:
//! a **single rank** may load any snapshot for query serving — queries
//! read only the vocabulary, postings, and global statistics, which are
//! partition-independent.

use crate::assoc::AssociationMatrix;
use crate::cluster::Clustering;
use crate::config::EngineConfig;
use crate::index::{pack_posting, unpack_posting, InvertedIndex, Posting, RankLoad};
use crate::pipeline::{EngineOutput, EngineSummary};
use crate::scan::{unpack_entry, LocalDoc, LocalField, ScanOutput};
use crate::signature::{SignatureStats, Signatures};
use crate::topicality::TopicSelection;
use crate::{DocId, TermId};
use corpus::SourceSet;
use ga::{DistHashMap, GlobalArray, GlobalArray2D};
use inspire_store::{codec, Snapshot, SnapshotWriter};
use intern::TermTable;
use spmd::Ctx;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

// The codec packs the field id into 3 bits of the value varint.
const _: () = assert!(
    crate::FIELD_NAMES.len() <= 8,
    "field ids must fit the codec's 3-bit field slot"
);

/// Codec pair for one posting: key = doc id, val = `freq << 3 | field`.
/// Pairs must be produced from [`Posting`]-sorted order (doc, field,
/// freq) so the decoded sequence matches what the legacy reader's
/// post-sort produced — served answers stay byte-identical.
pub fn posting_to_pair(p: Posting) -> (u32, u32) {
    (p.doc, (p.freq.min(0xFF_FFFF) << 3) | p.field as u32)
}

/// Inverse of [`posting_to_pair`].
pub fn pair_to_posting(key: u32, val: u32) -> Posting {
    Posting {
        doc: key,
        field: (val & 0x7) as crate::FieldId,
        freq: val >> 3,
    }
}

/// Pipeline stage a snapshot was taken after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// After Scan & Map: vocabulary, forward index, document structure.
    Scan = 1,
    /// After inverted file indexing and global term statistics.
    Index = 2,
    /// After topicality, association matrix, and signature generation
    /// (post adaptive-dimensionality loop).
    Sig = 3,
    /// After clustering and projection: the complete engine output.
    Final = 4,
}

impl Stage {
    fn from_u64(v: u64) -> Option<Stage> {
        match v {
            1 => Some(Stage::Scan),
            2 => Some(Stage::Index),
            3 => Some(Stage::Sig),
            4 => Some(Stage::Final),
            _ => None,
        }
    }

    /// Checkpoint file name for this stage.
    pub fn file_name(self) -> &'static str {
        match self {
            Stage::Scan => "ckpt_scan.isnap",
            Stage::Index => "ckpt_index.isnap",
            Stage::Sig => "ckpt_sig.isnap",
            Stage::Final => "ckpt_final.isnap",
        }
    }
}

/// Path of the checkpoint file for `stage` under `dir`.
pub fn checkpoint_path(dir: &Path, stage: Stage) -> PathBuf {
    dir.join(stage.file_name())
}

// Meta section layout (u64 slots).
const META_STAGE: usize = 0;
const META_NPROCS: usize = 1;
const META_TOTAL_DOCS: usize = 2;
const META_VOCAB: usize = 3;
const META_CONFIG_FP: usize = 4;
const META_CORPUS_FP: usize = 5;
const META_TOTAL_TOKENS: usize = 6;
const META_N_MAJOR: usize = 7;
const META_M_DIMS: usize = 8;
const META_EXPANSIONS: usize = 9;
const META_SIG_TOTAL: usize = 10;
const META_SIG_NULL: usize = 11;
const META_SIG_WEAK: usize = 12;
const META_K: usize = 13;
const META_KMEANS_ITERS: usize = 14;
const META_OBJECTIVE_BITS: usize = 15;
const META_VARIANCE_BITS: usize = 16;
const META_PROJ_DIMS: usize = 17;
const META_LEN: usize = 18;

/// Fingerprint of the configuration fields that affect engine *results*
/// (execution-detail fields — thread width, checkpoint/snapshot paths —
/// are deliberately excluded: they change how a run executes, not what
/// it computes).
pub fn config_fingerprint(cfg: &EngineConfig) -> u64 {
    let s = format!(
        "{}|{}|{}|{:?}|{}|{}|{}|{}|{:?}|{}|{}|{}|{}|{}|{:?}|{}",
        cfg.n_major,
        cfg.topic_ratio,
        cfg.n_clusters,
        cfg.cluster_method,
        cfg.projection_dims,
        cfg.max_kmeans_iters,
        cfg.kmeans_tol,
        cfg.chunk_docs,
        cfg.balancing,
        cfg.adaptive_dims,
        cfg.max_dim_expansions,
        cfg.weak_sig_threshold,
        cfg.min_df,
        cfg.max_df_frac,
        cfg.tokenizer,
        cfg.seed,
    );
    intern::fxhash(s.as_bytes())
}

/// Fingerprint of the corpus content (names, sizes, and bytes).
pub fn corpus_fingerprint(sources: &SourceSet) -> u64 {
    let mut h = intern::fxhash(b"corpus");
    for s in &sources.sources {
        h = h
            .rotate_left(11)
            .wrapping_add(intern::fxhash(s.name.as_bytes()))
            .rotate_left(11)
            .wrapping_add(intern::fxhash(&s.data));
    }
    h
}

/// What a snapshot write reported (rank 0 only).
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Host wall-clock seconds spent serializing and writing the file.
    pub write_seconds: f64,
    /// Total file size in bytes.
    pub total_bytes: u64,
    /// `(section name, payload bytes)` per section.
    pub sections: Vec<(String, u64)>,
}

/// Everything available for a snapshot at some stage. Later-stage fields
/// are `None` for earlier-stage snapshots.
pub struct SnapshotInput<'a> {
    pub stage: Stage,
    pub config_fp: u64,
    pub corpus_fp: u64,
    pub scan: &'a ScanOutput,
    pub index: Option<&'a InvertedIndex>,
    pub topics: Option<&'a TopicSelection>,
    pub am: Option<&'a AssociationMatrix>,
    pub sigs: Option<&'a Signatures>,
    pub expansions: usize,
    pub clustering: Option<&'a Clustering>,
    pub coords_nd: Option<&'a [f64]>,
    pub projection_dims: usize,
    pub variance_explained: f64,
    pub labels: Option<&'a [Vec<String>]>,
}

/// Write an engine snapshot. Collective: all ranks participate in the
/// gathers; rank 0 writes `path` (atomically, via a temp file + rename)
/// and returns the report. The write is fenced by a barrier, so on
/// return every rank may rely on the file existing.
pub fn write_engine_snapshot(
    ctx: &Ctx,
    path: &Path,
    inp: &SnapshotInput<'_>,
) -> io::Result<Option<SnapshotReport>> {
    let scan = inp.scan;
    let total_docs = scan.total_docs as usize;

    // ---- Collect per-rank document structure on rank 0 ----
    let doc_bases: Vec<u64> = ctx.allgather(scan.doc_base as u64, 8);
    let mut docbase: Vec<u64> = doc_bases;
    docbase.push(total_docs as u64);

    let mut my_doctok: Vec<u32> = Vec::with_capacity(scan.docs.len());
    let mut my_segcnt: Vec<u32> = Vec::with_capacity(scan.docs.len());
    let mut my_segfld: Vec<u32> = Vec::new();
    let mut my_seglen: Vec<u32> = Vec::new();
    for d in &scan.docs {
        my_doctok.push(d.tokens);
        my_segcnt.push(d.fields.len() as u32);
        for f in &d.fields {
            my_segfld.push(f.field as u32);
            my_seglen.push(f.counts.len() as u32);
        }
    }
    let seg_bytes = (my_segfld.len() * 8 + my_doctok.len() * 8) as u64;
    let doctok = ctx.gather_data(0, my_doctok, seg_bytes);
    let segcnt = ctx.gather_data(0, my_segcnt, 0);
    let segfld = ctx.gather_data(0, my_segfld, 0);
    let seglen = ctx.gather_data(0, my_seglen, 0);

    let my_rankio = vec![
        scan.bytes_scanned,
        scan.tokens_scanned,
        scan.vocab_rpc_msgs,
        scan.vocab_rpc_scalar_equiv,
    ];
    let rankio = ctx.gather_data(0, my_rankio, 32);

    // ---- Replicate the global arrays (collective) ----
    let fwdoff = scan.fwd_offsets.to_vec_collective(ctx);
    let fwddat = scan.fwd_data.to_vec_collective(ctx);
    let postdat = inp.index.map(|idx| idx.postings.to_vec_collective(ctx));
    let sigdat = inp.sigs.map(|s| s.global.to_vec_collective(ctx));

    // ---- Final-stage gathers ----
    let assign = inp.clustering.map(|cl| {
        ctx.gather_data(0, cl.assignments.clone(), (cl.assignments.len() * 4) as u64)
            .map(|parts| parts.concat())
    });
    let coordnd = inp.coords_nd.map(|nd| {
        ctx.gather_data(0, nd.to_vec(), (nd.len() * 8) as u64)
            .map(|parts| parts.concat())
    });

    let mut result = Ok(None);
    if ctx.rank() == 0 {
        result = (|| {
            let start = std::time::Instant::now();
            let mut meta = vec![0u64; META_LEN];
            meta[META_STAGE] = inp.stage as u64;
            meta[META_NPROCS] = ctx.nprocs() as u64;
            meta[META_TOTAL_DOCS] = total_docs as u64;
            meta[META_VOCAB] = scan.vocab_size() as u64;
            meta[META_CONFIG_FP] = inp.config_fp;
            meta[META_CORPUS_FP] = inp.corpus_fp;
            if let Some(idx) = inp.index {
                meta[META_TOTAL_TOKENS] = idx.total_tokens;
            }
            if let Some(t) = inp.topics {
                meta[META_N_MAJOR] = t.major.len() as u64;
                meta[META_M_DIMS] = t.m_dims() as u64;
                meta[META_EXPANSIONS] = inp.expansions as u64;
            }
            if let Some(s) = inp.sigs {
                meta[META_SIG_TOTAL] = s.stats.total;
                meta[META_SIG_NULL] = s.stats.null;
                meta[META_SIG_WEAK] = s.stats.weak;
            }
            if let Some(cl) = inp.clustering {
                meta[META_K] = cl.k as u64;
                meta[META_KMEANS_ITERS] = cl.iterations as u64;
                meta[META_OBJECTIVE_BITS] = cl.objective.to_bits();
            }
            meta[META_VARIANCE_BITS] = inp.variance_explained.to_bits();
            meta[META_PROJ_DIMS] = inp.projection_dims as u64;

            let doctok: Vec<u32> = doctok.as_ref().unwrap().concat();
            let segcnt: Vec<u32> = segcnt.as_ref().unwrap().concat();
            let segfld: Vec<u32> = segfld.as_ref().unwrap().concat();
            let seglen: Vec<u32> = seglen.as_ref().unwrap().concat();
            let mut segoff: Vec<u64> = Vec::with_capacity(total_docs + 1);
            let mut at = 0u64;
            for &c in &segcnt {
                segoff.push(at);
                at += c as u64;
            }
            segoff.push(at);
            let rankio: Vec<u64> = rankio.as_ref().unwrap().concat();

            let tmp = path.with_extension("isnap.tmp");
            let mut w = SnapshotWriter::create(&tmp)?;
            w.add_u64s("meta", &meta)?;
            w.add_u64s("docbase", &docbase)?;
            w.add_bytes("terms", scan.terms.arena_bytes())?;
            w.add_u32s("termoff", scan.terms.offsets())?;
            w.add_u32s("doctok", &doctok)?;
            w.add_u64s("segoff", &segoff)?;
            w.add_u32s("segfld", &segfld)?;
            w.add_u32s("seglen", &seglen)?;
            w.add_i64s("fwdoff", &fwdoff)?;
            w.add_u64s("fwddat", &fwddat)?;
            w.add_u64s("rankio", &rankio)?;

            if let Some(idx) = inp.index {
                let enc = encode_index_sections(
                    &idx.offsets,
                    postdat.as_ref().unwrap(),
                    &idx.df,
                    &idx.tf,
                );
                w.add_packed("postdir", &enc.dir)?;
                w.add_packed("postblk", &enc.blk)?;
                w.add_skips("postskp", &enc.skips)?;
                w.add_packed("dfv", &enc.dfv)?;
                w.add_packed("tfv", &enc.tfv)?;
                let load: Vec<u64> = idx
                    .load
                    .iter()
                    .flat_map(|l| {
                        [
                            l.own_tasks as u64,
                            l.stolen_tasks as u64,
                            l.postings,
                            l.seconds.to_bits(),
                        ]
                    })
                    .collect();
                w.add_u64s("load", &load)?;
            }

            if let (Some(t), Some(am), Some(_)) = (inp.topics, inp.am, inp.sigs) {
                w.add_u32s("major", &t.major)?;
                w.add_f64s("mscore", &t.scores)?;
                w.add_u32s("topics", &t.topics)?;
                w.add_f64s("assoc", &am.values)?;
                w.add_f64s("sigs", sigdat.as_ref().unwrap())?;
            }

            if let (Some(cl), Some(labels)) = (inp.clustering, inp.labels) {
                w.add_u32s("assign", assign.as_ref().unwrap().as_ref().unwrap())?;
                w.add_f64s("centroid", &cl.centroids)?;
                w.add_u64s("csize", &cl.sizes)?;
                w.add_f64s("coordnd", coordnd.as_ref().unwrap().as_ref().unwrap())?;
                let mut labstr = Vec::new();
                let mut laboff: Vec<u32> = vec![0];
                let mut labcnt: Vec<u32> = Vec::with_capacity(labels.len());
                for cluster in labels {
                    labcnt.push(cluster.len() as u32);
                    for term in cluster {
                        labstr.extend_from_slice(term.as_bytes());
                        laboff.push(labstr.len() as u32);
                    }
                }
                w.add_bytes("labstr", &labstr)?;
                w.add_u32s("laboff", &laboff)?;
                w.add_u32s("labcnt", &labcnt)?;

                // ---- IVF + quantized signature sections (§13) ----
                // The k-means centroids double as the IVF coarse
                // quantizer; signatures are re-encoded as u8 codes with
                // per-signature scale/offset plus an exact f64 norm
                // table, grouped into per-centroid lists. Skipped for
                // degenerate corpora with no signature dimensions —
                // similarity queries are meaningless there.
                if let (Some(t), Some(sd)) = (inp.topics, sigdat.as_ref()) {
                    let m_dims = t.m_dims();
                    let assign_all = assign.as_ref().unwrap().as_ref().unwrap();
                    if m_dims > 0 && !assign_all.is_empty() {
                        let ivf = crate::ann::build_ivf(sd, m_dims, assign_all, cl.k);
                        w.add_quant("qsig", &ivf.codes, assign_all.len(), m_dims)?;
                        w.add_f64s("qscale", &ivf.scale)?;
                        w.add_f64s("qoff", &ivf.offset)?;
                        w.add_f64s("signrm", &ivf.norm)?;
                        w.add_u32s("ivfdoc", &ivf.ivfdoc)?;
                        w.add_u64s("ivfoff", &ivf.ivfoff)?;
                    }
                }
            }

            let stats = w.finish()?;
            std::fs::rename(&tmp, path)?;
            Ok(Some(SnapshotReport {
                write_seconds: start.elapsed().as_secs_f64(),
                total_bytes: stats.total_bytes,
                sections: stats.sections,
            }))
        })();
    }
    ctx.barrier();
    result
}

/// The block-compressed index sections (DESIGN.md §8): a per-term
/// directory, concatenated delta/varint posting blocks, skip entries for
/// multi-block terms only, and varint df/tf streams.
pub struct EncodedIndex {
    pub dir: Vec<u8>,
    pub blk: Vec<u8>,
    pub skips: Vec<u64>,
    pub dfv: Vec<u8>,
    pub tfv: Vec<u8>,
}

/// Encode the replicated index into the compressed v2 sections. Postings
/// are sorted per term (scatter order depends on scheduling) before
/// delta-encoding, which both makes the bytes deterministic and matches
/// the order every query path serves.
fn encode_index_sections(offsets: &[i64], postdat: &[u64], df: &[u32], tf: &[u64]) -> EncodedIndex {
    encode_posting_sections(offsets.len().saturating_sub(1), df, tf, |t, posts| {
        let (lo, hi) = (offsets[t] as usize, offsets[t + 1] as usize);
        posts.extend(postdat[lo..hi].iter().map(|&e| unpack_posting(e)));
    })
}

/// Encode arbitrary posting lists into the same compressed sections the
/// batch pipeline writes. `fill` appends term `t`'s postings (any order —
/// they are [`Posting`]-sorted here). Shared with the incremental-ingest
/// sealer so segment bytes follow the exact rules of a full rebuild:
/// saturated freqs, count+len directory varints, and skip entries only
/// for lists longer than one block.
pub fn encode_posting_sections(
    vocab: usize,
    df: &[u32],
    tf: &[u64],
    mut fill: impl FnMut(usize, &mut Vec<Posting>),
) -> EncodedIndex {
    let mut enc = EncodedIndex {
        dir: Vec::with_capacity(vocab * 3),
        blk: Vec::new(),
        skips: Vec::new(),
        dfv: Vec::with_capacity(vocab * 2),
        tfv: Vec::with_capacity(vocab * 2),
    };
    let mut posts: Vec<Posting> = Vec::new();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut term_skips: Vec<u64> = Vec::new();
    for t in 0..vocab {
        posts.clear();
        fill(t, &mut posts);
        posts.sort_unstable();
        pairs.clear();
        pairs.extend(posts.iter().map(|&p| posting_to_pair(p)));
        term_skips.clear();
        let byte_len = codec::encode_list(&pairs, &mut enc.blk, &mut term_skips);
        codec::write_u32(&mut enc.dir, pairs.len() as u32);
        codec::write_u32(&mut enc.dir, byte_len as u32);
        // Single-block lists need no seek table; deriving "no skips" from
        // the count keeps the section proportional to long lists only.
        if pairs.len() > codec::BLOCK_LEN {
            enc.skips.extend_from_slice(&term_skips);
        }
    }
    for &d in df {
        codec::write_u32(&mut enc.dfv, d);
    }
    for &v in tf {
        codec::write_u64(&mut enc.tfv, v);
    }
    enc
}

/// Parsed `postdir` directory: where each term's compressed posting list
/// and skip entries live inside the `postblk` / `postskp` sections.
/// Parsing touches only the directory (two varints per term); posting
/// bytes stay unread until a query decodes them.
pub struct PostingsDir {
    counts: Vec<u32>,
    offsets: Vec<u64>,
    skip_offsets: Vec<u32>,
}

impl PostingsDir {
    /// Parse and fully cross-check the directory against the posting and
    /// skip section lengths.
    pub fn parse(dir: &[u8], vocab: usize, blk_len: usize, skip_len: usize) -> io::Result<Self> {
        let err =
            |msg: String| io::Error::new(io::ErrorKind::InvalidData, format!("postdir: {msg}"));
        let mut counts = Vec::with_capacity(vocab);
        let mut offsets = Vec::with_capacity(vocab + 1);
        let mut skip_offsets = Vec::with_capacity(vocab + 1);
        let mut at = 0usize;
        let mut byte_at = 0u64;
        let mut skip_at = 0u32;
        for _ in 0..vocab {
            offsets.push(byte_at);
            skip_offsets.push(skip_at);
            let n = codec::read_u32(dir, &mut at)?;
            let len = codec::read_u32(dir, &mut at)?;
            counts.push(n);
            byte_at += len as u64;
            if n as usize > codec::BLOCK_LEN {
                skip_at += (n as usize).div_ceil(codec::BLOCK_LEN) as u32;
            }
        }
        offsets.push(byte_at);
        skip_offsets.push(skip_at);
        if at != dir.len() {
            return Err(err(format!("{} trailing bytes", dir.len() - at)));
        }
        if byte_at != blk_len as u64 {
            return Err(err(format!(
                "directory covers {byte_at} posting bytes, section has {blk_len}"
            )));
        }
        if skip_at as usize != skip_len {
            return Err(err(format!(
                "directory expects {skip_at} skip entries, section has {skip_len}"
            )));
        }
        Ok(PostingsDir {
            counts,
            offsets,
            skip_offsets,
        })
    }

    pub fn vocab(&self) -> usize {
        self.counts.len()
    }

    /// Posting count of `term`.
    pub fn count(&self, term: TermId) -> u32 {
        self.counts[term as usize]
    }

    /// Total postings across all terms.
    pub fn total_postings(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Byte range of `term`'s list within `postblk`.
    pub fn byte_range(&self, term: TermId) -> Range<usize> {
        self.offsets[term as usize] as usize..self.offsets[term as usize + 1] as usize
    }

    /// Range of `term`'s entries within `postskp` (empty for lists of at
    /// most one block).
    pub fn skip_range(&self, term: TermId) -> Range<usize> {
        self.skip_offsets[term as usize] as usize..self.skip_offsets[term as usize + 1] as usize
    }
}

/// Publish an already-validated on-disk snapshot (typically a
/// final-stage checkpoint) to `path` by copying its bytes, so a resumed
/// run that recomputes nothing still honours
/// [`crate::EngineConfig::snapshot_out`]. Collective: rank 0 copies via
/// a temp file + rename, and the barrier fences the rename.
pub fn republish_snapshot(
    ctx: &Ctx,
    snap: &EngineSnapshot,
    path: &Path,
) -> io::Result<Option<SnapshotReport>> {
    let mut result = Ok(None);
    if ctx.rank() == 0 {
        result = (|| {
            let start = std::time::Instant::now();
            let tmp = path.with_extension("isnap.tmp");
            std::fs::copy(snap.store().source(), &tmp)?;
            std::fs::rename(&tmp, path)?;
            Ok(Some(SnapshotReport {
                write_seconds: start.elapsed().as_secs_f64(),
                total_bytes: snap.store().total_bytes(),
                sections: snap
                    .store()
                    .sections()
                    .map(|(name, _, bytes)| (name.to_string(), bytes))
                    .collect(),
            }))
        })();
    }
    ctx.barrier();
    result
}

/// Parsed snapshot metadata.
#[derive(Debug, Clone)]
pub struct EngineMeta {
    pub stage: Stage,
    pub nprocs: usize,
    pub total_docs: u32,
    pub vocab_size: usize,
    pub config_fp: u64,
    pub corpus_fp: u64,
    pub total_tokens: u64,
    pub n_major: usize,
    pub m_dims: usize,
    pub dim_expansions: usize,
    pub sig_stats: SignatureStats,
    pub k: usize,
    pub kmeans_iters: usize,
    pub kmeans_objective: f64,
    pub variance_explained: f64,
    pub projection_dims: usize,
}

/// A loaded, validated engine snapshot. Construction verifies every
/// checksum (via [`inspire_store::Snapshot::open`]) and that all
/// sections the recorded stage promises are present and mutually
/// consistent in size.
pub struct EngineSnapshot {
    snap: Snapshot,
    meta: EngineMeta,
}

fn bad(source: &str, msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{source}: {msg}"))
}

impl EngineSnapshot {
    /// Open and validate an engine snapshot file.
    pub fn open(path: &Path) -> io::Result<EngineSnapshot> {
        Self::from_store(Snapshot::open(path)?)
    }

    /// Validate an already-loaded store container as an engine snapshot.
    pub fn from_store(snap: Snapshot) -> io::Result<EngineSnapshot> {
        let src = snap.source().to_string();
        let m = snap.require("meta")?.as_u64s()?;
        if m.len() != META_LEN {
            return Err(bad(
                &src,
                format!("meta section has {} slots, expected {META_LEN}", m.len()),
            ));
        }
        let stage = Stage::from_u64(m[META_STAGE])
            .ok_or_else(|| bad(&src, format!("unknown stage {}", m[META_STAGE])))?;
        let meta = EngineMeta {
            stage,
            nprocs: m[META_NPROCS] as usize,
            total_docs: m[META_TOTAL_DOCS] as u32,
            vocab_size: m[META_VOCAB] as usize,
            config_fp: m[META_CONFIG_FP],
            corpus_fp: m[META_CORPUS_FP],
            total_tokens: m[META_TOTAL_TOKENS],
            n_major: m[META_N_MAJOR] as usize,
            m_dims: m[META_M_DIMS] as usize,
            dim_expansions: m[META_EXPANSIONS] as usize,
            sig_stats: SignatureStats {
                total: m[META_SIG_TOTAL],
                null: m[META_SIG_NULL],
                weak: m[META_SIG_WEAK],
            },
            k: m[META_K] as usize,
            kmeans_iters: m[META_KMEANS_ITERS] as usize,
            kmeans_objective: f64::from_bits(m[META_OBJECTIVE_BITS]),
            variance_explained: f64::from_bits(m[META_VARIANCE_BITS]),
            projection_dims: m[META_PROJ_DIMS] as usize,
        };
        let s = EngineSnapshot { snap, meta };
        s.validate_sections()?;
        Ok(s)
    }

    /// Check stage-promised sections exist with mutually consistent sizes.
    fn validate_sections(&self) -> io::Result<()> {
        let src = self.snap.source();
        let m = &self.meta;
        let docs = m.total_docs as usize;
        let expect = |name: &str, len: usize, want: usize| -> io::Result<()> {
            if len != want {
                return Err(bad(
                    src,
                    format!("section `{name}` has {len} elements, expected {want}"),
                ));
            }
            Ok(())
        };
        if m.nprocs == 0 {
            return Err(bad(src, "snapshot records zero processes".into()));
        }
        expect(
            "docbase",
            self.snap.require("docbase")?.as_u64s()?.len(),
            m.nprocs + 1,
        )?;
        expect(
            "termoff",
            self.snap.require("termoff")?.as_u32s()?.len(),
            m.vocab_size + 1,
        )?;
        expect(
            "doctok",
            self.snap.require("doctok")?.as_u32s()?.len(),
            docs,
        )?;
        let segoff = self.snap.require("segoff")?.as_u64s()?;
        expect("segoff", segoff.len(), docs + 1)?;
        let n_segs = *segoff.last().unwrap_or(&0) as usize;
        expect(
            "segfld",
            self.snap.require("segfld")?.as_u32s()?.len(),
            n_segs,
        )?;
        expect(
            "seglen",
            self.snap.require("seglen")?.as_u32s()?.len(),
            n_segs,
        )?;
        let fwdoff = self.snap.require("fwdoff")?.as_i64s()?;
        expect("fwdoff", fwdoff.len(), docs + 1)?;
        let n_entries = *fwdoff.last().unwrap_or(&0) as usize;
        expect(
            "fwddat",
            self.snap.require("fwddat")?.as_u64s()?.len(),
            n_entries,
        )?;
        expect(
            "rankio",
            self.snap.require("rankio")?.as_u64s()?.len(),
            m.nprocs * 4,
        )?;
        if m.stage >= Stage::Index {
            if self.has_compressed_index() {
                // v2 block-compressed layout: the directory cross-checks
                // the posting and skip section lengths; posting bytes are
                // covered by the store CRCs and stay undecoded until a
                // query needs them.
                let dir = self.snap.require("postdir")?.as_packed()?;
                let blk = self.snap.require("postblk")?.as_packed()?;
                let skips = self.snap.require("postskp")?.as_skips()?;
                PostingsDir::parse(dir, m.vocab_size, blk.len(), skips.len())
                    .map_err(|e| bad(src, e.to_string()))?;
                let dfv = self.snap.require("dfv")?.as_packed()?;
                let mut at = 0usize;
                for _ in 0..m.vocab_size {
                    codec::read_u32(dfv, &mut at).map_err(|e| bad(src, format!("dfv: {e}")))?;
                }
                expect("dfv", dfv.len(), at)?;
                let tfv = self.snap.require("tfv")?.as_packed()?;
                let mut at = 0usize;
                for _ in 0..m.vocab_size {
                    codec::read_u64(tfv, &mut at).map_err(|e| bad(src, format!("tfv: {e}")))?;
                }
                expect("tfv", tfv.len(), at)?;
            } else {
                // Legacy (format v1) fixed-width layout, retained so
                // pre-bump snapshots keep loading and serving.
                let postoff = self.snap.require("postoff")?.as_i64s()?;
                expect("postoff", postoff.len(), m.vocab_size + 1)?;
                let n_post = *postoff.last().unwrap_or(&0) as usize;
                expect(
                    "postdat",
                    self.snap.require("postdat")?.as_u64s()?.len(),
                    n_post,
                )?;
                expect(
                    "df",
                    self.snap.require("df")?.as_u32s()?.len(),
                    m.vocab_size,
                )?;
                expect(
                    "tf",
                    self.snap.require("tf")?.as_u64s()?.len(),
                    m.vocab_size,
                )?;
            }
            expect(
                "load",
                self.snap.require("load")?.as_u64s()?.len(),
                m.nprocs * 4,
            )?;
        }
        if m.stage >= Stage::Sig {
            expect(
                "major",
                self.snap.require("major")?.as_u32s()?.len(),
                m.n_major,
            )?;
            expect(
                "mscore",
                self.snap.require("mscore")?.as_f64s()?.len(),
                m.n_major,
            )?;
            expect(
                "topics",
                self.snap.require("topics")?.as_u32s()?.len(),
                m.m_dims,
            )?;
            expect(
                "assoc",
                self.snap.require("assoc")?.as_f64s()?.len(),
                m.n_major * m.m_dims,
            )?;
            expect(
                "sigs",
                self.snap.require("sigs")?.as_f64s()?.len(),
                docs * m.m_dims,
            )?;
        }
        if m.stage >= Stage::Final {
            expect(
                "assign",
                self.snap.require("assign")?.as_u32s()?.len(),
                docs,
            )?;
            expect(
                "centroid",
                self.snap.require("centroid")?.as_f64s()?.len(),
                m.k * m.m_dims,
            )?;
            expect("csize", self.snap.require("csize")?.as_u64s()?.len(), m.k)?;
            expect(
                "coordnd",
                self.snap.require("coordnd")?.as_f64s()?.len(),
                docs * m.projection_dims,
            )?;
            let laboff = self.snap.require("laboff")?.as_u32s()?;
            let labcnt = self.snap.require("labcnt")?.as_u32s()?;
            expect("labcnt", labcnt.len(), m.k)?;
            let n_labels: usize = labcnt.iter().map(|&c| c as usize).sum();
            expect("laboff", laboff.len(), n_labels + 1)?;
            let labstr = self.snap.require("labstr")?.bytes();
            expect(
                "labstr",
                labstr.len(),
                *laboff.last().unwrap_or(&0) as usize,
            )?;
            if self.has_ann() {
                // The quantized store is validated here, up front and by
                // name — a malformed section must never surface later as
                // a short-slice panic in the query path.
                let qsig = self.snap.require("qsig")?.as_records(m.m_dims)?;
                expect("qsig", qsig.len(), docs * m.m_dims)?;
                expect(
                    "qscale",
                    self.snap.require("qscale")?.as_f64s()?.len(),
                    docs,
                )?;
                expect("qoff", self.snap.require("qoff")?.as_f64s()?.len(), docs)?;
                expect(
                    "signrm",
                    self.snap.require("signrm")?.as_f64s()?.len(),
                    docs,
                )?;
                let ivfoff = self.snap.require("ivfoff")?.as_u64s()?;
                expect("ivfoff", ivfoff.len(), m.k + 1)?;
                if ivfoff.first() != Some(&0)
                    || ivfoff.windows(2).any(|w| w[0] > w[1])
                    || *ivfoff.last().unwrap() != docs as u64
                {
                    return Err(bad(
                        src,
                        format!("section `ivfoff` is not a monotone partition of {docs} documents"),
                    ));
                }
                let ivfdoc = self.snap.require("ivfdoc")?.as_u32s()?;
                expect("ivfdoc", ivfdoc.len(), docs)?;
                let mut seen = vec![false; docs];
                for &d in ivfdoc {
                    if (d as usize) >= docs || seen[d as usize] {
                        return Err(bad(
                            src,
                            format!("section `ivfdoc` is not a permutation of 0..{docs} (doc {d})"),
                        ));
                    }
                    seen[d as usize] = true;
                }
            }
        }
        Ok(())
    }

    /// Whether the snapshot carries the IVF + quantized-signature
    /// sections (§13). Pre-ANN snapshots still load and serve; only
    /// similarity queries require a rebuild.
    pub fn has_ann(&self) -> bool {
        self.snap.has("qsig")
    }

    pub fn meta(&self) -> &EngineMeta {
        &self.meta
    }

    /// The underlying store container (section-level access).
    pub fn store(&self) -> &Snapshot {
        &self.snap
    }

    /// Whether the index sections use the block-compressed layout
    /// (format v2) rather than the legacy fixed-width arrays. Sniffed
    /// from the section table, not the file version: a v2 container may
    /// legally carry v1 sections.
    pub fn has_compressed_index(&self) -> bool {
        self.snap.has("postblk")
    }

    /// Parse the compressed-postings directory (v2 index sections).
    pub fn postings_dir(&self) -> io::Result<PostingsDir> {
        let dir = self.snap.require("postdir")?.as_packed()?;
        let blk = self.snap.require("postblk")?.as_packed()?;
        let skips = self.snap.require("postskp")?.as_skips()?;
        PostingsDir::parse(dir, self.meta.vocab_size, blk.len(), skips.len())
            .map_err(|e| bad(self.snap.source(), e.to_string()))
    }

    /// Document frequencies for every term, from whichever layout the
    /// snapshot carries.
    pub fn decode_df(&self) -> io::Result<Vec<u32>> {
        if self.has_compressed_index() {
            let dfv = self.snap.require("dfv")?.as_packed()?;
            let mut out = Vec::with_capacity(self.meta.vocab_size);
            let mut at = 0usize;
            codec::read_varints_u32(dfv, &mut at, self.meta.vocab_size, &mut out)
                .map_err(|e| bad(self.snap.source(), format!("dfv: {e}")))?;
            Ok(out)
        } else {
            Ok(self.snap.require("df")?.as_u32s()?.to_vec())
        }
    }

    /// Collection frequencies for every term, from whichever layout the
    /// snapshot carries.
    pub fn decode_tf(&self) -> io::Result<Vec<u64>> {
        if self.has_compressed_index() {
            let tfv = self.snap.require("tfv")?.as_packed()?;
            let mut out = Vec::with_capacity(self.meta.vocab_size);
            let mut at = 0usize;
            for _ in 0..self.meta.vocab_size {
                out.push(
                    codec::read_u64(tfv, &mut at)
                        .map_err(|e| bad(self.snap.source(), format!("tfv: {e}")))?,
                );
            }
            Ok(out)
        } else {
            Ok(self.snap.require("tf")?.as_u64s()?.to_vec())
        }
    }

    /// Decode every compressed posting list back into the engine's packed
    /// u64 layout (the resume path rebuilds the full global array; the
    /// serving tier instead decodes per query via [`PostingsDir`]).
    fn decode_postings_flat(&self) -> io::Result<(Vec<i64>, Vec<u64>)> {
        let dir = self.postings_dir()?;
        let blk = self.snap.require("postblk")?.as_packed()?;
        let mut offsets = Vec::with_capacity(dir.vocab() + 1);
        let mut data = Vec::with_capacity(dir.total_postings() as usize);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut at = 0i64;
        for t in 0..dir.vocab() {
            offsets.push(at);
            let n = dir.count(t as TermId) as usize;
            pairs.clear();
            codec::decode_list(&blk[dir.byte_range(t as TermId)], n, &mut pairs)
                .map_err(|e| bad(self.snap.source(), format!("postings of term {t}: {e}")))?;
            data.extend(
                pairs
                    .iter()
                    .map(|&(key, val)| pack_posting(pair_to_posting(key, val))),
            );
            at += n as i64;
        }
        offsets.push(at);
        Ok((offsets, data))
    }

    /// The canonical vocabulary.
    pub fn terms(&self) -> io::Result<TermTable> {
        let arena = self.snap.require("terms")?.bytes().to_vec();
        let offsets = self.snap.require("termoff")?.as_u32s()?.to_vec();
        TermTable::from_parts(arena, offsets).map_err(|e| bad(self.snap.source(), e))
    }

    /// This rank's document range `lo..hi` under the snapshot's
    /// partitioning — or all documents when serving on a single rank.
    fn doc_range(&self, ctx: &Ctx) -> io::Result<(usize, usize)> {
        let docs = self.meta.total_docs as usize;
        if ctx.nprocs() == self.meta.nprocs {
            let bases = self.snap.require("docbase")?.as_u64s()?;
            Ok((bases[ctx.rank()] as usize, bases[ctx.rank() + 1] as usize))
        } else if ctx.nprocs() == 1 {
            Ok((0, docs))
        } else {
            Err(bad(
                self.snap.source(),
                format!(
                    "snapshot was written at P={} and cannot restore at P={} \
                     (only the original count, or a single serving rank)",
                    self.meta.nprocs,
                    ctx.nprocs()
                ),
            ))
        }
    }

    /// Restore the Scan & Map stage state. Collective.
    pub fn restore_scan(&self, ctx: &Ctx) -> io::Result<ScanOutput> {
        let src = self.snap.source();
        let (lo, hi) = self.doc_range(ctx)?;
        let terms = self.terms()?;
        let doctok = self.snap.require("doctok")?.as_u32s()?;
        let segoff = self.snap.require("segoff")?.as_u64s()?;
        let segfld = self.snap.require("segfld")?.as_u32s()?;
        let seglen = self.snap.require("seglen")?.as_u32s()?;
        let fwdoff = self.snap.require("fwdoff")?.as_i64s()?;
        let fwddat = self.snap.require("fwddat")?.as_u64s()?;

        let mut docs: Vec<LocalDoc> = Vec::with_capacity(hi - lo);
        for d in lo..hi {
            let mut entry_at = fwdoff[d] as usize;
            let mut fields = Vec::with_capacity((segoff[d + 1] - segoff[d]) as usize);
            for s in segoff[d] as usize..segoff[d + 1] as usize {
                let n = seglen[s] as usize;
                let mut counts: Vec<(TermId, u32)> = Vec::with_capacity(n);
                for e in &fwddat[entry_at..entry_at + n] {
                    let (t, f, c) = unpack_entry(*e);
                    if f as u32 != segfld[s] {
                        return Err(bad(
                            src,
                            format!(
                                "doc {d}: forward entry field {f} disagrees with segment field {}",
                                segfld[s]
                            ),
                        ));
                    }
                    counts.push((t, c));
                }
                entry_at += n;
                fields.push(LocalField {
                    field: segfld[s] as crate::FieldId,
                    counts,
                });
            }
            if entry_at != fwdoff[d + 1] as usize {
                return Err(bad(
                    src,
                    format!(
                        "doc {d}: segments cover {entry_at} entries, offsets say {}",
                        fwdoff[d + 1]
                    ),
                ));
            }
            docs.push(LocalDoc {
                doc_id: d as DocId,
                fields,
                tokens: doctok[d],
            });
        }

        // Rebuild the forward global arrays: each rank fills its own
        // block from the (replicated) snapshot sections. No messages —
        // the restore is embarrassingly local.
        let total_docs = self.meta.total_docs as usize;
        let fwd_offsets = GlobalArray::<i64>::create(ctx, total_docs + 1);
        fwd_offsets.with_local_mut(ctx, |local| {
            let r = fwd_offsets.distribution(ctx.rank());
            local.copy_from_slice(&fwdoff[r]);
        });
        let fwd_data = GlobalArray::<u64>::create(ctx, fwddat.len());
        fwd_data.with_local_mut(ctx, |local| {
            let r = fwd_data.distribution(ctx.rank());
            local.copy_from_slice(&fwddat[r]);
        });
        ctx.barrier();

        // Per-rank scan statistics: exact under the original
        // partitioning; summed onto the single rank when serving.
        let rankio = self.snap.require("rankio")?.as_u64s()?;
        let stat = |slot: usize| -> u64 {
            if ctx.nprocs() == self.meta.nprocs {
                rankio[ctx.rank() * 4 + slot]
            } else {
                (0..self.meta.nprocs).map(|r| rankio[r * 4 + slot]).sum()
            }
        };

        Ok(ScanOutput {
            docs,
            doc_base: lo as DocId,
            total_docs: self.meta.total_docs,
            // The distributed hashmap's arrival-order ids are dead state
            // after canonicalization; nothing downstream reads it.
            vocab: DistHashMap::create(ctx),
            terms: Arc::new(terms),
            fwd_offsets,
            fwd_data,
            bytes_scanned: stat(0),
            tokens_scanned: stat(1),
            vocab_rpc_msgs: stat(2),
            vocab_rpc_scalar_equiv: stat(3),
        })
    }

    /// Restore the inverted index and global term statistics. Collective.
    pub fn restore_index(&self, ctx: &Ctx) -> io::Result<InvertedIndex> {
        let (postoff, postdat): (Vec<i64>, Vec<u64>) = if self.has_compressed_index() {
            self.decode_postings_flat()?
        } else {
            (
                self.snap.require("postoff")?.as_i64s()?.to_vec(),
                self.snap.require("postdat")?.as_u64s()?.to_vec(),
            )
        };
        let df = self.decode_df()?;
        let tf = self.decode_tf()?;

        let postings = GlobalArray::<u64>::create(ctx, postdat.len());
        postings.with_local_mut(ctx, |local| {
            let r = postings.distribution(ctx.rank());
            local.copy_from_slice(&postdat[r]);
        });
        ctx.barrier();

        let loadw = self.snap.require("load")?.as_u64s()?;
        let load: Vec<RankLoad> = (0..self.meta.nprocs)
            .map(|r| RankLoad {
                own_tasks: loadw[r * 4] as u32,
                stolen_tasks: loadw[r * 4 + 1] as u32,
                postings: loadw[r * 4 + 2],
                seconds: f64::from_bits(loadw[r * 4 + 3]),
            })
            .collect();

        Ok(InvertedIndex {
            offsets: Arc::new(postoff),
            postings,
            df: Arc::new(df),
            tf: Arc::new(tf),
            total_docs: self.meta.total_docs,
            total_tokens: self.meta.total_tokens,
            load,
        })
    }

    /// Restore the signature-stage state: topic selection, association
    /// matrix, signatures, and the expansion count. Collective.
    pub fn restore_sig_state(
        &self,
        ctx: &Ctx,
    ) -> io::Result<(TopicSelection, AssociationMatrix, Signatures, usize)> {
        let (lo, hi) = self.doc_range(ctx)?;
        let m = self.meta.m_dims;
        let major = self.snap.require("major")?.as_u32s()?.to_vec();
        let scores = self.snap.require("mscore")?.as_f64s()?.to_vec();
        let topic_ids = self.snap.require("topics")?.as_u32s()?.to_vec();
        let assoc = self.snap.require("assoc")?.as_f64s()?.to_vec();
        let sigdat = self.snap.require("sigs")?.as_f64s()?;

        let topics = TopicSelection {
            major: major.clone(),
            scores,
            topics: topic_ids,
        };
        let row_of = major.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let am = AssociationMatrix {
            values: Arc::new(assoc),
            n: self.meta.n_major,
            m,
            row_of: Arc::new(row_of),
        };

        let local = sigdat[lo * m..hi * m].to_vec();
        let global = GlobalArray2D::<f64>::create(ctx, self.meta.total_docs as usize, m);
        global.with_local_mut(ctx, |rows, block| {
            block.copy_from_slice(&sigdat[rows.start * m..rows.end * m]);
        });
        ctx.barrier();
        let sigs = Signatures::from_parts(local, m, hi - lo, global, self.meta.sig_stats);
        Ok((topics, am, sigs, self.meta.dim_expansions))
    }

    /// Cluster labels (`Stage::Final` snapshots).
    pub fn labels(&self) -> io::Result<Vec<Vec<String>>> {
        let labstr = self.snap.require("labstr")?.bytes();
        let laboff = self.snap.require("laboff")?.as_u32s()?;
        let labcnt = self.snap.require("labcnt")?.as_u32s()?;
        let mut out = Vec::with_capacity(labcnt.len());
        let mut li = 0usize;
        for &c in labcnt {
            let mut cluster = Vec::with_capacity(c as usize);
            for _ in 0..c {
                let s = &labstr[laboff[li] as usize..laboff[li + 1] as usize];
                cluster.push(
                    std::str::from_utf8(s)
                        .map_err(|_| bad(self.snap.source(), format!("label {li} is not UTF-8")))?
                        .to_string(),
                );
                li += 1;
            }
            out.push(cluster);
        }
        Ok(out)
    }

    /// Reconstruct the complete [`EngineOutput`] from a `Stage::Final`
    /// snapshot without running any pipeline stage. Collective.
    pub fn restore_output(&self, ctx: &Ctx) -> io::Result<EngineOutput> {
        let src = self.snap.source();
        if self.meta.stage != Stage::Final {
            return Err(bad(
                src,
                format!("stage {:?} snapshot has no final output", self.meta.stage),
            ));
        }
        let (lo, hi) = self.doc_range(ctx)?;
        let dims = self.meta.projection_dims;
        let assign = self.snap.require("assign")?.as_u32s()?;
        let coordnd = self.snap.require("coordnd")?.as_f64s()?;
        let csize = self.snap.require("csize")?.as_u64s()?;
        let loadw = self.snap.require("load")?.as_u64s()?;

        let local_coords_nd = coordnd[lo * dims..hi * dims].to_vec();
        let local_coords: Vec<(f64, f64)> = local_coords_nd
            .chunks(dims)
            .map(|row| (row[0], row[1]))
            .collect();
        let rank0 = ctx.rank() == 0;
        let coords = rank0.then(|| coordnd.chunks(dims).map(|r| (r[0], r[1])).collect());
        let all_assignments = rank0.then(|| assign.to_vec());

        let load: Vec<RankLoad> = (0..self.meta.nprocs)
            .map(|r| RankLoad {
                own_tasks: loadw[r * 4] as u32,
                stolen_tasks: loadw[r * 4 + 1] as u32,
                postings: loadw[r * 4 + 2],
                seconds: f64::from_bits(loadw[r * 4 + 3]),
            })
            .collect();

        Ok(EngineOutput {
            local_coords,
            coords,
            local_coords_nd,
            projection_dims: dims,
            assignments: assign[lo..hi].to_vec(),
            all_assignments,
            doc_base: lo as DocId,
            cluster_labels: self.labels()?,
            cluster_sizes: csize.to_vec(),
            snapshot_report: None,
            summary: EngineSummary {
                vocab_size: self.meta.vocab_size,
                total_docs: self.meta.total_docs,
                total_tokens: self.meta.total_tokens,
                n_major: self.meta.n_major,
                m_dims: self.meta.m_dims,
                dim_expansions: self.meta.dim_expansions,
                sig_stats: self.meta.sig_stats,
                kmeans_iters: self.meta.kmeans_iters,
                kmeans_objective: self.meta.kmeans_objective,
                variance_explained: self.meta.variance_explained,
                load,
            },
        })
    }
}

/// Find the most advanced checkpoint in `dir` that matches this run
/// (fingerprints and processor count). Invalid, corrupt, or mismatched
/// files are skipped, not errors — resume falls back to earlier stages
/// and ultimately to a full run.
pub fn latest_checkpoint(
    dir: &Path,
    config_fp: u64,
    corpus_fp: u64,
    nprocs: usize,
) -> Option<EngineSnapshot> {
    for stage in [Stage::Final, Stage::Sig, Stage::Index, Stage::Scan] {
        let path = checkpoint_path(dir, stage);
        if !path.exists() {
            continue;
        }
        let Ok(snap) = EngineSnapshot::open(&path) else {
            continue;
        };
        let m = snap.meta();
        if m.stage == stage
            && m.config_fp == config_fp
            && m.corpus_fp == corpus_fp
            && m.nprocs == nprocs
        {
            return Some(snap);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_engine, Engine, EngineRun};
    use corpus::CorpusSpec;
    use perfmodel::CostModel;
    use spmd::Runtime;

    fn corpus() -> SourceSet {
        CorpusSpec {
            source_bytes: 8 * 1024,
            ..CorpusSpec::pubmed(128 * 1024, 29)
        }
        .generate()
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("va-snapshot-{}-{tag}", std::process::id()))
    }

    fn coord_bits(run: &EngineRun) -> Vec<(u64, u64)> {
        run.master()
            .coords
            .as_ref()
            .expect("rank 0 coords")
            .iter()
            .map(|&(x, y)| (x.to_bits(), y.to_bits()))
            .collect()
    }

    /// Satellite: kill the run after every stage boundary in turn, resume,
    /// and demand a bit-identical final result.
    #[test]
    fn crash_after_each_stage_then_resume_is_bit_identical() {
        let src = corpus();
        let base = EngineConfig::for_testing();
        let zero = Arc::new(CostModel::zero());
        let baseline = run_engine(2, zero.clone(), &src, &base);
        let want_coords = coord_bits(&baseline);
        let want_assign = baseline.master().all_assignments.clone().unwrap();
        let want_obj = baseline.master().summary.kmeans_objective.to_bits();

        for stop in [Stage::Scan, Stage::Index, Stage::Sig, Stage::Final] {
            let dir = tmp(&format!("crash-{stop:?}"));
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = EngineConfig {
                checkpoint_dir: Some(dir.clone()),
                ..base.clone()
            };
            // Simulate the crash: run through `stop`, abandon everything
            // the ranks held in memory, keep only the checkpoint files.
            let engine = Engine::new(cfg.clone());
            Runtime::new(zero.clone()).run(2, |ctx| {
                engine.run_until(ctx, &src, stop);
            });
            assert!(
                checkpoint_path(&dir, stop).exists(),
                "no checkpoint written for {stop:?}"
            );

            let resumed = run_engine(
                2,
                zero.clone(),
                &src,
                &EngineConfig {
                    resume: true,
                    ..cfg
                },
            );
            assert_eq!(coord_bits(&resumed), want_coords, "coords after {stop:?}");
            assert_eq!(
                resumed.master().all_assignments.clone().unwrap(),
                want_assign,
                "assignments after {stop:?}"
            );
            assert_eq!(
                resumed.master().summary.kmeans_objective.to_bits(),
                want_obj,
                "objective after {stop:?}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// A corrupt checkpoint is skipped (falling back to an earlier stage),
    /// never trusted: the run still completes with the baseline result.
    #[test]
    fn corrupt_checkpoint_falls_back_without_panicking() {
        let src = corpus();
        let base = EngineConfig::for_testing();
        let zero = Arc::new(CostModel::zero());
        let want = coord_bits(&run_engine(2, zero.clone(), &src, &base));

        let dir = tmp("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = EngineConfig {
            checkpoint_dir: Some(dir.clone()),
            ..base
        };
        let engine = Engine::new(cfg.clone());
        Runtime::new(zero.clone()).run(2, |ctx| {
            engine.run_until(ctx, &src, Stage::Index);
        });

        // Flip one byte in the middle of the index checkpoint and
        // truncate the scan checkpoint: both must be rejected.
        let idx_path = checkpoint_path(&dir, Stage::Index);
        let mut bytes = std::fs::read(&idx_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&idx_path, &bytes).unwrap();
        let scan_path = checkpoint_path(&dir, Stage::Scan);
        let scan_bytes = std::fs::read(&scan_path).unwrap();
        std::fs::write(&scan_path, &scan_bytes[..scan_bytes.len() - 64]).unwrap();
        assert!(EngineSnapshot::open(&idx_path).is_err());
        assert!(EngineSnapshot::open(&scan_path).is_err());

        let resumed = run_engine(
            2,
            zero,
            &src,
            &EngineConfig {
                resume: true,
                ..cfg
            },
        );
        assert_eq!(coord_bits(&resumed), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Checkpoints only resume runs they actually belong to.
    #[test]
    fn latest_checkpoint_matches_fingerprints() {
        let src = corpus();
        let cfg = EngineConfig::for_testing();
        let zero = Arc::new(CostModel::zero());
        let dir = tmp("fingerprint");
        let _ = std::fs::remove_dir_all(&dir);
        let with_ckpt = EngineConfig {
            checkpoint_dir: Some(dir.clone()),
            ..cfg.clone()
        };
        let engine = Engine::new(with_ckpt);
        Runtime::new(zero).run(2, |ctx| {
            engine.run_until(ctx, &src, Stage::Scan);
        });

        let config_fp = config_fingerprint(&cfg);
        let corpus_fp = corpus_fingerprint(&src);
        let found = latest_checkpoint(&dir, config_fp, corpus_fp, 2).expect("matching checkpoint");
        assert_eq!(found.meta().stage, Stage::Scan);
        assert_eq!(found.meta().nprocs, 2);
        // Any mismatch — different config, corpus, or processor count —
        // means no resume.
        assert!(latest_checkpoint(&dir, config_fp ^ 1, corpus_fp, 2).is_none());
        assert!(latest_checkpoint(&dir, config_fp, corpus_fp ^ 1, 2).is_none());
        assert!(latest_checkpoint(&dir, config_fp, corpus_fp, 3).is_none());
        // Execution-detail settings do not change the fingerprint …
        let exec = EngineConfig {
            threads_per_rank: 4,
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            ..cfg.clone()
        };
        assert_eq!(config_fingerprint(&exec), config_fp);
        // … but result-affecting ones do.
        let different = EngineConfig {
            n_clusters: cfg.n_clusters + 1,
            ..cfg.clone()
        };
        assert_ne!(config_fingerprint(&different), config_fp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A final-stage snapshot restores the complete output — including on
    /// a single serving rank loading a multi-rank snapshot.
    #[test]
    fn final_snapshot_restores_full_output() {
        let src = corpus();
        let zero = Arc::new(CostModel::zero());
        let path = tmp("final.isnap");
        let _ = std::fs::remove_file(&path);
        let cfg = EngineConfig {
            snapshot_out: Some(path.clone()),
            ..EngineConfig::for_testing()
        };
        let run = run_engine(2, zero.clone(), &src, &cfg);
        let report = run.master().snapshot_report.as_ref().expect("write report");
        assert!(report.total_bytes > 0);
        assert!(report.sections.iter().any(|(n, _)| n == "coordnd"));

        let snap = EngineSnapshot::open(&path).unwrap();
        assert_eq!(snap.meta().stage, Stage::Final);
        assert_eq!(snap.meta().total_docs, run.master().summary.total_docs);

        let mut res = Runtime::new(zero).run(1, |ctx| snap.restore_output(ctx).unwrap());
        let restored = res.results.remove(0);
        let want = run.master().coords.as_ref().unwrap();
        let got = restored.coords.as_ref().unwrap();
        assert_eq!(want.len(), got.len());
        for (a, b) in want.iter().zip(got) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert_eq!(
            restored.all_assignments.as_ref().unwrap(),
            run.master().all_assignments.as_ref().unwrap()
        );
        assert_eq!(restored.cluster_labels, run.master().cluster_labels);
        assert_eq!(restored.cluster_sizes, run.master().cluster_sizes);
        let _ = std::fs::remove_file(&path);
    }

    /// A resume that short-circuits on a final-stage checkpoint must
    /// still produce the requested `snapshot_out` file — by republishing
    /// the checkpoint's bytes — and report it.
    #[test]
    fn resume_from_final_checkpoint_republishes_snapshot() {
        let src = corpus();
        let zero = Arc::new(CostModel::zero());
        let dir = tmp("republish-ckpt");
        let out = tmp("republish.isnap");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&out);

        let cfg = EngineConfig {
            checkpoint_dir: Some(dir.clone()),
            ..EngineConfig::for_testing()
        };
        run_engine(2, zero.clone(), &src, &cfg);
        assert!(checkpoint_path(&dir, Stage::Final).exists());

        let resumed_cfg = EngineConfig {
            resume: true,
            snapshot_out: Some(out.clone()),
            ..cfg
        };
        let run = run_engine(2, zero, &src, &resumed_cfg);
        let report = run
            .master()
            .snapshot_report
            .as_ref()
            .expect("republished snapshot is reported");
        let ckpt = std::fs::read(checkpoint_path(&dir, Stage::Final)).unwrap();
        let published = std::fs::read(&out).unwrap();
        assert_eq!(ckpt, published, "republished bytes differ from checkpoint");
        assert_eq!(report.total_bytes, published.len() as u64);
        assert!(EngineSnapshot::open(&out).is_ok());

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&out);
    }
}
