//! Topicality: finding the discriminating terms (paper §3.4, step 4).
//!
//! *"Topicality is a measure that defines discriminating terms within a
//! set of documents. Our approach to compute topicality is based on
//! Bookstein's serial clustering method."*
//!
//! Bookstein, Klein & Raita's insight is that **content-bearing words
//! cluster serially**: a term that carries meaning concentrates its
//! occurrences in few documents, while function words spread evenly. For a
//! term with collection frequency `tf` in a collection of `D` documents,
//! random scattering would touch `E = D·(1 − (1 − 1/D)^tf)` distinct
//! documents in expectation. The *condensation* `(E − df)/E` measures how
//! far short of that the observed document frequency `df` falls; we weight
//! it by `ln(1 + tf)` so the measure prefers substantial terms over rare
//! flukes.
//!
//! Parallelization follows the paper: terms are sharded N/P per process,
//! each process scores its shard, and a global merge (an Allreduce over
//! the vocabulary-length score vector followed by an identical sort on
//! every rank — the collective whose cost makes this the one component
//! that does not scale, Figures 6b/7b) yields the top-N **major terms**;
//! the top M ≈ 10 % become the anchoring **topics**.

use crate::config::EngineConfig;
use crate::index::InvertedIndex;
use crate::TermId;
use perfmodel::WorkKind;
use spmd::{Ctx, ReduceOp};

/// Bookstein condensation score. Returns `None` for terms failing the
/// document-frequency filters (too rare to trust, or too common to
/// discriminate).
pub fn bookstein_score(
    df: u32,
    tf: u64,
    n_docs: u32,
    min_df: u32,
    max_df_frac: f64,
) -> Option<f64> {
    if df < min_df || n_docs == 0 {
        return None;
    }
    if df as f64 > max_df_frac * n_docs as f64 {
        return None;
    }
    let d = n_docs as f64;
    // E[df] under random scattering of tf occurrences over D documents.
    let expected = d * (1.0 - ((1.0 - 1.0 / d).ln() * tf as f64).exp());
    if expected <= 0.0 {
        return None;
    }
    let condensation = ((expected - df as f64) / expected).max(0.0);
    Some(condensation * (1.0 + tf as f64).ln())
}

/// The outcome of topic selection.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicSelection {
    /// Top-N terms by topicality, descending score (ties broken by term id,
    /// which is lexicographic under canonical vocabulary ids).
    pub major: Vec<TermId>,
    /// Scores aligned with `major`.
    pub scores: Vec<f64>,
    /// The top `M` of `major`: the anchoring dimensions of the topic space.
    pub topics: Vec<TermId>,
}

impl TopicSelection {
    /// Number of signature dimensions (M).
    pub fn m_dims(&self) -> usize {
        self.topics.len()
    }

    /// Position of `term` within `major`, if selected.
    pub fn major_rank(&self, term: TermId) -> Option<usize> {
        self.major.iter().position(|&t| t == term)
    }
}

/// Select major terms and topics with `n_major` overriding the config's N
/// (the adaptive-dimensionality loop passes expanded values).
pub fn select_topics(
    ctx: &Ctx,
    index: &InvertedIndex,
    cfg: &EngineConfig,
    n_major: usize,
    m_dims: usize,
) -> TopicSelection {
    let v = index.df.len();
    let p = ctx.nprocs();

    // Score this rank's term shard (N/P terms per process, §3.4) into a
    // full-length score vector (non-shard entries stay at the neutral
    // element of the max-merge).
    let lo = v * ctx.rank() / p;
    let hi = v * (ctx.rank() + 1) / p;
    ctx.charge_vocab(WorkKind::TopicalityTerms, (hi - lo) as u64);
    let mut score_vec = vec![f64::NEG_INFINITY; v];
    for (t, slot) in score_vec.iter_mut().enumerate().take(hi).skip(lo) {
        if let Some(s) = bookstein_score(
            index.df[t],
            index.tf[t],
            index.total_docs,
            cfg.min_df,
            cfg.max_df_frac,
        ) {
            *slot = s;
        }
    }

    // Global merge: an Allreduce over the vocabulary-length score vector
    // (shards are disjoint, so max-merge assembles the full vector), then
    // an identical top-N sort on every rank — the paper's "global
    // merge-sort … broadcast out to all processes". The Allreduce payload
    // is vocabulary-sized and independent of P while everything else
    // shrinks as 1/P: this is why topicality is the one component that
    // does not scale (Figures 6b/7b).
    let scores_all = ctx.allreduce_f64(score_vec, ReduceOp::Max);
    let log_v = (usize::BITS - v.max(2).leading_zeros()) as u64;
    ctx.charge_vocab(WorkKind::Flops, v as u64 * log_v);
    let mut all: Vec<(f64, TermId)> = scores_all
        .into_iter()
        .enumerate()
        .filter(|(_, s)| s.is_finite())
        .map(|(t, s)| (s, t as TermId))
        .collect();
    all.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    all.truncate(n_major);

    let major: Vec<TermId> = all.iter().map(|&(_, t)| t).collect();
    let scores: Vec<f64> = all.iter().map(|&(s, _)| s).collect();
    let topics: Vec<TermId> = major
        .iter()
        .copied()
        .take(m_dims.max(2).min(major.len()))
        .collect();
    TopicSelection {
        major,
        scores,
        topics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_term_outscores_scattered() {
        // Both terms occur 100 times in 1000 docs; one concentrated in 10
        // docs (content-bearing), one spread over 95 (function-like).
        let clustered = bookstein_score(10, 100, 1000, 2, 0.5).unwrap();
        let scattered = bookstein_score(95, 100, 1000, 2, 0.5).unwrap();
        assert!(clustered > scattered * 5.0, "{clustered} vs {scattered}");
    }

    #[test]
    fn min_df_filter() {
        assert_eq!(bookstein_score(1, 50, 1000, 3, 0.5), None);
        assert!(bookstein_score(3, 50, 1000, 3, 0.5).is_some());
    }

    #[test]
    fn max_df_filter_rejects_ubiquitous() {
        assert_eq!(bookstein_score(900, 2000, 1000, 2, 0.2), None);
    }

    #[test]
    fn random_scatter_scores_near_zero() {
        // tf == df: each occurrence in its own document, exactly the random
        // expectation for small tf/D — no condensation.
        let s = bookstein_score(20, 20, 10_000, 2, 0.5).unwrap();
        assert!(s < 0.05, "score {s}");
    }

    #[test]
    fn heavier_terms_win_at_equal_condensation() {
        let light = bookstein_score(5, 50, 1000, 2, 0.5).unwrap();
        let heavy = bookstein_score(50, 500, 1000, 2, 0.5).unwrap();
        assert!(heavy > light);
    }

    #[test]
    fn zero_docs_is_none() {
        assert_eq!(bookstein_score(0, 0, 0, 0, 1.0), None);
    }
}
