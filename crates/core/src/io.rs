//! Persistence of the engine's products.
//!
//! The paper names two outputs worth keeping (§2.1): *"Persist the
//! knowledge signatures … These signatures comprise a valuable
//! intermediate product of the text engine"* (step 7), and *"The 2-D
//! document coordinates comprise the final primary product"* (step 9,
//! written to a file by the master process). This module writes and reads
//! both:
//!
//! * **Coordinates** — a CSV of `doc,x,y[,z],cluster`, the file the
//!   ThemeView frontend consumes.
//! * **Signatures** — a compact little-endian binary matrix with a small
//!   header (magic, version, rows, cols), suitable for re-clustering
//!   without re-scanning.

use crate::DocId;
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic bytes of the signature file format.
const SIG_MAGIC: &[u8; 8] = b"INSPSIG1";

/// Write the master's coordinate file: `doc,x,y,cluster` rows.
pub fn write_coords_csv(
    path: &Path,
    coords: &[(f64, f64)],
    assignments: Option<&[u32]>,
) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "doc,x,y,cluster")?;
    for (i, (x, y)) in coords.iter().enumerate() {
        let c = assignments.map(|a| a[i] as i64).unwrap_or(-1);
        writeln!(f, "{i},{x:.9},{y:.9},{c}")?;
    }
    f.flush()
}

/// Read a coordinate file back: `(doc, x, y, cluster)` rows.
pub fn read_coords_csv(path: &Path) -> io::Result<Vec<(DocId, f64, f64, i64)>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if ln == 0 {
            if line != "doc,x,y,cluster" {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad header: {line}"),
                ));
            }
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected 4 fields in {line}"),
            ));
        }
        let bad = |e: &dyn std::fmt::Display| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{e} in {line}"))
        };
        let doc: DocId = fields[0].parse().map_err(|e| bad(&e))?;
        let x: f64 = fields[1].parse().map_err(|e| bad(&e))?;
        let y: f64 = fields[2].parse().map_err(|e| bad(&e))?;
        let c: i64 = fields[3].parse().map_err(|e| bad(&e))?;
        out.push((doc, x, y, c));
    }
    Ok(out)
}

/// Persist a row-major `rows × cols` signature matrix.
pub fn write_signatures(path: &Path, rows: u64, cols: u32, data: &[f64]) -> io::Result<()> {
    assert_eq!(data.len() as u64, rows * cols as u64, "shape mismatch");
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(SIG_MAGIC)?;
    f.write_all(&rows.to_le_bytes())?;
    f.write_all(&cols.to_le_bytes())?;
    for v in data {
        f.write_all(&v.to_le_bytes())?;
    }
    f.flush()
}

/// Load a signature matrix written by [`write_signatures`].
pub fn read_signatures(path: &Path) -> io::Result<(u64, u32, Vec<f64>)> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    if &magic != SIG_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a signature file",
        ));
    }
    let mut b8 = [0u8; 8];
    f.read_exact(&mut b8)?;
    let rows = u64::from_le_bytes(b8);
    let mut b4 = [0u8; 4];
    f.read_exact(&mut b4)?;
    let cols = u32::from_le_bytes(b4);
    let n = rows
        .checked_mul(cols as u64)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "shape overflow"))?;
    let mut data = Vec::with_capacity(n as usize);
    for _ in 0..n {
        f.read_exact(&mut b8)?;
        data.push(f64::from_le_bytes(b8));
    }
    // Trailing garbage is an error (truncation detection's mirror image).
    if f.read(&mut [0u8; 1])? != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes after signature matrix",
        ));
    }
    Ok((rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("inspire-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn coords_roundtrip() {
        let path = tmp("coords.csv");
        let coords = vec![(1.25, -3.5), (0.0, 0.000000001), (1e9, -1e-9)];
        let assignments = vec![2u32, 0, 7];
        write_coords_csv(&path, &coords, Some(&assignments)).unwrap();
        let back = read_coords_csv(&path).unwrap();
        assert_eq!(back.len(), 3);
        for (i, (doc, x, y, c)) in back.iter().enumerate() {
            assert_eq!(*doc as usize, i);
            assert!((x - coords[i].0).abs() < 1e-6 * coords[i].0.abs().max(1.0));
            assert!((y - coords[i].1).abs() < 1e-6);
            assert_eq!(*c, assignments[i] as i64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coords_without_assignments_use_sentinel() {
        let path = tmp("coords2.csv");
        write_coords_csv(&path, &[(1.0, 2.0)], None).unwrap();
        let back = read_coords_csv(&path).unwrap();
        assert_eq!(back[0].3, -1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn signatures_roundtrip() {
        let path = tmp("sigs.bin");
        let data: Vec<f64> = (0..12).map(|i| i as f64 * 0.25 - 1.0).collect();
        write_signatures(&path, 3, 4, &data).unwrap();
        let (rows, cols, back) = read_signatures(&path).unwrap();
        assert_eq!((rows, cols), (3, 4));
        assert_eq!(back, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn signature_reader_rejects_garbage() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"definitely not a signature file").unwrap();
        assert!(read_signatures(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn signature_reader_rejects_truncation() {
        let path = tmp("trunc.bin");
        let data = vec![1.0f64; 8];
        write_signatures(&path, 2, 4, &data).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(read_signatures(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coords_reader_rejects_bad_header() {
        let path = tmp("badhdr.csv");
        std::fs::write(&path, "x,y\n1,2\n").unwrap();
        assert!(read_coords_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
