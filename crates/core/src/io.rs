//! Persistence of the engine's products.
//!
//! The paper names two outputs worth keeping (§2.1): *"Persist the
//! knowledge signatures … These signatures comprise a valuable
//! intermediate product of the text engine"* (step 7), and *"The 2-D
//! document coordinates comprise the final primary product"* (step 9,
//! written to a file by the master process). This module writes and reads
//! both:
//!
//! * **Coordinates** — a CSV of `doc,x,y[,z],cluster`, the file the
//!   ThemeView frontend consumes.
//! * **Signatures** — an [`inspire_store`] snapshot containing the
//!   row-major matrix as two checksummed sections (`shape`, `sigs`), so
//!   any corruption or truncation is rejected on load. The pre-store
//!   `INSPSIG1` header format is still readable (and writable via
//!   [`write_signatures_legacy`]); [`read_signatures`] detects the format
//!   from the leading magic bytes.
//!
//! Every reader in this module turns malformed input into an
//! [`io::Error`] naming the file and the offending offset or line — never
//! a panic, never a silently partial result.

use crate::DocId;
use inspire_store::{Snapshot, SnapshotWriter};
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic bytes of the legacy signature file format.
const SIG_MAGIC: &[u8; 8] = b"INSPSIG1";

fn data_err(path: &Path, what: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {what}", path.display()),
    )
}

/// Write the master's coordinate file: `doc,x,y,cluster` rows.
pub fn write_coords_csv(
    path: &Path,
    coords: &[(f64, f64)],
    assignments: Option<&[u32]>,
) -> io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "doc,x,y,cluster")?;
    for (i, (x, y)) in coords.iter().enumerate() {
        let c = assignments.map(|a| a[i] as i64).unwrap_or(-1);
        writeln!(f, "{i},{x:.9},{y:.9},{c}")?;
    }
    f.flush()
}

/// Read a coordinate file back: `(doc, x, y, cluster)` rows.
pub fn read_coords_csv(path: &Path) -> io::Result<Vec<(DocId, f64, f64, i64)>> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "doc,x,y,cluster")) => {}
        Some((_, other)) => {
            return Err(data_err(
                path,
                format!("line 1: bad header {other:?}, expected \"doc,x,y,cluster\""),
            ))
        }
        None => return Err(data_err(path, "empty coordinate file".into())),
    }
    let mut out = Vec::new();
    for (ln, line) in lines {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(data_err(
                path,
                format!(
                    "line {}: expected 4 comma-separated fields, found {} in {line:?}",
                    ln + 1,
                    fields.len()
                ),
            ));
        }
        let num = |col: usize, name: &str| -> io::Result<f64> {
            fields[col].parse().map_err(|_| {
                data_err(
                    path,
                    format!(
                        "line {}: non-numeric {name} field {:?}",
                        ln + 1,
                        fields[col]
                    ),
                )
            })
        };
        let doc: DocId = fields[0].parse().map_err(|_| {
            data_err(
                path,
                format!("line {}: non-numeric doc field {:?}", ln + 1, fields[0]),
            )
        })?;
        let x = num(1, "x")?;
        let y = num(2, "y")?;
        let c: i64 = fields[3].parse().map_err(|_| {
            data_err(
                path,
                format!("line {}: non-numeric cluster field {:?}", ln + 1, fields[3]),
            )
        })?;
        out.push((doc, x, y, c));
    }
    Ok(out)
}

fn check_shape(path: &Path, rows: u64, cols: u32, len: u64) -> io::Result<()> {
    let want = rows
        .checked_mul(cols as u64)
        .ok_or_else(|| data_err(path, format!("shape {rows}×{cols} overflows")))?;
    if len != want {
        return Err(data_err(
            path,
            format!("shape says {rows}×{cols} = {want} values, file holds {len}"),
        ));
    }
    Ok(())
}

/// Persist a row-major `rows × cols` signature matrix as a checksummed
/// store snapshot (sections `shape` and `sigs`).
pub fn write_signatures(path: &Path, rows: u64, cols: u32, data: &[f64]) -> io::Result<()> {
    check_shape(path, rows, cols, data.len() as u64)?;
    let mut w = SnapshotWriter::create(path)?;
    w.add_u64s("shape", &[rows, cols as u64])?;
    w.add_f64s("sigs", data)?;
    w.finish()?;
    Ok(())
}

/// Persist a signature matrix in the pre-store `INSPSIG1` format (raw
/// little-endian header + values, no checksums). Kept so the migration
/// path stays testable; new code should use [`write_signatures`].
pub fn write_signatures_legacy(path: &Path, rows: u64, cols: u32, data: &[f64]) -> io::Result<()> {
    check_shape(path, rows, cols, data.len() as u64)?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(SIG_MAGIC)?;
    f.write_all(&rows.to_le_bytes())?;
    f.write_all(&cols.to_le_bytes())?;
    for v in data {
        f.write_all(&v.to_le_bytes())?;
    }
    f.flush()
}

/// Load a signature matrix written by [`write_signatures`] (store
/// snapshot) or [`write_signatures_legacy`] (`INSPSIG1`); the format is
/// detected from the leading magic bytes.
pub fn read_signatures(path: &Path) -> io::Result<(u64, u32, Vec<f64>)> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)
        .map_err(|e| data_err(path, format!("file too short for a signature header ({e})")))?;
    if &magic == inspire_store::MAGIC {
        drop(f);
        return read_signatures_store(path);
    }
    if &magic != SIG_MAGIC {
        return Err(data_err(
            path,
            format!("bad magic {magic:02x?}: neither a store snapshot nor an INSPSIG1 file"),
        ));
    }

    // Legacy INSPSIG1 body: rows u64, cols u32, rows×cols f64 values.
    let mut b8 = [0u8; 8];
    f.read_exact(&mut b8)
        .map_err(|e| data_err(path, format!("truncated at offset 8 reading rows ({e})")))?;
    let rows = u64::from_le_bytes(b8);
    let mut b4 = [0u8; 4];
    f.read_exact(&mut b4)
        .map_err(|e| data_err(path, format!("truncated at offset 16 reading cols ({e})")))?;
    let cols = u32::from_le_bytes(b4);
    let n = rows
        .checked_mul(cols as u64)
        .ok_or_else(|| data_err(path, format!("shape {rows}×{cols} overflows")))?;
    let mut data = Vec::with_capacity(n as usize);
    for i in 0..n {
        f.read_exact(&mut b8).map_err(|e| {
            data_err(
                path,
                format!(
                    "truncated at offset {} reading value {i} of {n} ({e})",
                    20 + i * 8
                ),
            )
        })?;
        data.push(f64::from_le_bytes(b8));
    }
    // Trailing garbage is an error (truncation detection's mirror image).
    if f.read(&mut [0u8; 1])? != 0 {
        return Err(data_err(
            path,
            format!("trailing bytes after the {n}-value signature matrix"),
        ));
    }
    Ok((rows, cols, data))
}

fn read_signatures_store(path: &Path) -> io::Result<(u64, u32, Vec<f64>)> {
    let snap = Snapshot::open(path)?;
    let shape = snap.require("shape")?.as_u64s()?;
    if shape.len() != 2 {
        return Err(data_err(
            path,
            format!("shape section has {} values, expected 2", shape.len()),
        ));
    }
    let (rows, cols64) = (shape[0], shape[1]);
    let cols = u32::try_from(cols64)
        .map_err(|_| data_err(path, format!("column count {cols64} exceeds u32")))?;
    let data = snap.require("sigs")?.as_f64s()?;
    check_shape(path, rows, cols, data.len() as u64)?;
    Ok((rows, cols, data.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("inspire-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn coords_roundtrip() {
        let path = tmp("coords.csv");
        let coords = vec![(1.25, -3.5), (0.0, 0.000000001), (1e9, -1e-9)];
        let assignments = vec![2u32, 0, 7];
        write_coords_csv(&path, &coords, Some(&assignments)).unwrap();
        let back = read_coords_csv(&path).unwrap();
        assert_eq!(back.len(), 3);
        for (i, (doc, x, y, c)) in back.iter().enumerate() {
            assert_eq!(*doc as usize, i);
            assert!((x - coords[i].0).abs() < 1e-6 * coords[i].0.abs().max(1.0));
            assert!((y - coords[i].1).abs() < 1e-6);
            assert_eq!(*c, assignments[i] as i64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coords_without_assignments_use_sentinel() {
        let path = tmp("coords2.csv");
        write_coords_csv(&path, &[(1.0, 2.0)], None).unwrap();
        let back = read_coords_csv(&path).unwrap();
        assert_eq!(back[0].3, -1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn signatures_roundtrip_via_store() {
        let path = tmp("sigs.isnap");
        let data: Vec<f64> = (0..12).map(|i| i as f64 * 0.25 - 1.0).collect();
        write_signatures(&path, 3, 4, &data).unwrap();
        // The new writer produces a store container …
        let head = std::fs::read(&path).unwrap();
        assert_eq!(&head[..8], inspire_store::MAGIC);
        // … and the reader round-trips it.
        let (rows, cols, back) = read_signatures(&path).unwrap();
        assert_eq!((rows, cols), (3, 4));
        assert_eq!(back, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn signatures_roundtrip_via_legacy_format() {
        let path = tmp("sigs-legacy.bin");
        let data: Vec<f64> = (0..12).map(|i| i as f64 * 0.25 - 1.0).collect();
        write_signatures_legacy(&path, 3, 4, &data).unwrap();
        let head = std::fs::read(&path).unwrap();
        assert_eq!(&head[..8], b"INSPSIG1");
        let (rows, cols, back) = read_signatures(&path).unwrap();
        assert_eq!((rows, cols), (3, 4));
        assert_eq!(back, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn signature_writer_rejects_shape_mismatch() {
        let path = tmp("shape.isnap");
        let err = write_signatures(&path, 3, 4, &[0.0; 11]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = write_signatures_legacy(&path, 3, 4, &[0.0; 11]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn signature_reader_rejects_garbage() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"definitely not a signature file").unwrap();
        let err = read_signatures(&path).unwrap_err();
        assert!(err.to_string().contains("garbage.bin"), "{err}");
        // Too short for even a magic number.
        std::fs::write(&path, b"xy").unwrap();
        let err = read_signatures(&path).unwrap_err();
        assert!(err.to_string().contains("too short"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn signature_reader_rejects_truncation_in_both_formats() {
        let data = vec![1.0f64; 8];
        for (name, legacy) in [("trunc.isnap", false), ("trunc-legacy.bin", true)] {
            let path = tmp(name);
            if legacy {
                write_signatures_legacy(&path, 2, 4, &data).unwrap();
            } else {
                write_signatures(&path, 2, 4, &data).unwrap();
            }
            let full = std::fs::read(&path).unwrap();
            std::fs::write(&path, &full[..full.len() - 3]).unwrap();
            let err = read_signatures(&path).unwrap_err();
            assert!(err.to_string().contains(name), "{err}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn store_signatures_reject_bit_flips() {
        let path = tmp("flip.isnap");
        let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
        write_signatures(&path, 8, 4, &data).unwrap();
        let good = std::fs::read(&path).unwrap();
        for pos in [9, good.len() / 2, good.len() - 2] {
            let mut bad = good.clone();
            bad[pos] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                read_signatures(&path).is_err(),
                "bit flip at byte {pos} was accepted"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coords_reader_rejects_bad_header() {
        let path = tmp("badhdr.csv");
        std::fs::write(&path, "x,y\n1,2\n").unwrap();
        let err = read_coords_csv(&path).unwrap_err();
        assert!(err.to_string().contains("badhdr.csv"), "{err}");
        std::fs::write(&path, "").unwrap();
        assert!(read_coords_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coords_reader_names_offending_line_and_field() {
        let path = tmp("badrow.csv");
        std::fs::write(&path, "doc,x,y,cluster\n0,1.0,2.0,3\n1,oops,2.0,3\n").unwrap();
        let err = read_coords_csv(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("badrow.csv"), "{msg}");
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("oops"), "{msg}");
        // Row with the wrong number of fields.
        std::fs::write(&path, "doc,x,y,cluster\n0,1.0,2.0\n").unwrap();
        let err = read_coords_csv(&path).unwrap_err();
        assert!(err.to_string().contains("expected 4"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
