//! The association matrix (paper §3.4, step 5).
//!
//! An N×M matrix relating the N major terms to the M anchoring topics:
//!
//! > *"the entries in the matrix being the conditional probabilities of
//! > occupance, modified by the independent probability of occurrence"*
//!
//! We read that as `A[i][j] = P(tᵢ | tⱼ) · (1 − P(tⱼ))`: how strongly
//! major term `i` co-occurs with topic `j`, discounted when topic `j` is
//! so common that co-occurrence is uninformative. Probabilities are
//! document-level: `P(tᵢ|tⱼ) = df(tᵢ ∧ tⱼ) / df(tⱼ)`.
//!
//! *"each process computes the association matrix for the terms associated
//! with its dataset. The association matrices of all the processes are
//! merged (MPI_Allreduce operation)"* — each rank counts co-occurrences
//! over its own documents, the count matrices are allreduced, then every
//! rank normalizes identically.

use crate::index::InvertedIndex;
use crate::scan::ScanOutput;
use crate::topicality::TopicSelection;
use crate::TermId;
use perfmodel::WorkKind;
use spmd::{Ctx, ReduceOp};
use std::collections::HashMap;
use std::sync::Arc;

/// Documents per intra-rank chunk for co-occurrence accumulation. Fixed
/// so chunk boundaries — and the order partial matrices merge in — do
/// not depend on the pool width.
const ASSOC_DOC_CHUNK: usize = 64;

/// The merged, normalized association matrix (replicated on all ranks).
#[derive(Debug, Clone)]
pub struct AssociationMatrix {
    /// Row-major N×M values.
    pub values: Arc<Vec<f64>>,
    /// N (rows, major terms).
    pub n: usize,
    /// M (columns, topics).
    pub m: usize,
    /// Major-term id → row index.
    pub row_of: Arc<HashMap<TermId, usize>>,
}

impl AssociationMatrix {
    /// The M-dimensional row of major term `t`, if `t` is a major term.
    pub fn row(&self, t: TermId) -> Option<&[f64]> {
        self.row_of
            .get(&t)
            .map(|&r| &self.values[r * self.m..(r + 1) * self.m])
    }
}

/// Build the association matrix. Collective.
pub fn build(
    ctx: &Ctx,
    scan: &ScanOutput,
    index: &InvertedIndex,
    topics: &TopicSelection,
) -> AssociationMatrix {
    let n = topics.major.len();
    let m = topics.topics.len();
    let row_of: HashMap<TermId, usize> = topics
        .major
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i))
        .collect();
    let col_of: HashMap<TermId, usize> = topics
        .topics
        .iter()
        .enumerate()
        .map(|(j, &t)| (t, j))
        .collect();

    // Local document-level co-occurrence counts, fanned out over the
    // intra-rank pool. Entries are small integer counts, and partial
    // matrices merge in chunk index order, so the merged matrix is
    // bit-identical to the serial accumulation at any pool width. The
    // AssocOps charge lands once, after the merge.
    let partials: Vec<(Vec<f64>, u64)> =
        ctx.pool()
            .map_chunks(scan.docs.len(), ASSOC_DOC_CHUNK, |chunk| {
                let mut cooc = vec![0.0f64; n * m];
                let mut ops = 0u64;
                // Scratch reused across the chunk's documents; the
                // accumulation order is unchanged, so the merged matrix
                // stays bit-identical.
                let mut rows: Vec<usize> = Vec::new();
                let mut cols: Vec<usize> = Vec::new();
                for d in &scan.docs[chunk] {
                    let distinct = d.distinct_terms();
                    ops += distinct.len() as u64;
                    rows.clear();
                    rows.extend(distinct.iter().filter_map(|(t, _)| row_of.get(t).copied()));
                    cols.clear();
                    cols.extend(distinct.iter().filter_map(|(t, _)| col_of.get(t).copied()));
                    ops += (rows.len() * cols.len()) as u64;
                    for &i in &rows {
                        for &j in &cols {
                            cooc[i * m + j] += 1.0;
                        }
                    }
                }
                (cooc, ops)
            });
    let mut cooc = vec![0.0f64; n * m];
    let mut ops = 0u64;
    for (part, part_ops) in partials {
        for (acc, v) in cooc.iter_mut().zip(&part) {
            *acc += v;
        }
        ops += part_ops;
    }
    ctx.charge(WorkKind::AssocOps, ops);

    // Merge partial matrices (the paper's MPI_Allreduce).
    let mut merged = ctx.allreduce_f64(cooc, ReduceOp::Sum);

    // Normalize: P(t_i | t_j) * (1 - P(t_j)).
    ctx.charge(WorkKind::Flops, (n * m) as u64);
    let d_total = index.total_docs as f64;
    for (j, &tj) in topics.topics.iter().enumerate() {
        let df_j = index.df[tj as usize] as f64;
        let p_j = if d_total > 0.0 { df_j / d_total } else { 0.0 };
        let inv = if df_j > 0.0 { 1.0 / df_j } else { 0.0 };
        for i in 0..n {
            merged[i * m + j] *= inv * (1.0 - p_j);
        }
    }

    AssociationMatrix {
        values: Arc::new(merged),
        n,
        m,
        row_of: Arc::new(row_of),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::index::invert;
    use crate::scan::scan;
    use crate::topicality::select_topics;
    use corpus::CorpusSpec;
    use spmd::Runtime;

    fn corpus() -> corpus::SourceSet {
        CorpusSpec {
            source_bytes: 8 * 1024,
            ..CorpusSpec::pubmed(48 * 1024, 9)
        }
        .generate()
    }

    fn build_matrix(p: usize) -> (usize, usize, Vec<f64>) {
        let src = corpus();
        let rt = Runtime::for_testing();
        let mut res = rt.run(p, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let topics = select_topics(ctx, &idx, &cfg, cfg.n_major, cfg.m_dims());
            let am = build(ctx, &s, &idx, &topics);
            (am.n, am.m, am.values.as_ref().clone())
        });
        res.results.remove(0)
    }

    #[test]
    fn matrix_identical_across_p() {
        let (n1, m1, v1) = build_matrix(1);
        for p in [2, 4] {
            let (n, m, v) = build_matrix(p);
            assert_eq!((n, m), (n1, m1));
            assert_eq!(v.len(), v1.len());
            for (a, b) in v.iter().zip(&v1) {
                assert!((a - b).abs() < 1e-9, "P={p}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn entries_are_probability_like() {
        let (_, _, v) = build_matrix(2);
        for &x in &v {
            assert!((0.0..=1.0).contains(&x), "entry {x} out of range");
        }
        // The matrix must not be all-zero — topics co-occur with majors.
        assert!(v.iter().any(|&x| x > 0.0));
    }

    #[test]
    fn topic_self_association_is_strong() {
        // A topic term is also a major term (topics ⊂ major); its own
        // column entry equals 1 - P(t_j), the maximum possible in that
        // column.
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let topics = select_topics(ctx, &idx, &cfg, cfg.n_major, cfg.m_dims());
            let am = build(ctx, &s, &idx, &topics);
            for (j, &tj) in topics.topics.iter().enumerate().take(5) {
                let i = topics.major_rank(tj).expect("topic is a major term");
                let self_assoc = am.values[i * am.m + j];
                let expected = 1.0 - idx.df[tj as usize] as f64 / idx.total_docs as f64;
                assert!(
                    (self_assoc - expected).abs() < 1e-9,
                    "self association {self_assoc} vs {expected}"
                );
                // And no other row in column j exceeds it.
                for r in 0..am.n {
                    assert!(am.values[r * am.m + j] <= self_assoc + 1e-9);
                }
            }
        });
    }

    #[test]
    fn row_lookup_matches_layout() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let topics = select_topics(ctx, &idx, &cfg, cfg.n_major, cfg.m_dims());
            let am = build(ctx, &s, &idx, &topics);
            let t = topics.major[3];
            let row = am.row(t).unwrap();
            assert_eq!(row, &am.values[3 * am.m..4 * am.m]);
            assert_eq!(am.row(u32::MAX), None);
        });
    }
}
