//! Term lookup and simple ranked retrieval over the inverted index.
//!
//! The paper positions visual analytics as complementary to classical IR,
//! but the engine's indices support lookup directly; this module exposes
//! them for the example applications and tests (and mirrors what the
//! production engine offers alongside the visualization pipeline).

use crate::index::{InvertedIndex, Posting};
use crate::scan::ScanOutput;
use crate::{DocId, FieldId, TermId};
use spmd::Ctx;
use std::collections::HashMap;

/// Read-only view of the term statistics and postings a query needs.
///
/// Both retrieval backends implement this: [`LiveIndex`] adapts the
/// engine's rank-resident [`ScanOutput`] + [`InvertedIndex`] (postings
/// fetched through the SPMD context), and the serving tier's extracted
/// snapshot state answers from plain shared vectors with no context at
/// all. Every query algorithm below is written against this trait once,
/// so the two paths cannot drift: a served answer is byte-identical to
/// the single-shot CLI answer by construction.
pub trait SearchIndex {
    /// Canonical id of `term`, if indexed.
    fn term_id(&self, term: &str) -> Option<TermId>;
    /// A term's postings, sorted by (doc, field) for determinism.
    fn postings_of(&self, term: TermId) -> Vec<Posting>;
    /// Append a term's postings (same order as [`postings_of`]) to a
    /// caller-owned buffer. Backends that decode postings on demand
    /// override this to fill `out` directly instead of materializing an
    /// intermediate vector.
    ///
    /// [`postings_of`]: SearchIndex::postings_of
    fn postings_into(&self, term: TermId, out: &mut Vec<Posting>) {
        out.extend(self.postings_of(term));
    }
    /// Append only the postings with `doc >= min_doc`, preserving order.
    /// Backends with block-aligned skip pointers override this to seek
    /// past whole blocks; the default filters the full list, so both
    /// yield exactly the tail of [`postings_of`].
    ///
    /// [`postings_of`]: SearchIndex::postings_of
    fn postings_from(&self, term: TermId, min_doc: DocId, out: &mut Vec<Posting>) {
        out.extend(
            self.postings_of(term)
                .into_iter()
                .filter(|p| p.doc >= min_doc),
        );
    }
    /// Document frequency of `term`.
    fn df(&self, term: TermId) -> u32;
    /// Total documents in the collection.
    fn total_docs(&self) -> u32;
}

/// [`SearchIndex`] over the engine's live rank state: term lookups hit
/// the canonical vocabulary and postings are fetched through the SPMD
/// context (paying modeled communication when the index is distributed).
pub struct LiveIndex<'a> {
    pub ctx: &'a Ctx,
    pub scan: &'a ScanOutput,
    pub index: &'a InvertedIndex,
}

impl SearchIndex for LiveIndex<'_> {
    fn term_id(&self, term: &str) -> Option<TermId> {
        self.scan.term_id(term)
    }

    fn postings_of(&self, term: TermId) -> Vec<Posting> {
        self.index.postings_of(self.ctx, term)
    }

    fn df(&self, term: TermId) -> u32 {
        self.index.df[term as usize]
    }

    fn total_docs(&self) -> u32 {
        self.index.total_docs
    }
}

/// A boolean retrieval expression over terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Documents containing the term (any field).
    Term(String),
    /// Documents containing the term within one named field.
    FieldTerm(&'static str, String),
    /// Intersection.
    And(Vec<Query>),
    /// Union.
    Or(Vec<Query>),
    /// Set difference: matches of the first operand minus the second's.
    AndNot(Box<Query>, Box<Query>),
}

/// A token of the query expression language.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    LParen,
    RParen,
    And,
    Or,
    Not,
    Word(String),
}

fn lex(input: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    let flush = |cur: &mut String, toks: &mut Vec<Tok>| {
        if cur.is_empty() {
            return;
        }
        let t = match cur.as_str() {
            w if w.eq_ignore_ascii_case("and") => Tok::And,
            w if w.eq_ignore_ascii_case("or") => Tok::Or,
            w if w.eq_ignore_ascii_case("not") => Tok::Not,
            w => Tok::Word(w.to_ascii_lowercase()),
        };
        toks.push(t);
        cur.clear();
    };
    for c in input.chars() {
        match c {
            '(' => {
                flush(&mut cur, &mut toks);
                toks.push(Tok::LParen);
            }
            ')' => {
                flush(&mut cur, &mut toks);
                toks.push(Tok::RParen);
            }
            c if c.is_whitespace() => flush(&mut cur, &mut toks),
            c => cur.push(c),
        }
    }
    flush(&mut cur, &mut toks);
    toks
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_atom(&self) -> bool {
        matches!(self.peek(), Some(Tok::Word(_)) | Some(Tok::LParen))
    }

    fn parse_or(&mut self) -> Result<Query, String> {
        let mut parts = vec![self.parse_and()?];
        while self.eat(&Tok::Or) {
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Query::Or(parts)
        })
    }

    /// A conjunction: atoms joined by explicit `AND` or plain
    /// juxtaposition, with `NOT` prefixing the atoms to subtract.
    fn parse_and(&mut self) -> Result<Query, String> {
        let mut positive = Vec::new();
        let mut negative = Vec::new();
        loop {
            let mut negated = false;
            while self.eat(&Tok::Not) {
                negated = !negated;
            }
            if !self.at_atom() {
                return Err(match self.peek() {
                    Some(t) => format!("expected a term, found {t:?}"),
                    None => "expected a term, found end of query".into(),
                });
            }
            let atom = self.parse_atom()?;
            if negated {
                negative.push(atom);
            } else {
                positive.push(atom);
            }
            if self.eat(&Tok::And) {
                continue; // operand required; checked at loop top
            }
            if self.at_atom() || self.peek() == Some(&Tok::Not) {
                continue; // juxtaposition is conjunction
            }
            break;
        }
        if positive.is_empty() {
            return Err("a query cannot be pure negation".into());
        }
        let pos = if positive.len() == 1 {
            positive.pop().unwrap()
        } else {
            Query::And(positive)
        };
        Ok(match negative.len() {
            0 => pos,
            1 => Query::AndNot(Box::new(pos), Box::new(negative.pop().unwrap())),
            _ => Query::AndNot(Box::new(pos), Box::new(Query::Or(negative))),
        })
    }

    fn parse_atom(&mut self) -> Result<Query, String> {
        if self.eat(&Tok::LParen) {
            let inner = self.parse_or()?;
            if !self.eat(&Tok::RParen) {
                return Err("unbalanced parenthesis".into());
            }
            return Ok(inner);
        }
        let Some(Tok::Word(w)) = self.peek().cloned() else {
            return Err("expected a term".into());
        };
        self.pos += 1;
        if let Some((field, term)) = w.split_once(':') {
            let Some(&name) = crate::FIELD_NAMES.iter().find(|&&n| n == field) else {
                return Err(format!(
                    "unknown field {field:?} (known: {})",
                    crate::FIELD_NAMES.join(", ")
                ));
            };
            if term.is_empty() {
                return Err(format!("empty term after {field}:"));
            }
            return Ok(Query::FieldTerm(name, term.to_string()));
        }
        Ok(Query::Term(w))
    }
}

impl Query {
    /// Parse a boolean query expression.
    ///
    /// Grammar (keywords case-insensitive, terms lowercased to match the
    /// indexing tokenizer):
    ///
    /// ```text
    /// expr := and ( OR and )*
    /// and  := [NOT] atom ( [AND] [NOT] atom )*    — juxtaposition is AND
    /// atom := '(' expr ')' | field:term | term
    /// ```
    ///
    /// `NOT` atoms subtract from the surrounding conjunction, so
    /// `heart AND NOT title:attack` is `AndNot(heart, title:attack)`.
    pub fn parse(input: &str) -> Result<Query, String> {
        let mut p = Parser {
            toks: lex(input),
            pos: 0,
        };
        if p.toks.is_empty() {
            return Err("empty query".into());
        }
        let q = p.parse_or()?;
        if let Some(t) = p.peek() {
            return Err(format!("unexpected {t:?} after complete query"));
        }
        Ok(q)
    }

    /// Canonical text form: fully parenthesized with explicit keywords,
    /// so any two expressions that parse to the same tree normalize to
    /// the same string (`a AND b`, `a b`, `(a) (b)` all become
    /// `(a AND b)`). The serving tier keys its result cache on this.
    /// Normalized text reparses to the original tree.
    pub fn normalized(&self) -> String {
        match self {
            Query::Term(t) => t.clone(),
            Query::FieldTerm(f, t) => format!("{f}:{t}"),
            Query::And(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| p.normalized()).collect();
                format!("({})", inner.join(" AND "))
            }
            Query::Or(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| p.normalized()).collect();
                format!("({})", inner.join(" OR "))
            }
            Query::AndNot(keep, drop) => {
                format!("({} AND NOT {})", keep.normalized(), drop.normalized())
            }
        }
    }
}

/// Postings for a term string, or empty when the term is unknown.
pub fn lookup(ctx: &Ctx, scan: &ScanOutput, index: &InvertedIndex, term: &str) -> Vec<Posting> {
    lookup_in(&LiveIndex { ctx, scan, index }, term)
}

/// [`lookup`] against any [`SearchIndex`] backend.
pub fn lookup_in(ix: &impl SearchIndex, term: &str) -> Vec<Posting> {
    match ix.term_id(term) {
        Some(t) => ix.postings_of(t),
        None => Vec::new(),
    }
}

/// A ranked retrieval result.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    pub doc: DocId,
    pub score: f64,
}

/// Evaluate a boolean [`Query`] against the inverted index, returning the
/// matching documents in ascending id order. Classic postings-merge
/// evaluation: term postings are fetched once, deduplicated to document
/// sets, and combined with sorted-set operations.
pub fn evaluate(ctx: &Ctx, scan: &ScanOutput, index: &InvertedIndex, query: &Query) -> Vec<DocId> {
    evaluate_in(&LiveIndex { ctx, scan, index }, query)
}

/// [`evaluate`] against any [`SearchIndex`] backend.
pub fn evaluate_in(ix: &impl SearchIndex, query: &Query) -> Vec<DocId> {
    match query {
        Query::Term(t) => docs_of(ix, t, None),
        Query::FieldTerm(field, t) => {
            let fid = crate::field_id(field);
            docs_of(ix, t, fid)
        }
        Query::And(parts) => {
            // Split the conjunction into term atoms — whose postings can
            // be decoded from a lower bound via `postings_from` (the
            // block-compressed backend seeks over whole blocks below the
            // first surviving candidate) — and complex sub-queries, which
            // evaluate fully.
            let mut atoms: Vec<(TermId, Option<FieldId>)> = Vec::new();
            let mut complex: Vec<Vec<DocId>> = Vec::new();
            for p in parts {
                match p {
                    Query::Term(t) => match ix.term_id(t) {
                        Some(id) => atoms.push((id, None)),
                        None => return Vec::new(),
                    },
                    Query::FieldTerm(f, t) => match ix.term_id(t) {
                        Some(id) => atoms.push((id, crate::field_id(f))),
                        None => return Vec::new(),
                    },
                    other => complex.push(evaluate_in(ix, other)),
                }
            }
            // Cheapest base first: smallest complex set, else the rarest
            // atom (df orders atoms without touching postings).
            complex.sort_by_key(|s| s.len());
            atoms.sort_by_key(|&(t, _)| ix.df(t));
            let mut atom_it = atoms.into_iter();
            let mut acc: Vec<DocId> = if !complex.is_empty() {
                let mut it = complex.into_iter();
                let mut acc = it.next().unwrap();
                for s in it {
                    acc = intersect(&acc, &s);
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            } else if let Some((t, f)) = atom_it.next() {
                docs_of_id(ix, t, f)
            } else {
                return Vec::new();
            };
            let mut scratch: Vec<Posting> = Vec::new();
            for (t, f) in atom_it {
                if acc.is_empty() {
                    break;
                }
                scratch.clear();
                ix.postings_from(t, acc[0], &mut scratch);
                acc = intersect(&acc, &docs_from_postings(&scratch, f));
            }
            acc
        }
        Query::Or(parts) => {
            let mut acc: Vec<DocId> = Vec::new();
            for p in parts {
                acc = union(&acc, &evaluate_in(ix, p));
            }
            acc
        }
        Query::AndNot(keep, drop) => {
            let keep = evaluate_in(ix, keep);
            let drop = evaluate_in(ix, drop);
            difference(&keep, &drop)
        }
    }
}

/// Sorted distinct documents containing `term`, optionally restricted to
/// one field — this is where the paper's *term-to-field* index pays off.
fn docs_of(ix: &impl SearchIndex, term: &str, field: Option<FieldId>) -> Vec<DocId> {
    match ix.term_id(term) {
        Some(t) => docs_of_id(ix, t, field),
        None => Vec::new(),
    }
}

fn docs_of_id(ix: &impl SearchIndex, term: TermId, field: Option<FieldId>) -> Vec<DocId> {
    let mut posts = Vec::new();
    ix.postings_into(term, &mut posts);
    docs_from_postings(&posts, field)
}

/// Sorted distinct doc ids of `posts` (already doc-ordered), optionally
/// restricted to one field.
fn docs_from_postings(posts: &[Posting], field: Option<FieldId>) -> Vec<DocId> {
    let mut docs: Vec<DocId> = posts
        .iter()
        .filter(|p| field.is_none_or(|f| p.field == f))
        .map(|p| p.doc)
        .collect();
    docs.dedup();
    docs
}

fn intersect(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn union(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_a = j >= b.len() || (i < a.len() && a[i] <= b[j]);
        if take_a {
            if j < b.len() && i < a.len() && a[i] == b[j] {
                j += 1;
            }
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

fn difference(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        while j < b.len() && b[j] < a[i] {
            j += 1;
        }
        if j >= b.len() || b[j] != a[i] {
            out.push(a[i]);
        }
        i += 1;
    }
    out
}

/// TF-IDF ranked retrieval for a free-text query (terms are tokenized with
/// the same rules as indexing; unknown terms are ignored).
pub fn search(
    ctx: &Ctx,
    scan: &ScanOutput,
    index: &InvertedIndex,
    query: &str,
    top: usize,
) -> Vec<Hit> {
    search_in(&LiveIndex { ctx, scan, index }, query, top)
}

/// [`search`] against any [`SearchIndex`] backend.
pub fn search_in(ix: &impl SearchIndex, query: &str, top: usize) -> Vec<Hit> {
    let tokenizer = crate::tokenize::Tokenizer::default();
    let mut terms = Vec::new();
    tokenizer.tokenize_into(query, |t| terms.push(t.to_string()));

    let d = ix.total_docs() as f64;
    let mut scores: HashMap<DocId, f64> = HashMap::new();
    let mut posts: Vec<Posting> = Vec::new();
    for term in terms {
        let Some(t) = ix.term_id(&term) else {
            continue;
        };
        let df = ix.df(t) as f64;
        if df == 0.0 {
            continue;
        }
        let idf = ((d + 1.0) / (df + 1.0)).ln();
        // Merge field postings per document.
        posts.clear();
        ix.postings_into(t, &mut posts);
        let mut per_doc: HashMap<DocId, u32> = HashMap::new();
        for p in &posts {
            *per_doc.entry(p.doc).or_insert(0) += p.freq;
        }
        for (doc, freq) in per_doc {
            *scores.entry(doc).or_insert(0.0) += (1.0 + (freq as f64).ln()) * idf;
        }
    }
    let mut hits: Vec<Hit> = scores
        .into_iter()
        .map(|(doc, score)| Hit { doc, score })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.doc.cmp(&b.doc))
    });
    hits.truncate(top);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::index::invert;
    use crate::scan::scan;
    use corpus::CorpusSpec;
    use spmd::Runtime;

    fn corpus() -> corpus::SourceSet {
        CorpusSpec {
            source_bytes: 8 * 1024,
            ..CorpusSpec::pubmed(48 * 1024, 61)
        }
        .generate()
    }

    #[test]
    fn lookup_unknown_term_is_empty() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            assert!(lookup(ctx, &s, &idx, "qqqqq").is_empty());
        });
    }

    #[test]
    fn lookup_known_term_matches_df() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            // Pick a mid-frequency term from the vocabulary.
            let t = (0..s.vocab_size())
                .find(|&t| idx.df[t] >= 3)
                .expect("some term with df >= 3");
            let term = s.terms[t].to_string();
            let posts = lookup(ctx, &s, &idx, &term);
            let mut docs: Vec<DocId> = posts.iter().map(|p| p.doc).collect();
            docs.dedup();
            assert_eq!(docs.len() as u32, idx.df[t]);
        });
    }

    #[test]
    fn search_ranks_matching_docs() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let t = (0..s.vocab_size()).max_by_key(|&t| idx.df[t]).unwrap();
            let term = s.terms[t].to_string();
            let hits = search(ctx, &s, &idx, &term, 10);
            assert!(!hits.is_empty());
            assert!(hits.len() <= 10);
            for w in hits.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        });
    }

    #[test]
    fn set_operations_are_correct() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[3, 4, 5, 9]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<DocId>::new());
        assert_eq!(union(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union(&[], &[]), Vec::<DocId>::new());
        assert_eq!(difference(&[1, 2, 3, 4], &[2, 4, 8]), vec![1, 3]);
        assert_eq!(difference(&[], &[1]), Vec::<DocId>::new());
    }

    #[test]
    fn boolean_queries_respect_set_algebra() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            // Two mid-frequency terms.
            let mut picks = (0..s.vocab_size())
                .filter(|&t| idx.df[t] >= 4 && (idx.df[t] as f64) < idx.total_docs as f64 * 0.5)
                .map(|t| s.terms[t].to_string());
            let ta = picks.next().expect("term a");
            let tb = picks.next().expect("term b");

            let a = evaluate(ctx, &s, &idx, &Query::Term(ta.clone()));
            let b = evaluate(ctx, &s, &idx, &Query::Term(tb.clone()));
            let and = evaluate(
                ctx,
                &s,
                &idx,
                &Query::And(vec![Query::Term(ta.clone()), Query::Term(tb.clone())]),
            );
            let or = evaluate(
                ctx,
                &s,
                &idx,
                &Query::Or(vec![Query::Term(ta.clone()), Query::Term(tb.clone())]),
            );
            let not = evaluate(
                ctx,
                &s,
                &idx,
                &Query::AndNot(
                    Box::new(Query::Term(ta.clone())),
                    Box::new(Query::Term(tb.clone())),
                ),
            );
            // |A∩B| + |A∪B| = |A| + |B|.
            assert_eq!(and.len() + or.len(), a.len() + b.len());
            // A \ B and A ∩ B partition A.
            assert_eq!(not.len() + and.len(), a.len());
            // Membership coherence.
            for d in &and {
                assert!(a.binary_search(d).is_ok() && b.binary_search(d).is_ok());
            }
            for d in &not {
                assert!(a.binary_search(d).is_ok() && b.binary_search(d).is_err());
            }
            // Results sorted ascending.
            for w in or.windows(2) {
                assert!(w[0] < w[1]);
            }
        });
    }

    #[test]
    fn field_scoped_query_narrower_than_global() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            // A frequent term appears in abstracts far more than titles.
            let t = (0..s.vocab_size()).max_by_key(|&t| idx.df[t]).unwrap();
            let term = s.terms[t].to_string();
            let all = evaluate(ctx, &s, &idx, &Query::Term(term.clone()));
            let title_only = evaluate(ctx, &s, &idx, &Query::FieldTerm("title", term.clone()));
            assert!(title_only.len() <= all.len());
            // Every title match is also a global match.
            for d in &title_only {
                assert!(all.binary_search(d).is_ok());
            }
            // Union over all indexed fields reconstructs the global set.
            let by_fields = evaluate(
                ctx,
                &s,
                &idx,
                &Query::Or(vec![
                    Query::FieldTerm("title", term.clone()),
                    Query::FieldTerm("abstract", term.clone()),
                    Query::FieldTerm("mesh", term.clone()),
                    Query::FieldTerm("body", term.clone()),
                ]),
            );
            assert_eq!(by_fields, all);
        });
    }

    #[test]
    fn empty_and_unknown_boolean_queries() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(1, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            assert!(evaluate(ctx, &s, &idx, &Query::And(vec![])).is_empty());
            assert!(evaluate(ctx, &s, &idx, &Query::Or(vec![])).is_empty());
            assert!(evaluate(ctx, &s, &idx, &Query::Term("zz-unknown-zz".into())).is_empty());
        });
    }

    #[test]
    fn parser_builds_expected_trees() {
        assert_eq!(Query::parse("heart").unwrap(), Query::Term("heart".into()));
        assert_eq!(
            Query::parse("Heart Attack").unwrap(),
            Query::And(vec![
                Query::Term("heart".into()),
                Query::Term("attack".into())
            ])
        );
        assert_eq!(
            Query::parse("heart AND attack").unwrap(),
            Query::parse("heart attack").unwrap()
        );
        assert_eq!(
            Query::parse("title:heart OR (lung AND NOT mesh:cancer)").unwrap(),
            Query::Or(vec![
                Query::FieldTerm("title", "heart".into()),
                Query::AndNot(
                    Box::new(Query::Term("lung".into())),
                    Box::new(Query::FieldTerm("mesh", "cancer".into()))
                ),
            ])
        );
        // Multiple negations collect into one subtracted union.
        assert_eq!(
            Query::parse("a NOT b NOT c").unwrap(),
            Query::AndNot(
                Box::new(Query::Term("a".into())),
                Box::new(Query::Or(vec![
                    Query::Term("b".into()),
                    Query::Term("c".into())
                ]))
            )
        );
    }

    #[test]
    fn normalized_is_canonical_and_reparses() {
        // Equivalent spellings normalize to the same string.
        for (a, b) in [
            ("heart attack", "heart AND attack"),
            ("a (b)", "a AND b"),
            ("x OR y OR z", "x or y or z"),
            ("a NOT b", "a AND NOT b"),
        ] {
            assert_eq!(
                Query::parse(a).unwrap().normalized(),
                Query::parse(b).unwrap().normalized(),
                "{a:?} vs {b:?}"
            );
        }
        // Normalized text reparses to the same tree.
        for e in [
            "heart",
            "title:heart OR (lung AND NOT mesh:cancer)",
            "a NOT b NOT c",
            "(a OR b) (c OR d)",
        ] {
            let q = Query::parse(e).unwrap();
            assert_eq!(Query::parse(&q.normalized()).unwrap(), q, "{e:?}");
        }
    }

    #[test]
    fn parser_rejects_malformed_queries() {
        for bad in [
            "",
            "   ",
            "AND x",
            "x OR",
            "x AND",
            "NOT x",
            "(a OR b",
            "a b)",
            "nosuchfield:x",
            "title:",
        ] {
            assert!(Query::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn parsed_queries_evaluate_like_constructed_ones() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let mut picks = (0..s.vocab_size())
                .filter(|&t| idx.df[t] >= 4)
                .map(|t| s.terms[t].to_string());
            let ta = picks.next().expect("term a");
            let tb = picks.next().expect("term b");
            let parsed = Query::parse(&format!("{ta} AND NOT (title:{tb} OR {tb})")).unwrap();
            let built = Query::AndNot(
                Box::new(Query::Term(ta.clone())),
                Box::new(Query::Or(vec![
                    Query::FieldTerm("title", tb.clone()),
                    Query::Term(tb.clone()),
                ])),
            );
            assert_eq!(parsed, built);
            assert_eq!(
                evaluate(ctx, &s, &idx, &parsed),
                evaluate(ctx, &s, &idx, &built)
            );
        });
    }

    #[test]
    fn search_empty_query_no_hits() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(1, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            assert!(search(ctx, &s, &idx, "", 5).is_empty());
            assert!(search(ctx, &s, &idx, "the and of", 5).is_empty());
        });
    }
}
