//! IVF-accelerated similarity search over knowledge signatures.
//!
//! "Find documents like this one" over the per-document knowledge
//! signatures (paper §3.4) needs candidate pruning to stay interactive:
//! an exhaustive scan is O(docs × M) `f64` work per query. This module
//! reuses the engine's k-means centroids (§3.5) as an **inverted-file
//! (IVF) coarse quantizer**:
//!
//! * At snapshot time every document already carries its nearest-centroid
//!   assignment; [`build_ivf`] groups documents into per-centroid posting
//!   lists and re-encodes each signature with **per-signature scalar
//!   quantization** — `u8` codes plus an `f64` scale/offset pair — and
//!   records the exact `f64` L2 norm for re-ranking.
//! * At query time [`search`] ranks centroids by cosine, scans only the
//!   top-`nprobe` lists with the unrolled `u8` dot-product kernel
//!   [`dot_u8`], and **exactly re-ranks** the leading candidates in `f64`
//!   using the quantization error bound [`dot_error_bound`]: re-ranking
//!   stops once no remaining candidate's upper bound can displace the
//!   current k-th best exact score. Within the probed lists the result is
//!   therefore identical to an exhaustive `f64` scan of those lists, so
//!   `nprobe = k` reproduces [`exhaustive`] exactly.
//!
//! Everything here is deterministic: ties break toward the lower doc id
//! (and lower centroid index), and no accumulation order depends on the
//! processor count.

use crate::linalg::dot;
use crate::query::Hit;
use crate::DocId;

/// Largest quantization code (codes span `0..=255`).
pub const QMAX: f64 = 255.0;

/// Per-signature scalar quantization parameters: a signature component
/// `s_i` is encoded as `round((s_i - offset) / scale)` and decoded as
/// `offset + code * scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    pub scale: f64,
    pub offset: f64,
}

/// Quantize one signature into `codes` (same length), returning the
/// per-signature parameters. A constant signature (max == min, including
/// the all-zero null signature) encodes as all-zero codes with scale 0.
pub fn quantize_into(sig: &[f64], codes: &mut [u8]) -> QuantParams {
    debug_assert_eq!(sig.len(), codes.len());
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in sig {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if sig.is_empty() || hi <= lo {
        codes.fill(0);
        return QuantParams {
            scale: 0.0,
            offset: if sig.is_empty() { 0.0 } else { lo },
        };
    }
    let scale = (hi - lo) / QMAX;
    let inv = QMAX / (hi - lo);
    for (c, &x) in codes.iter_mut().zip(sig) {
        *c = ((x - lo) * inv).round().clamp(0.0, QMAX) as u8;
    }
    QuantParams { scale, offset: lo }
}

/// Decode one component.
pub fn dequantize(code: u8, p: QuantParams) -> f64 {
    p.offset + code as f64 * p.scale
}

/// Unrolled `u8·u8` dot product: four independent `u32` accumulators so
/// the compiler can keep vector lanes busy, folded into `u64` per block
/// of 16384 components (the largest block whose partial sums cannot
/// overflow `u32`).
pub fn dot_u8(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut total = 0u64;
    for (ca, cb) in a.chunks(16384).zip(b.chunks(16384)) {
        let (mut s0, mut s1, mut s2, mut s3) = (0u32, 0u32, 0u32, 0u32);
        let mut ia = ca.chunks_exact(4);
        let mut ib = cb.chunks_exact(4);
        for (xa, xb) in (&mut ia).zip(&mut ib) {
            s0 += xa[0] as u32 * xb[0] as u32;
            s1 += xa[1] as u32 * xb[1] as u32;
            s2 += xa[2] as u32 * xb[2] as u32;
            s3 += xa[3] as u32 * xb[3] as u32;
        }
        for (&x, &y) in ia.remainder().iter().zip(ib.remainder()) {
            s0 += x as u32 * y as u32;
        }
        total += s0 as u64 + s1 as u64 + s2 as u64 + s3 as u64;
    }
    total
}

/// Scalar reference for [`dot_u8`] (the oracle the kernel is tested
/// against).
pub fn dot_u8_ref(a: &[u8], b: &[u8]) -> u64 {
    a.iter().zip(b).map(|(&x, &y)| x as u64 * y as u64).sum()
}

/// Approximate `f64` dot product of two quantized signatures, expanded
/// from the affine decode without materializing any `f64` vector:
///
/// ```text
/// â·b̂ = Σ (oa + sa·ai)(ob + sb·bi)
///     = m·oa·ob + oa·sb·Σbi + ob·sa·Σai + sa·sb·Σ ai·bi
/// ```
///
/// `sum_a`/`sum_b` are the plain code sums and the last term is the
/// [`dot_u8`] kernel.
#[allow(clippy::too_many_arguments)]
pub fn approx_dot(
    m: usize,
    a: QuantParams,
    sum_a: u32,
    b: QuantParams,
    sum_b: u32,
    codes_dot: u64,
) -> f64 {
    m as f64 * a.offset * b.offset
        + a.offset * b.scale * sum_b as f64
        + b.offset * a.scale * sum_a as f64
        + a.scale * b.scale * codes_dot as f64
}

/// Upper bound on `|a·b − â·b̂|` for round-to-nearest quantization with
/// per-component error ≤ scale/2, in terms of the exact L1 norms:
///
/// ```text
/// |a·b − â·b̂| ≤ Σ|aᵢ−âᵢ||bᵢ| + Σ|âᵢ||bᵢ−b̂ᵢ|
///            ≤ (sa/2)·‖b‖₁ + (sb/2)·(‖a‖₁ + m·sa/2)
/// ```
///
/// The returned value is inflated by a small relative+absolute slack so
/// the bound stays safe under its own `f64` rounding.
pub fn dot_error_bound(a: QuantParams, b: QuantParams, l1_a: f64, l1_b: f64, m: usize) -> f64 {
    let ea = a.scale * 0.5;
    let eb = b.scale * 0.5;
    let raw = ea * l1_b + eb * (l1_a + m as f64 * ea);
    raw * (1.0 + 1e-9) + 1e-15
}

/// Exact L2 norm of a signature row; the same helper is used at snapshot
/// write time and by the exhaustive oracle, so stored and recomputed
/// norms are bit-identical.
pub fn l2_norm(row: &[f64]) -> f64 {
    dot(row, row).sqrt()
}

/// The IVF index and quantized signature store built at snapshot time.
/// `ivfdoc`, `codes`, `scale`, `offset`, and `norm` are all in **list
/// order**: documents grouped by centroid (clusters ascending, doc ids
/// ascending within a cluster) so a probe scans contiguous memory.
#[derive(Debug, Clone, PartialEq)]
pub struct IvfData {
    pub k: usize,
    pub m: usize,
    /// `k + 1` offsets into the list-order arrays; cluster `c` owns list
    /// positions `ivfoff[c] .. ivfoff[c + 1]`.
    pub ivfoff: Vec<u64>,
    /// Global doc id at each list position (a permutation of `0..docs`).
    pub ivfdoc: Vec<u32>,
    /// `docs × m` quantized codes, list order.
    pub codes: Vec<u8>,
    /// Per-signature quantization scale, list order.
    pub scale: Vec<f64>,
    /// Per-signature quantization offset, list order.
    pub offset: Vec<f64>,
    /// Exact `f64` L2 norm of each signature, list order.
    pub norm: Vec<f64>,
}

/// Build the IVF lists and quantized store from the full `docs × m`
/// signature matrix and the per-document centroid assignments.
pub fn build_ivf(sigs: &[f64], m: usize, assignments: &[u32], k: usize) -> IvfData {
    let docs = assignments.len();
    debug_assert_eq!(sigs.len(), docs * m);
    let mut counts = vec![0u64; k + 1];
    for &a in assignments {
        debug_assert!((a as usize) < k);
        counts[a as usize + 1] += 1;
    }
    let mut ivfoff = counts;
    for c in 0..k {
        ivfoff[c + 1] += ivfoff[c];
    }
    let mut next: Vec<u64> = ivfoff[..k].to_vec();
    let mut ivfdoc = vec![0u32; docs];
    let mut codes = vec![0u8; docs * m];
    let mut scale = vec![0.0f64; docs];
    let mut offset = vec![0.0f64; docs];
    let mut norm = vec![0.0f64; docs];
    // Ascending doc order within each cluster falls out of the stable
    // counting sort: documents are visited in global id order.
    for (doc, &a) in assignments.iter().enumerate() {
        let pos = next[a as usize] as usize;
        next[a as usize] += 1;
        let row = &sigs[doc * m..(doc + 1) * m];
        ivfdoc[pos] = doc as u32;
        let p = quantize_into(row, &mut codes[pos * m..(pos + 1) * m]);
        scale[pos] = p.scale;
        offset[pos] = p.offset;
        norm[pos] = l2_norm(row);
    }
    IvfData {
        k,
        m,
        ivfoff,
        ivfdoc,
        codes,
        scale,
        offset,
        norm,
    }
}

/// Per-list-position code sums (`Σ codes`), precomputed once at state
/// load so [`search`]'s affine expansion needs no per-query pass.
pub fn code_sums(codes: &[u8], m: usize) -> Vec<u32> {
    if m == 0 {
        return Vec::new();
    }
    codes
        .chunks_exact(m)
        .map(|row| row.iter().map(|&c| c as u32).sum())
        .collect()
}

/// Borrowed view over a (possibly snapshot-backed) IVF index plus the
/// exact `f64` signatures used for re-ranking.
#[derive(Debug, Clone, Copy)]
pub struct AnnIndexView<'a> {
    pub k: usize,
    pub m: usize,
    /// Row-major `k × m` k-means centroids.
    pub centroids: &'a [f64],
    pub ivfoff: &'a [u64],
    pub ivfdoc: &'a [u32],
    pub codes: &'a [u8],
    pub scale: &'a [f64],
    pub offset: &'a [f64],
    pub norm: &'a [f64],
    /// Precomputed [`code_sums`].
    pub sums: &'a [u32],
    /// Exact `docs × m` signatures in **doc order** (the snapshot's
    /// `sigs` section), indexed by global doc id for re-ranking.
    pub exact: &'a [f64],
}

impl<'a> AnnIndexView<'a> {
    /// Borrow a freshly built [`IvfData`] (testing and benches).
    pub fn of(data: &'a IvfData, centroids: &'a [f64], sums: &'a [u32], exact: &'a [f64]) -> Self {
        AnnIndexView {
            k: data.k,
            m: data.m,
            centroids,
            ivfoff: &data.ivfoff,
            ivfdoc: &data.ivfdoc,
            codes: &data.codes,
            scale: &data.scale,
            offset: &data.offset,
            norm: &data.norm,
            sums,
            exact,
        }
    }

    pub fn docs(&self) -> usize {
        self.ivfdoc.len()
    }
}

/// Work counters for one [`search`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Clusters probed.
    pub probed: usize,
    /// Quantized candidates scanned with the `u8` kernel.
    pub candidates: usize,
    /// Candidates exactly re-ranked in `f64`.
    pub reranked: usize,
}

/// Cosine similarity between `query` and the exact signature of `doc`,
/// with the stored norm; 0 when either vector is null.
fn exact_cos(view: &AnnIndexView, query: &[f64], qnorm: f64, doc: u32, doc_norm: f64) -> f64 {
    if qnorm == 0.0 || doc_norm == 0.0 {
        return 0.0;
    }
    let m = view.m;
    let row = &view.exact[doc as usize * m..(doc as usize + 1) * m];
    dot(query, row) / (qnorm * doc_norm)
}

/// IVF similarity search: rank centroids by cosine, scan the top
/// `nprobe` lists with the quantized kernel, then exactly re-rank in
/// `f64` until the error bound proves no remaining candidate can enter
/// the top `top`. Results are sorted by exact score descending, doc id
/// ascending.
pub fn search(
    view: &AnnIndexView,
    query: &[f64],
    top: usize,
    nprobe: usize,
    out_stats: &mut SearchStats,
) -> Vec<Hit> {
    *out_stats = SearchStats::default();
    let m = view.m;
    let docs = view.docs();
    if docs == 0 || m == 0 || top == 0 || query.len() != m {
        return Vec::new();
    }
    let qnorm = l2_norm(query);
    if qnorm == 0.0 {
        return Vec::new();
    }
    let ql1: f64 = query.iter().map(|x| x.abs()).sum();
    let mut qcodes = vec![0u8; m];
    let qp = quantize_into(query, &mut qcodes);
    let qsum: u32 = qcodes.iter().map(|&c| c as u32).sum();

    // ---- Rank centroids by cosine (ties toward the lower index). ----
    let mut order: Vec<(f64, usize)> = (0..view.k)
        .map(|c| {
            let row = &view.centroids[c * m..(c + 1) * m];
            let cn = l2_norm(row);
            let cos = if cn == 0.0 {
                0.0
            } else {
                dot(query, row) / (qnorm * cn)
            };
            (cos, c)
        })
        .collect();
    order.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let nprobe = nprobe.clamp(1, view.k);

    // ---- Scan the probed lists with the quantized kernel. ----
    // Candidate = (approx cosine, cosine error bound, list position).
    let mut cand: Vec<(f64, f64, u32)> = Vec::new();
    for &(_, c) in order.iter().take(nprobe) {
        out_stats.probed += 1;
        let lo = view.ivfoff[c] as usize;
        let hi = view.ivfoff[c + 1] as usize;
        for pos in lo..hi {
            let dn = view.norm[pos];
            let dp = QuantParams {
                scale: view.scale[pos],
                offset: view.offset[pos],
            };
            let (approx, bound) = if dn == 0.0 {
                (0.0, 0.0)
            } else {
                let cd = dot_u8(&qcodes, &view.codes[pos * m..(pos + 1) * m]);
                let ad = approx_dot(m, qp, qsum, dp, view.sums[pos], cd);
                // Document signatures are L1-normalized, so a non-null
                // signature has ‖s‖₁ = 1 exactly.
                let eb = dot_error_bound(qp, dp, ql1, 1.0, m);
                (ad / (qnorm * dn), eb / (qnorm * dn))
            };
            cand.push((approx, bound, pos as u32));
        }
    }
    out_stats.candidates = cand.len();
    cand.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap()
            .then(view.ivfdoc[a.2 as usize].cmp(&view.ivfdoc[b.2 as usize]))
    });

    // ---- Bounded exact re-rank. ----
    // `best` holds exact-scored hits sorted (score desc, doc asc); once
    // it has `top` entries, a candidate whose optimistic score
    // (approx + bound) cannot beat the current k-th best is provably
    // outside the top-k, and the candidates after it are ranked lower
    // still — but their bounds differ, so each is checked individually.
    let mut best: Vec<Hit> = Vec::with_capacity(top + 1);
    for &(approx, bound, pos) in &cand {
        if best.len() == top {
            let kth = best[top - 1].score;
            if approx + bound < kth {
                continue;
            }
        }
        let doc = view.ivfdoc[pos as usize];
        let score = exact_cos(view, query, qnorm, doc, view.norm[pos as usize]);
        out_stats.reranked += 1;
        let hit = Hit { doc, score };
        let at = best
            .binary_search_by(|h| {
                hit.score
                    .partial_cmp(&h.score)
                    .unwrap()
                    .then(h.doc.cmp(&hit.doc))
            })
            .unwrap_or_else(|i| i);
        best.insert(at, hit);
        if best.len() > top {
            best.pop();
        }
    }
    best
}

/// Exhaustive-scan oracle: exact `f64` cosine against every document,
/// same ordering rules as [`search`].
pub fn exhaustive(sigs: &[f64], m: usize, query: &[f64], top: usize) -> Vec<Hit> {
    if m == 0 || sigs.is_empty() || top == 0 || query.len() != m {
        return Vec::new();
    }
    let qnorm = l2_norm(query);
    if qnorm == 0.0 {
        return Vec::new();
    }
    let docs = sigs.len() / m;
    let mut hits: Vec<Hit> = (0..docs)
        .map(|d| {
            let row = &sigs[d * m..(d + 1) * m];
            let dn = l2_norm(row);
            let score = if dn == 0.0 {
                0.0
            } else {
                dot(query, row) / (qnorm * dn)
            };
            Hit {
                doc: d as DocId,
                score,
            }
        })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.doc.cmp(&b.doc))
    });
    hits.truncate(top);
    hits
}

/// Combine association-matrix rows into a query signature: the same
/// frequency-weighted sum + L1 normalization as document signature
/// generation, so free-text queries live in the same space as documents.
/// `rows` yields `(row index into assoc, frequency)` pairs.
pub fn embed_rows(rows: impl Iterator<Item = (usize, f64)>, assoc: &[f64], m: usize) -> Vec<f64> {
    let mut sig = vec![0.0f64; m];
    for (r, w) in rows {
        for (s, &a) in sig.iter_mut().zip(&assoc[r * m..(r + 1) * m]) {
            *s += w * a;
        }
    }
    let l1: f64 = sig.iter().map(|x| x.abs()).sum();
    if l1 > 0.0 {
        for s in &mut sig {
            *s /= l1;
        }
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for synthetic signatures.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// `docs` simplex-ish signatures (nonnegative, L1-normalized, some
    /// null), plus k-means-free synthetic assignments.
    fn synth(docs: usize, m: usize, k: usize, seed: u64) -> (Vec<f64>, Vec<u32>, Vec<f64>) {
        let mut rng = Rng(seed | 1);
        let mut sigs = vec![0.0f64; docs * m];
        for d in 0..docs {
            if d % 17 == 9 {
                continue; // null signature
            }
            let row = &mut sigs[d * m..(d + 1) * m];
            for x in row.iter_mut() {
                // Sparse-ish nonnegative values.
                let v = rng.f64();
                *x = if v < 0.55 { 0.0 } else { v };
            }
            let l1: f64 = row.iter().sum();
            if l1 > 0.0 {
                for x in row.iter_mut() {
                    *x /= l1;
                }
            }
        }
        let assignments: Vec<u32> = (0..docs).map(|d| (d % k) as u32).collect();
        // Centroids: mean of each cluster's signatures.
        let mut centroids = vec![0.0f64; k * m];
        let mut counts = vec![0u64; k];
        for d in 0..docs {
            let c = assignments[d] as usize;
            counts[c] += 1;
            for j in 0..m {
                centroids[c * m + j] += sigs[d * m + j];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..m {
                    centroids[c * m + j] /= counts[c] as f64;
                }
            }
        }
        (sigs, assignments, centroids)
    }

    #[test]
    fn quantize_roundtrip_within_half_scale() {
        let mut rng = Rng(7);
        for _ in 0..50 {
            let sig: Vec<f64> = (0..37).map(|_| rng.f64()).collect();
            let mut codes = vec![0u8; sig.len()];
            let p = quantize_into(&sig, &mut codes);
            for (&c, &x) in codes.iter().zip(&sig) {
                let err = (dequantize(c, p) - x).abs();
                assert!(
                    err <= p.scale * 0.5 + 1e-12,
                    "err {err} vs scale {}",
                    p.scale
                );
            }
        }
    }

    #[test]
    fn quantize_degenerate_rows() {
        let mut codes = vec![0u8; 4];
        let p = quantize_into(&[0.0; 4], &mut codes);
        assert_eq!(
            p,
            QuantParams {
                scale: 0.0,
                offset: 0.0
            }
        );
        assert_eq!(codes, [0; 4]);
        let p = quantize_into(&[0.25; 4], &mut codes);
        assert_eq!(p.scale, 0.0);
        assert_eq!(p.offset, 0.25);
        assert_eq!(dequantize(codes[0], p), 0.25);
        let p = quantize_into(&[], &mut []);
        assert_eq!(p.scale, 0.0);
    }

    #[test]
    fn kernel_matches_reference() {
        let mut rng = Rng(11);
        for len in [0usize, 1, 3, 4, 5, 60, 180, 1000, 20000] {
            let a: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            let b: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            assert_eq!(dot_u8(&a, &b), dot_u8_ref(&a, &b), "len {len}");
        }
        // Saturated: worst-case magnitudes must not overflow.
        let a = vec![255u8; 20000];
        assert_eq!(dot_u8(&a, &a), 20000 * 255 * 255);
    }

    #[test]
    fn approx_dot_within_error_bound() {
        let mut rng = Rng(23);
        let m = 60;
        for _ in 0..200 {
            let a: Vec<f64> = (0..m).map(|_| rng.f64()).collect();
            let b: Vec<f64> = (0..m).map(|_| rng.f64() * 0.01).collect();
            let (mut ca, mut cb) = (vec![0u8; m], vec![0u8; m]);
            let pa = quantize_into(&a, &mut ca);
            let pb = quantize_into(&b, &mut cb);
            let sa: u32 = ca.iter().map(|&c| c as u32).sum();
            let sb: u32 = cb.iter().map(|&c| c as u32).sum();
            let approx = approx_dot(m, pa, sa, pb, sb, dot_u8(&ca, &cb));
            let exact = dot(&a, &b);
            let l1a: f64 = a.iter().sum();
            let l1b: f64 = b.iter().sum();
            let bound = dot_error_bound(pa, pb, l1a, l1b, m);
            assert!(
                (approx - exact).abs() <= bound,
                "err {} vs bound {bound}",
                (approx - exact).abs()
            );
        }
    }

    #[test]
    fn ivf_lists_partition_docs() {
        let (sigs, assignments, _) = synth(101, 24, 7, 5);
        let ivf = build_ivf(&sigs, 24, &assignments, 7);
        assert_eq!(ivf.ivfoff.len(), 8);
        assert_eq!(*ivf.ivfoff.last().unwrap(), 101);
        let mut seen = [false; 101];
        for c in 0..7 {
            let lo = ivf.ivfoff[c] as usize;
            let hi = ivf.ivfoff[c + 1] as usize;
            for pos in lo..hi {
                let doc = ivf.ivfdoc[pos];
                assert_eq!(assignments[doc as usize] as usize, c);
                assert!(!seen[doc as usize]);
                seen[doc as usize] = true;
                if pos > lo {
                    assert!(ivf.ivfdoc[pos - 1] < doc, "lists ascend by doc id");
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_probe_matches_exhaustive_bitwise() {
        let m = 24;
        let k = 7;
        let (sigs, assignments, centroids) = synth(101, m, k, 13);
        let ivf = build_ivf(&sigs, m, &assignments, k);
        let sums = code_sums(&ivf.codes, m);
        let view = AnnIndexView::of(&ivf, &centroids, &sums, &sigs);
        let mut stats = SearchStats::default();
        for q in [0usize, 3, 9, 42, 100] {
            let query = sigs[q * m..(q + 1) * m].to_vec();
            if l2_norm(&query) == 0.0 {
                continue;
            }
            for top in [1, 10, 100] {
                let got = search(&view, &query, top, k, &mut stats);
                let want = exhaustive(&sigs, m, &query, top);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.doc, w.doc, "doc mismatch, q={q} top={top}");
                    assert_eq!(
                        g.score.to_bits(),
                        w.score.to_bits(),
                        "score bits differ, q={q} top={top}"
                    );
                }
            }
        }
    }

    #[test]
    fn rerank_is_bounded_not_exhaustive() {
        let m = 32;
        let k = 8;
        let (sigs, assignments, centroids) = synth(400, m, k, 99);
        let ivf = build_ivf(&sigs, m, &assignments, k);
        let sums = code_sums(&ivf.codes, m);
        let view = AnnIndexView::of(&ivf, &centroids, &sums, &sigs);
        let query = sigs[8 * m..9 * m].to_vec();
        let mut stats = SearchStats::default();
        let got = search(&view, &query, 10, k, &mut stats);
        assert_eq!(got.len(), 10);
        assert_eq!(stats.candidates, 400);
        assert!(
            stats.reranked < stats.candidates,
            "re-rank should prune: {} of {}",
            stats.reranked,
            stats.candidates
        );
    }

    #[test]
    fn fewer_probes_scan_fewer_candidates() {
        let m = 24;
        let k = 8;
        let (sigs, assignments, centroids) = synth(200, m, k, 3);
        let ivf = build_ivf(&sigs, m, &assignments, k);
        let sums = code_sums(&ivf.codes, m);
        let view = AnnIndexView::of(&ivf, &centroids, &sums, &sigs);
        let query = sigs[..m].to_vec();
        let mut s1 = SearchStats::default();
        let mut s8 = SearchStats::default();
        search(&view, &query, 5, 1, &mut s1);
        search(&view, &query, 5, k, &mut s8);
        assert_eq!(s1.probed, 1);
        assert_eq!(s8.probed, k);
        assert!(s1.candidates < s8.candidates);
    }

    #[test]
    fn null_query_and_empty_index() {
        let m = 8;
        let (sigs, assignments, centroids) = synth(20, m, 2, 1);
        let ivf = build_ivf(&sigs, m, &assignments, 2);
        let sums = code_sums(&ivf.codes, m);
        let view = AnnIndexView::of(&ivf, &centroids, &sums, &sigs);
        let mut stats = SearchStats::default();
        assert!(search(&view, &vec![0.0; m], 5, 2, &mut stats).is_empty());
        assert!(
            search(&view, &[1.0], 5, 2, &mut stats).is_empty(),
            "wrong dims"
        );
        assert!(exhaustive(&sigs, m, &[0.0; 8], 5).is_empty());
        let empty = build_ivf(&[], m, &[], 2);
        let esums = code_sums(&empty.codes, m);
        let eview = AnnIndexView::of(&empty, &centroids, &esums, &[]);
        assert!(search(&eview, &sigs[..m], 5, 2, &mut stats).is_empty());
    }

    #[test]
    fn embed_rows_matches_signature_semantics() {
        // Two rows, m = 3.
        let assoc = [0.2, 0.0, 0.6, 0.1, 0.3, 0.0];
        let sig = embed_rows([(0usize, 2.0), (1usize, 1.0)].into_iter(), &assoc, 3);
        // Raw: 2*[0.2,0,0.6] + 1*[0.1,0.3,0] = [0.5,0.3,1.2]; L1 = 2.
        assert!((sig[0] - 0.25).abs() < 1e-12);
        assert!((sig[1] - 0.15).abs() < 1e-12);
        assert!((sig[2] - 0.6).abs() < 1e-12);
        let l1: f64 = sig.iter().sum();
        assert!((l1 - 1.0).abs() < 1e-12);
        assert_eq!(embed_rows(std::iter::empty(), &assoc, 3), vec![0.0; 3]);
    }

    #[test]
    fn code_sums_match_rows() {
        let codes = [1u8, 2, 3, 250, 251, 252];
        assert_eq!(code_sums(&codes, 3), vec![6, 753]);
        assert_eq!(code_sums(&[], 3), Vec::<u32>::new());
        assert_eq!(code_sums(&[], 0), Vec::<u32>::new());
    }
}
