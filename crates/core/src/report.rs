//! Folding a finished SPMD run into a structured
//! [`RunReport`](inspire_trace::RunReport).
//!
//! The runtime already collects everything the report needs — per-rank
//! component timers (virtual, wall, and collective-wait seconds), comm
//! counters, and final clocks. This module reduces those per-rank vectors
//! into the per-stage rows the report renders: cross-rank max/min/sum of
//! virtual time (imbalance), slowest-rank wall time, and wait-time
//! attribution, in the paper's component order.

use inspire_trace::report::{CommTotals, RunReport, StageRow};
use spmd::timer::Component;
use spmd::RunResult;

/// Build a run report from any finished [`RunResult`]. `wall_time_s` is
/// the host wall clock for the whole run (the runtime's threads share
/// one epoch, so the caller measures around `Runtime::run`).
///
/// The `meta` vector is seeded with the processor count; callers append
/// their own context (corpus size, model name, …) and attach query
/// summaries before rendering.
pub fn build_run_report<R>(title: &str, res: &RunResult<R>, wall_time_s: f64) -> RunReport {
    let nprocs = res.timers.len();
    let mut stages = Vec::with_capacity(Component::COUNT);
    for c in Component::ALL {
        let mut row = StageRow {
            name: c.label().to_string(),
            virt_min_s: f64::INFINITY,
            busy_min_s: f64::INFINITY,
            ..StageRow::default()
        };
        for t in &res.timers {
            let v = t.get(c);
            row.virt_max_s = row.virt_max_s.max(v);
            row.virt_min_s = row.virt_min_s.min(v);
            row.virt_sum_s += v;
            row.wall_max_s = row.wall_max_s.max(t.get_wall(c));
            let w = t.get_wait(c);
            row.wait_max_s = row.wait_max_s.max(w);
            row.wait_sum_s += w;
            // Elapsed virtual time is collective-synchronized; busy time
            // (elapsed minus wait) is where ranks actually differ.
            let b = (v - w).max(0.0);
            row.busy_max_s = row.busy_max_s.max(b);
            row.busy_min_s = row.busy_min_s.min(b);
        }
        if !row.virt_min_s.is_finite() {
            row.virt_min_s = 0.0;
        }
        if !row.busy_min_s.is_finite() {
            row.busy_min_s = 0.0;
        }
        stages.push(row);
    }
    let totals = res.total_stats();
    let bytes = totals.one_sided_bytes
        + totals.local_bytes
        + totals.collective_bytes
        + 8 * totals.remote_atomics;
    RunReport {
        title: title.to_string(),
        meta: vec![("nprocs".to_string(), nprocs.to_string())],
        virtual_time_s: res.virtual_time(),
        wall_time_s,
        stages,
        comm: CommTotals {
            messages: totals.total_msgs(),
            bytes,
        },
        queries: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::pipeline::run_engine;
    use corpus::CorpusSpec;
    use spmd::CostModel;
    use std::sync::Arc;

    #[test]
    fn report_covers_an_engine_run() {
        let sources = CorpusSpec {
            source_bytes: 8 * 1024,
            ..CorpusSpec::pubmed(192 * 1024, 23)
        }
        .generate();
        let config = EngineConfig::for_testing();
        let run = run_engine(4, Arc::new(CostModel::pnnl_2007()), &sources, &config);
        let report = build_run_report("pipeline", &run.run, 0.5);

        assert_eq!(report.stages.len(), Component::COUNT);
        assert_eq!(report.meta[0], ("nprocs".to_string(), "4".to_string()));
        assert!(report.virtual_time_s > 0.0);
        // Stage maxima agree with the run's critical-path component times.
        for (row, c) in report.stages.iter().zip(Component::ALL) {
            assert_eq!(row.name, c.label());
            assert!((row.virt_max_s - run.components.get(c)).abs() < 1e-12);
            assert!(row.virt_min_s <= row.virt_max_s);
            assert!(row.virt_sum_s >= row.virt_max_s);
            assert!(row.busy_min_s <= row.busy_max_s);
            assert!(row.busy_max_s <= row.virt_max_s + 1e-12);
        }
        // Busy time actually varies across ranks in at least one stage.
        assert!(report
            .stages
            .iter()
            .any(|s| s.busy_max_s > s.busy_min_s + 1e-12));
        // The pipeline is collective-heavy: some stage accrued wait.
        assert!(report.stages.iter().any(|s| s.wait_sum_s > 0.0));
        assert!(report.comm.messages > 0);
        assert!(report.comm.bytes > 0);
        // Critical path share sums to ~100 and the JSON round-trips.
        let doc = inspire_trace::json::parse(&report.to_json()).expect("report JSON parses");
        let rows = doc.get("stages").unwrap().as_arr().unwrap();
        let share: f64 = rows
            .iter()
            .map(|r| r.get("critical_share_pct").unwrap().as_f64().unwrap())
            .sum();
        assert!((share - 100.0).abs() < 1e-6);
    }

    #[test]
    fn empty_run_reports_zeroes() {
        let rt = spmd::Runtime::for_testing();
        let res = rt.run(2, |_ctx| ());
        let report = build_run_report("noop", &res, 0.0);
        assert_eq!(report.virtual_time_s, 0.0);
        assert_eq!(report.max_imbalance_pct(), 0.0);
        assert!(report.stages.iter().all(|s| s.virt_min_s == 0.0));
    }
}
