//! Distributed k-means clustering (paper §3.5).
//!
//! *"We implemented a distributed k-means clustering algorithm in our
//! process [Dhillon & Modha]."* Each rank owns its documents' signatures;
//! an iteration assigns each local signature to its nearest centroid,
//! forms partial sums and counts, and merges them with a single Allreduce
//! — the Dhillon–Modha communication pattern, which keeps per-iteration
//! traffic at `O(k·M)` regardless of document count.
//!
//! Initialization samples k documents spread evenly across the global
//! document range (deterministic for a given corpus and k, independent of
//! the processor count). Empty clusters keep their previous centroid.
//! Assignment ties break toward the lower cluster index, so results are
//! reproducible bit-for-bit at any P.

use crate::config::{ClusterMethod, EngineConfig};
use crate::hierarchy::agglomerate;
use crate::linalg::dist2;
use crate::signature::Signatures;
use perfmodel::WorkKind;
use spmd::{Ctx, ReduceOp};

/// The clustering outcome on one rank.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster index of each local document.
    pub assignments: Vec<u32>,
    /// Final centroids, row-major k×M (replicated).
    pub centroids: Vec<f64>,
    /// Number of clusters.
    pub k: usize,
    /// Signature dimensionality.
    pub m: usize,
    /// Iterations executed.
    pub iterations: usize,
    /// Final within-cluster sum of squared distances (global).
    pub objective: f64,
    /// Documents per cluster (global).
    pub sizes: Vec<u64>,
    /// Centroids the projection stage fits PCA on — identical to
    /// `centroids` for plain k-means, but the *fine* first-level
    /// centroids under hierarchical clustering (more samples give the
    /// PCA a better basis).
    pub pca_centroids: Vec<f64>,
    /// Number of rows in `pca_centroids`.
    pub pca_k: usize,
}

impl Clustering {
    /// Centroid `c` as a slice.
    pub fn centroid(&self, c: usize) -> &[f64] {
        &self.centroids[c * self.m..(c + 1) * self.m]
    }
}

/// Run distributed k-means over this rank's signatures. Collective.
pub fn kmeans(
    ctx: &Ctx,
    sigs: &Signatures,
    doc_base: u32,
    total_docs: u32,
    k: usize,
    max_iters: usize,
    tol: f64,
) -> Clustering {
    let m = sigs.m;
    let n_local = sigs.n_local();
    let k = k.max(1).min(total_docs.max(1) as usize);

    // ---- Deterministic initialization: k evenly spread documents ----
    // Each rank contributes the seed signatures it owns; one Allreduce
    // assembles the initial centroids everywhere.
    let mut centroids = vec![0.0f64; k * m];
    for c in 0..k {
        let seed_doc = ((c as u64 * total_docs as u64) / k as u64) as u32;
        if seed_doc >= doc_base && (seed_doc - doc_base) < n_local as u32 {
            let local_idx = (seed_doc - doc_base) as usize;
            centroids[c * m..(c + 1) * m].copy_from_slice(sigs.row(local_idx));
        }
    }
    let mut centroids = ctx.allreduce_f64(centroids, ReduceOp::Sum);

    let mut assignments = vec![0u32; n_local];
    let mut iterations = 0;
    let mut objective = f64::INFINITY;
    let mut sizes = vec![0u64; k];

    for iter in 0..max_iters {
        iterations = iter + 1;
        // ---- Assignment + partial sums ----
        let mut part_sums = vec![0.0f64; k * m];
        let mut part_counts = vec![0u64; k];
        let mut part_obj = 0.0f64;
        #[allow(clippy::needless_range_loop)] // i indexes three structures
        for i in 0..n_local {
            let sig = sigs.row(i);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = dist2(sig, &centroids[c * m..(c + 1) * m]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignments[i] = best as u32;
            part_obj += best_d;
            part_counts[best] += 1;
            for (s, &x) in part_sums[best * m..(best + 1) * m].iter_mut().zip(sig) {
                *s += x;
            }
        }
        // Assignment cost: n * k * M multiply-adds (×3 for sub/mul/add).
        ctx.charge(WorkKind::Flops, 3 * (n_local * k * m) as u64);

        // ---- Merge (the Dhillon–Modha Allreduce) ----
        let sums = ctx.allreduce_f64(part_sums, ReduceOp::Sum);
        let counts = ctx.allreduce_u64(part_counts, ReduceOp::Sum);
        let new_obj = ctx.allreduce_scalar_f64(part_obj, ReduceOp::Sum);

        // ---- Centroid update (identical on every rank) ----
        ctx.charge(WorkKind::Flops, (k * m) as u64);
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                for d in 0..m {
                    centroids[c * m + d] = sums[c * m + d] * inv;
                }
            }
            // Empty cluster: keep the previous centroid.
        }
        sizes = counts;

        // ---- Convergence test on the global objective ----
        let improved =
            objective.is_infinite() || (objective - new_obj) > tol * objective.abs().max(1e-12);
        objective = new_obj;
        if !improved {
            break;
        }
    }

    Clustering {
        assignments,
        centroids: centroids.clone(),
        k,
        m,
        iterations,
        objective,
        sizes,
        pca_centroids: centroids,
        pca_k: k,
    }
}

/// Cluster this rank's documents per the configured method (§3.5).
/// Collective.
pub fn cluster_documents(
    ctx: &Ctx,
    sigs: &Signatures,
    doc_base: u32,
    total_docs: u32,
    cfg: &EngineConfig,
) -> Clustering {
    match cfg.cluster_method {
        ClusterMethod::KMeans => kmeans(
            ctx,
            sigs,
            doc_base,
            total_docs,
            cfg.n_clusters,
            cfg.max_kmeans_iters,
            cfg.kmeans_tol,
        ),
        ClusterMethod::Hierarchical {
            linkage,
            fine_factor,
            adaptive,
        } => {
            // Level 1: fine-grained distributed k-means.
            let k_fine = (cfg.n_clusters * fine_factor.max(1)).max(cfg.n_clusters);
            let fine = kmeans(
                ctx,
                sigs,
                doc_base,
                total_docs,
                k_fine,
                cfg.max_kmeans_iters,
                cfg.kmeans_tol,
            );
            // Level 2: agglomerate the (replicated) fine centroids —
            // identical on every rank, no communication. Charged as the
            // O(k_fine^3 + k_fine^2 m) it is; k_fine is a configuration
            // constant, so the charge is unscaled.
            let kf = fine.k;
            let m = fine.m;
            ctx.charge_fixed(WorkKind::Flops, (kf * kf * kf + kf * kf * m) as u64);
            let dendrogram = agglomerate(&fine.centroids, kf, m, linkage);
            let leaf_to_coarse = if adaptive {
                dendrogram.adaptive_cut(2, cfg.n_clusters)
            } else {
                dendrogram.cut(cfg.n_clusters)
            };
            let k_coarse = leaf_to_coarse
                .iter()
                .map(|&l| l as usize + 1)
                .max()
                .unwrap_or(1);

            // Remap documents and rebuild coarse centroids as
            // size-weighted means of the fine centroids.
            let assignments: Vec<u32> = fine
                .assignments
                .iter()
                .map(|&a| leaf_to_coarse[a as usize])
                .collect();
            let mut centroids = vec![0.0f64; k_coarse * m];
            let mut weights = vec![0.0f64; k_coarse];
            #[allow(clippy::needless_range_loop)] // leaf indexes two structures
            for leaf in 0..kf {
                let c = leaf_to_coarse[leaf] as usize;
                let w = fine.sizes[leaf] as f64;
                weights[c] += w;
                for d in 0..m {
                    centroids[c * m + d] += w * fine.centroids[leaf * m + d];
                }
            }
            for c in 0..k_coarse {
                if weights[c] > 0.0 {
                    for d in 0..m {
                        centroids[c * m + d] /= weights[c];
                    }
                }
            }
            let mut sizes = vec![0u64; k_coarse];
            for (leaf, &sz) in fine.sizes.iter().enumerate() {
                sizes[leaf_to_coarse[leaf] as usize] += sz;
            }

            Clustering {
                assignments,
                centroids,
                k: k_coarse,
                m,
                iterations: fine.iterations,
                objective: fine.objective,
                sizes,
                pca_centroids: fine.centroids,
                pca_k: kf,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc;
    use crate::config::EngineConfig;
    use crate::index::invert;
    use crate::scan::scan;
    use crate::signature::generate;
    use crate::topicality::select_topics;
    use corpus::CorpusSpec;
    use spmd::Runtime;

    fn corpus() -> corpus::SourceSet {
        CorpusSpec {
            source_bytes: 8 * 1024,
            ..CorpusSpec::pubmed(64 * 1024, 5)
        }
        .generate()
    }

    fn run_kmeans(p: usize, k: usize) -> (Vec<f64>, f64, Vec<u64>, Vec<u32>) {
        let src = corpus();
        let rt = Runtime::for_testing();
        let res = rt.run(p, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let topics = select_topics(ctx, &idx, &cfg, cfg.n_major, cfg.m_dims());
            let am = assoc::build(ctx, &s, &idx, &topics);
            let sigs = generate(ctx, &s, &am);
            let cl = kmeans(ctx, &sigs, s.doc_base, s.total_docs, k, 20, 1e-4);
            (
                cl.centroids.clone(),
                cl.objective,
                cl.sizes.clone(),
                cl.assignments,
            )
        });
        // Concatenate assignments in rank order for a global view.
        let mut all_assign = Vec::new();
        let mut first = None;
        for (c, o, s, a) in res.results {
            all_assign.extend(a);
            if first.is_none() {
                first = Some((c, o, s));
            }
        }
        let (c, o, s) = first.unwrap();
        (c, o, s, all_assign)
    }

    #[test]
    fn kmeans_identical_across_p() {
        let (c1, o1, s1, a1) = run_kmeans(1, 6);
        for p in [2, 4] {
            let (c, o, s, a) = run_kmeans(p, 6);
            assert_eq!(s, s1, "cluster sizes differ at P={p}");
            assert_eq!(a, a1, "assignments differ at P={p}");
            assert!((o - o1).abs() < 1e-6 * o1.max(1.0), "objective {o} vs {o1}");
            for (x, y) in c.iter().zip(&c1) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sizes_sum_to_total_docs() {
        let (_, _, sizes, assignments) = run_kmeans(3, 5);
        assert_eq!(sizes.iter().sum::<u64>() as usize, assignments.len());
    }

    #[test]
    fn assignments_minimize_distance() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let topics = select_topics(ctx, &idx, &cfg, cfg.n_major, cfg.m_dims());
            let am = assoc::build(ctx, &s, &idx, &topics);
            let sigs = generate(ctx, &s, &am);
            let cl = kmeans(ctx, &sigs, s.doc_base, s.total_docs, 5, 20, 1e-4);
            // Each document must not be strictly closer to a different
            // centroid than to its own (up to fp noise).
            for i in 0..sigs.n_local() {
                let own = dist2(sigs.row(i), cl.centroid(cl.assignments[i] as usize));
                for c in 0..cl.k {
                    let d = dist2(sigs.row(i), cl.centroid(c));
                    assert!(own <= d + 1e-9, "doc {i}: own {own} vs c{c} {d}");
                }
            }
        });
    }

    #[test]
    fn objective_nonincreasing_over_iterations() {
        // Run with generous iterations and verify monotonicity by probing
        // successive iteration caps.
        let mut prev = f64::INFINITY;
        for iters in [1, 3, 6, 12] {
            let src = corpus();
            let rt = Runtime::for_testing();
            let res = rt.run(2, |ctx| {
                let cfg = EngineConfig::for_testing();
                let s = scan(ctx, &src, &cfg);
                let idx = invert(ctx, &s, &cfg);
                let topics = select_topics(ctx, &idx, &cfg, cfg.n_major, cfg.m_dims());
                let am = assoc::build(ctx, &s, &idx, &topics);
                let sigs = generate(ctx, &s, &am);
                kmeans(ctx, &sigs, s.doc_base, s.total_docs, 5, iters, 0.0).objective
            });
            let obj = res.results[0];
            assert!(
                obj <= prev + 1e-9,
                "objective rose from {prev} to {obj} at {iters} iters"
            );
            prev = obj;
        }
    }

    #[test]
    fn k_clamped_to_total_docs() {
        let src = CorpusSpec {
            target_bytes: 4 * 1024,
            source_bytes: 4 * 1024,
            ..CorpusSpec::pubmed(4 * 1024, 3)
        }
        .generate();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let topics = select_topics(ctx, &idx, &cfg, cfg.n_major, cfg.m_dims());
            let am = assoc::build(ctx, &s, &idx, &topics);
            let sigs = generate(ctx, &s, &am);
            let cl = kmeans(ctx, &sigs, s.doc_base, s.total_docs, 10_000, 5, 1e-4);
            assert!(cl.k <= s.total_docs as usize);
        });
    }
}
