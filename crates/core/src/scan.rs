//! Scan & Map: source partitioning, tokenization, forward indexing, and
//! global vocabulary construction (paper §3.2).
//!
//! Each rank scans its byte-balanced share of the sources, tokenizes every
//! indexed field, and builds the *forward index* (document → field → term
//! counts). Unique terms are registered in the ARMCI-style distributed
//! hashmap, which assigns global term IDs; a process-local interner cache
//! keeps the remote insert traffic proportional to the number of
//! *distinct* terms a rank encounters, not to the token count, and each
//! record chunk's unseen terms travel in **one batched RPC per
//! destination shard** rather than one round trip per term.
//!
//! After scanning, the forward index is published into two global arrays
//! (offsets + packed entries) so that any rank can fetch any document's
//! postings during the dynamically load-balanced inversion — this is the
//! "stored in global arrays, so that they are globally accessible when
//! processes exchange information during inverted file indexing" of §3.2.
//!
//! Finally the vocabulary is **canonicalized**: the distributed hashmap's
//! arrival-order IDs depend on thread scheduling, so ranks collectively
//! sort the vocabulary and remap to dense, lexicographic IDs. This makes
//! every downstream stage bit-deterministic for a given corpus regardless
//! of the processor count or scheduling, which the test suite relies on.

use crate::config::EngineConfig;
use crate::tokenize::Tokenizer;
use crate::{DocId, FieldId, TermId};
use corpus::{partition_contiguous, Source, SourceSet};
use ga::{DistHashMap, GlobalArray};
use intern::{TermInterner, TermTable};
use perfmodel::WorkKind;
use spmd::Ctx;
use std::collections::HashMap;
use std::ops::Range;

/// Records per intra-rank work chunk during tokenization. Fixed (never
/// derived from the pool width) so chunk boundaries — and therefore all
/// merged results — are identical at any `threads_per_rank`. Eight
/// multi-kilobyte records are enough work to amortize a chunk dispatch
/// while keeping the schedule balanced on test-sized partitions.
const SCAN_RECORD_CHUNK: usize = 8;

/// Fields that are indexed (contribute terms). Identifier-like fields
/// (pmid, docno, url, author) are framed but not indexed, as a production
/// text engine would configure.
pub const INDEXED_FIELDS: &[&str] = &["title", "abstract", "mesh", "body"];

/// Pack a forward-index entry: term id (32 bits) | field (8) | freq (24).
pub fn pack_entry(term: TermId, field: FieldId, freq: u32) -> u64 {
    (term as u64) | ((field as u64) << 32) | ((freq.min(0xFF_FFFF) as u64) << 40)
}

/// Unpack a forward-index entry.
pub fn unpack_entry(e: u64) -> (TermId, FieldId, u32) {
    (
        (e & 0xFFFF_FFFF) as TermId,
        ((e >> 32) & 0xFF) as FieldId,
        (e >> 40) as u32,
    )
}

/// Per-field term counts of one document, sorted by term id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalField {
    pub field: FieldId,
    pub counts: Vec<(TermId, u32)>,
}

/// One scanned document owned by this rank.
#[derive(Debug, Clone)]
pub struct LocalDoc {
    pub doc_id: DocId,
    pub fields: Vec<LocalField>,
    /// Accepted tokens in the document (all indexed fields).
    pub tokens: u32,
}

impl LocalDoc {
    /// Iterate `(term, freq)` aggregated over fields. Entries are emitted
    /// in ascending term order per field; the same term may appear for
    /// multiple fields.
    pub fn term_freqs(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.fields.iter().flat_map(|f| f.counts.iter().copied())
    }

    /// Distinct terms of the document (sorted, deduplicated across
    /// fields), with total frequency.
    pub fn distinct_terms(&self) -> Vec<(TermId, u32)> {
        let mut m: HashMap<TermId, u32> = HashMap::new();
        for (t, f) in self.term_freqs() {
            *m.entry(t).or_insert(0) += f;
        }
        let mut v: Vec<(TermId, u32)> = m.into_iter().collect();
        v.sort_unstable_by_key(|&(t, _)| t);
        v
    }
}

/// The result of the Scan & Map stage on one rank.
pub struct ScanOutput {
    /// This rank's documents, in corpus order.
    pub docs: Vec<LocalDoc>,
    /// Global id of `docs[0]`.
    pub doc_base: DocId,
    /// Total documents across all ranks.
    pub total_docs: u32,
    /// The distributed vocabulary map (original arrival-order ids).
    pub vocab: DistHashMap,
    /// Canonical vocabulary: `terms[canonical_id]`, lexicographically
    /// sorted, arena-backed. All term ids in `docs` and the forward
    /// arrays are canonical.
    pub terms: std::sync::Arc<TermTable>,
    /// Forward-index document offsets (length `total_docs + 1`).
    pub fwd_offsets: GlobalArray<i64>,
    /// Packed forward-index entries (term | field | freq).
    pub fwd_data: GlobalArray<u64>,
    /// Bytes of source data this rank scanned.
    pub bytes_scanned: u64,
    /// Accepted tokens this rank scanned.
    pub tokens_scanned: u64,
    /// Vocabulary-registration messages this rank actually charged
    /// (batched: one per destination shard per tokenized-record chunk).
    pub vocab_rpc_msgs: u64,
    /// Messages a per-term scalar registration would have charged — the
    /// number of distinct new terms this rank pushed to the dhashmap.
    pub vocab_rpc_scalar_equiv: u64,
}

impl ScanOutput {
    /// Vocabulary size (canonical ids are dense `0..terms.len()`).
    pub fn vocab_size(&self) -> usize {
        self.terms.len()
    }

    /// Canonical id of `term`, if present.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.terms.position(term).map(|i| i as TermId)
    }
}

/// One indexed field of a tokenized (but not yet vocabulary-registered)
/// record: counts keyed by the owning chunk's interner ids, sorted
/// lexicographically by term bytes, plus the raw candidate count for work
/// accounting.
struct TokenizedField {
    field: FieldId,
    /// `(chunk-local term id, count)`, sorted by term bytes.
    counts: Vec<(u32, u32)>,
    candidates: u64,
}

/// A record after the pure tokenize phase.
struct TokenizedDoc {
    fields: Vec<TokenizedField>,
    tokens: u32,
}

/// A chunk of tokenized records sharing one interner — the unit of
/// batched vocabulary registration in Phase B.
struct TokenizedChunk {
    /// Distinct terms of the chunk, in first-occurrence order; field
    /// counts reference these ids.
    terms: TermInterner,
    docs: Vec<TokenizedDoc>,
}

/// Parse and tokenize one record into the chunk's interner. Pure with
/// respect to rank state, so it can run on the intra-rank pool. The
/// tokenize→count loop does zero per-token allocations and one hash pass
/// per token (the fold path shares the hash between the stopword probe
/// and the intern probe): terms land in the chunk arena (distinct terms
/// only), and per-field counting uses the reusable id-indexed
/// `counts_scratch`/`touched` scratch pair.
fn tokenize_record(
    source: &Source,
    range: Range<usize>,
    tokenizer: &Tokenizer,
    indexed: &[FieldId],
    terms: &mut TermInterner,
    counts_scratch: &mut Vec<u32>,
    touched: &mut Vec<u32>,
) -> TokenizedDoc {
    let raw = source.parse_record(range);
    let mut fields: Vec<TokenizedField> = Vec::new();
    let mut tokens = 0u32;
    for (name, text) in &raw.fields {
        let Some(fid) = crate::field_id(name) else {
            continue;
        };
        if !indexed.contains(&fid) {
            continue;
        }
        let candidates = tokenizer.tokenize_intern_into(text, terms, |id, _is_new| {
            let at = id as usize;
            if at >= counts_scratch.len() {
                counts_scratch.resize(at + 1, 0);
            }
            if counts_scratch[at] == 0 {
                touched.push(id);
            }
            counts_scratch[at] += 1;
            tokens += 1;
        });
        if touched.is_empty() {
            if candidates > 0 {
                fields.push(TokenizedField {
                    field: fid,
                    counts: Vec::new(),
                    candidates,
                });
            }
            continue;
        }
        // Sort by term bytes so downstream registration order (and the
        // canonical remap input) is independent of hash layout.
        touched.sort_unstable_by(|&a, &b| terms.bytes(a).cmp(terms.bytes(b)));
        let counts: Vec<(u32, u32)> = touched
            .iter()
            .map(|&id| (id, counts_scratch[id as usize]))
            .collect();
        for &id in touched.iter() {
            counts_scratch[id as usize] = 0;
        }
        touched.clear();
        fields.push(TokenizedField {
            field: fid,
            counts,
            candidates,
        });
    }
    TokenizedDoc { fields, tokens }
}

/// One indexed field of a record tokenized by [`tokenize_batch`]: term
/// counts keyed by the caller's interner ids, sorted by term **bytes**
/// (the same order the scan pipeline hands to vocabulary registration).
#[derive(Debug, Clone)]
pub struct BatchField {
    pub field: FieldId,
    /// `(interner term id, count)`, sorted by term bytes.
    pub counts: Vec<(u32, u32)>,
}

/// One record tokenized by [`tokenize_batch`]. Fields with no accepted
/// terms are dropped, exactly as the scan stage drops them from
/// [`LocalDoc`]; a record may therefore have zero fields but still
/// occupies one document id.
#[derive(Debug, Clone)]
pub struct BatchDoc {
    pub fields: Vec<BatchField>,
    /// Accepted tokens across all indexed fields.
    pub tokens: u32,
}

/// Tokenize every record of `source` through the exact record framing,
/// indexed-field filter, and tokenizer path the batch scan uses, interning
/// terms into the shared `terms`. Record tokenization is context-free, so
/// the emitted per-field counts are bit-identical to what a full-corpus
/// scan produces for the same records — this is the incremental-ingestion
/// sealer's guarantee that a segment built from one batch matches a
/// from-scratch rebuild posting for posting.
pub fn tokenize_batch(
    source: &Source,
    tokenizer: &Tokenizer,
    terms: &mut TermInterner,
) -> Vec<BatchDoc> {
    let indexed: Vec<FieldId> = INDEXED_FIELDS
        .iter()
        .map(|n| crate::field_id(n).expect("indexed field registered"))
        .collect();
    let mut counts_scratch: Vec<u32> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();
    source
        .record_ranges()
        .into_iter()
        .map(|range| {
            let tdoc = tokenize_record(
                source,
                range,
                tokenizer,
                &indexed,
                terms,
                &mut counts_scratch,
                &mut touched,
            );
            BatchDoc {
                fields: tdoc
                    .fields
                    .into_iter()
                    .filter(|f| !f.counts.is_empty())
                    .map(|f| BatchField {
                        field: f.field,
                        counts: f.counts,
                    })
                    .collect(),
                tokens: tdoc.tokens,
            }
        })
        .collect()
}

/// Run Scan & Map. Collective: every rank calls with the same arguments.
pub fn scan(ctx: &Ctx, sources: &SourceSet, cfg: &EngineConfig) -> ScanOutput {
    let p = ctx.nprocs();
    let tokenizer = Tokenizer::new(cfg.tokenizer.clone());
    let indexed: Vec<FieldId> = INDEXED_FIELDS
        .iter()
        .map(|n| crate::field_id(n).expect("indexed field registered"))
        .collect();

    // Static byte-balanced partitioning of sources (§3.2).
    let parts = partition_contiguous(&sources.sizes(), p);
    let my_sources = parts[ctx.rank()].clone();

    let vocab = DistHashMap::create(ctx);
    // Rank-level term cache: interner ids are dense in first-seen order;
    // `cache_ids[interner id]` holds the dhashmap's global id.
    let mut cache = TermInterner::new();
    let mut cache_ids: Vec<TermId> = Vec::new();
    let mut docs: Vec<LocalDoc> = Vec::new();
    let mut bytes_scanned = 0u64;
    let mut tokens_scanned = 0u64;
    let mut vocab_rpc_msgs = 0u64;
    let mut vocab_rpc_scalar_equiv = 0u64;

    // Flatten every record of this rank's sources into one work list so
    // Phase A fans out over a single global chunk sequence — per-source
    // fan-out would leave small sources with one chunk or less. I/O and
    // scan-byte charges land per source, in source order, exactly as the
    // serial scan charged them.
    let mut records: Vec<(usize, Range<usize>)> = Vec::new();
    for si in my_sources {
        let source = &sources.sources[si];
        bytes_scanned += source.data.len() as u64;
        ctx.charge_scan_io(source.data.len() as u64);
        ctx.charge(WorkKind::ScanBytes, source.data.len() as u64);
        for range in source.record_ranges() {
            records.push((si, range));
        }
    }

    // Phase A (parallel, pure): parse and tokenize record chunks into
    // per-field counts over a chunk-local interner. No rank state is
    // touched — the chunks fan out across the intra-rank pool. Chunk
    // boundaries are fixed (SCAN_RECORD_CHUNK), so chunk interners — and
    // therefore Phase B's batch composition — are pool-width invariant.
    let chunks: Vec<TokenizedChunk> =
        ctx.pool()
            .map_chunks(records.len(), SCAN_RECORD_CHUNK, |chunk| {
                let mut terms = TermInterner::new();
                let mut counts_scratch: Vec<u32> = Vec::new();
                let mut touched: Vec<u32> = Vec::new();
                let docs = records[chunk]
                    .iter()
                    .map(|(si, range)| {
                        tokenize_record(
                            &sources.sources[*si],
                            range.clone(),
                            &tokenizer,
                            &indexed,
                            &mut terms,
                            &mut counts_scratch,
                            &mut touched,
                        )
                    })
                    .collect();
                TokenizedChunk { terms, docs }
            });

    // Phase B (serial, chunks in index order = corpus order): resolve
    // each chunk's distinct terms against the rank cache, push the
    // still-unseen ones to the distributed vocabulary in ONE batched RPC
    // per destination shard, and charge the tokenize work. Scalar per-
    // term RPCs only ever covered cache misses; batching additionally
    // collapses each chunk's misses into at most `nprocs` messages.
    for chunk in chunks {
        // chunk-local interner id → global (arrival-order) term id.
        let n_chunk_terms = chunk.terms.len() as u32;
        let mut chunk_to_global: Vec<TermId> = Vec::with_capacity(n_chunk_terms as usize);
        let mut pending: Vec<u32> = Vec::new();
        for local in 0..n_chunk_terms {
            let term = chunk.terms.get(local);
            let (cid, is_new) = cache.intern(term);
            if is_new {
                pending.push(local);
                chunk_to_global.push(TermId::MAX); // resolved by the batch below
            } else {
                chunk_to_global.push(cache_ids[cid as usize]);
            }
        }
        if !pending.is_empty() {
            let refs: Vec<&str> = pending.iter().map(|&l| chunk.terms.get(l)).collect();
            let before = ctx.stats.snapshot().total_msgs();
            let ids = vocab.insert_or_get_batch(ctx, &refs);
            vocab_rpc_msgs += ctx.stats.snapshot().total_msgs() - before;
            vocab_rpc_scalar_equiv += pending.len() as u64;
            // cache.intern assigned the pending terms consecutive ids in
            // this same order, so appending keeps cache_ids aligned.
            for (&local, &id) in pending.iter().zip(&ids) {
                cache_ids.push(id);
                chunk_to_global[local as usize] = id;
            }
        }
        debug_assert_eq!(cache.len(), cache_ids.len());

        for tdoc in chunk.docs {
            let mut fields: Vec<LocalField> = Vec::with_capacity(tdoc.fields.len());
            for tfield in tdoc.fields {
                ctx.charge(WorkKind::TokenizeTerms, tfield.candidates);
                if tfield.counts.is_empty() {
                    continue;
                }
                let mut counts: Vec<(TermId, u32)> = tfield
                    .counts
                    .iter()
                    .map(|&(local, n)| (chunk_to_global[local as usize], n))
                    .collect();
                counts.sort_unstable_by_key(|&(t, _)| t);
                fields.push(LocalField {
                    field: tfield.field,
                    counts,
                });
            }
            tokens_scanned += tdoc.tokens as u64;
            docs.push(LocalDoc {
                doc_id: 0, // assigned below
                fields,
                tokens: tdoc.tokens,
            });
        }
    }

    // Global document numbering.
    let (doc_base, total_docs) = ctx.exscan_u64(docs.len() as u64);
    for (i, d) in docs.iter_mut().enumerate() {
        d.doc_id = (doc_base as usize + i) as DocId;
    }

    // Vocabulary is complete once everyone finished inserting.
    ctx.barrier();

    // Canonicalize: collectively sort the vocabulary and remap ids so the
    // engine is deterministic under scheduling (see module docs).
    let reverse = vocab.reverse_map_collective(ctx);
    let mut sorted_terms: Vec<String> = reverse.into_iter().flatten().collect();
    ctx.charge_vocab(
        WorkKind::HashOps,
        sorted_terms.len() as u64, // sort + remap table build
    );
    sorted_terms.sort_unstable();
    let terms = TermTable::from_sorted(sorted_terms.iter().map(|s| s.as_str()));
    drop(sorted_terms);
    // Old (arrival-order) id → canonical id, as a dense array: ids are
    // nearly dense (interleaved per shard), so an array lookup replaces a
    // hash map probe per posting.
    let mut old_to_new: Vec<TermId> = vec![TermId::MAX; vocab.id_bound()];
    for (cid, term) in cache.iter().enumerate() {
        let new = terms
            .position(term)
            .expect("every registered term is in the canonical vocabulary");
        old_to_new[cache_ids[cid] as usize] = new as TermId;
    }
    // Remapping is one hash lookup per posting plus a per-field sort —
    // pure per-doc work, so it fans out over the pool. Chunks return
    // each document's remapped fields in order; the serial write-back
    // below keeps `docs` in corpus order.
    type RemappedFields = Vec<Vec<(TermId, u32)>>;
    let remapped: Vec<Vec<RemappedFields>> =
        ctx.pool()
            .map_chunks(docs.len(), SCAN_RECORD_CHUNK, |chunk| {
                docs[chunk]
                    .iter()
                    .map(|d| {
                        d.fields
                            .iter()
                            .map(|f| {
                                let mut counts: Vec<(TermId, u32)> = f
                                    .counts
                                    .iter()
                                    .map(|&(t, c)| (old_to_new[t as usize], c))
                                    .collect();
                                counts.sort_unstable_by_key(|&(t, _)| t);
                                counts
                            })
                            .collect()
                    })
                    .collect()
            });
    for (d, fields) in docs.iter_mut().zip(remapped.into_iter().flatten()) {
        for (f, counts) in d.fields.iter_mut().zip(fields) {
            f.counts = counts;
        }
    }

    // Publish the forward index into global arrays.
    let my_entries: u64 = docs
        .iter()
        .map(|d| d.fields.iter().map(|f| f.counts.len() as u64).sum::<u64>())
        .sum();
    let (entry_base, total_entries) = ctx.exscan_u64(my_entries);
    let fwd_offsets = GlobalArray::<i64>::create(ctx, total_docs as usize + 1);
    let fwd_data = GlobalArray::<u64>::create(ctx, total_entries as usize);

    let mut offsets = Vec::with_capacity(docs.len() + 1);
    let mut entries = Vec::with_capacity(my_entries as usize);
    let mut at = entry_base;
    for d in &docs {
        offsets.push(at as i64);
        for f in &d.fields {
            for &(t, c) in &f.counts {
                entries.push(pack_entry(t, f.field, c));
            }
        }
        at = entry_base + entries.len() as u64;
    }
    if !docs.is_empty() {
        fwd_offsets.put(ctx, doc_base as usize, &offsets);
        fwd_data.put(ctx, entry_base as usize, &entries);
    }
    if ctx.rank() == p - 1 {
        fwd_offsets.put(ctx, total_docs as usize, &[total_entries as i64]);
    }
    ctx.barrier();

    ScanOutput {
        docs,
        doc_base: doc_base as DocId,
        total_docs: total_docs as u32,
        vocab,
        terms: std::sync::Arc::new(terms),
        fwd_offsets,
        fwd_data,
        bytes_scanned,
        tokens_scanned,
        vocab_rpc_msgs,
        vocab_rpc_scalar_equiv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusSpec;
    use spmd::Runtime;

    fn tiny_corpus() -> SourceSet {
        CorpusSpec {
            source_bytes: 8 * 1024,
            ..CorpusSpec::pubmed(32 * 1024, 77)
        }
        .generate()
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (t, f, c) in [
            (0u32, 0u8, 1u32),
            (123_456, 7, 999),
            (u32::MAX, 3, 0xFF_FFFF),
        ] {
            assert_eq!(unpack_entry(pack_entry(t, f, c)), (t, f, c));
        }
    }

    #[test]
    fn pack_saturates_freq() {
        let (_, _, c) = unpack_entry(pack_entry(1, 1, u32::MAX));
        assert_eq!(c, 0xFF_FFFF);
    }

    #[test]
    fn doc_ids_are_dense_and_global() {
        let corpus = tiny_corpus();
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            let out = scan(ctx, &corpus, &EngineConfig::for_testing());
            (out.doc_base, out.docs.len() as u32, out.total_docs)
        });
        let total = res.results[0].2;
        let mut expected_base = 0u32;
        for (base, n, t) in res.results {
            assert_eq!(base, expected_base);
            assert_eq!(t, total);
            expected_base += n;
        }
        assert_eq!(expected_base, total);
    }

    #[test]
    fn vocabulary_identical_across_p() {
        let corpus = tiny_corpus();
        let rt = Runtime::for_testing();
        let t1 = rt
            .run(1, |ctx| {
                scan(ctx, &corpus, &EngineConfig::for_testing())
                    .terms
                    .as_ref()
                    .clone()
            })
            .results
            .remove(0);
        for p in [2, 3, 5] {
            let tp = rt
                .run(p, |ctx| {
                    scan(ctx, &corpus, &EngineConfig::for_testing())
                        .terms
                        .as_ref()
                        .clone()
                })
                .results
                .remove(0);
            assert_eq!(t1, tp, "vocabulary differs at P={p}");
        }
    }

    #[test]
    fn forward_arrays_reconstruct_documents() {
        let corpus = tiny_corpus();
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let out = scan(ctx, &corpus, &EngineConfig::for_testing());
            ctx.barrier();
            // Read every rank's docs back through the global arrays and
            // compare with the local structures via an allgather.
            let offsets = out.fwd_offsets.get(ctx, 0..out.total_docs as usize + 1);
            for d in &out.docs {
                let lo = offsets[d.doc_id as usize] as usize;
                let hi = offsets[d.doc_id as usize + 1] as usize;
                let entries = out.fwd_data.get(ctx, lo..hi);
                let mut expect = Vec::new();
                for f in &d.fields {
                    for &(t, c) in &f.counts {
                        expect.push(pack_entry(t, f.field, c));
                    }
                }
                assert_eq!(entries, expect, "doc {}", d.doc_id);
            }
        });
    }

    #[test]
    fn term_lookup_by_string() {
        let corpus = tiny_corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let out = scan(ctx, &corpus, &EngineConfig::for_testing());
            // Every canonical id maps back to its term.
            for (i, t) in out.terms.iter().enumerate().step_by(50) {
                assert_eq!(out.term_id(t), Some(i as TermId));
            }
            assert_eq!(out.term_id("zz-not-a-term-zz"), None);
        });
    }

    #[test]
    fn terms_sorted_and_distinct() {
        let corpus = tiny_corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let out = scan(ctx, &corpus, &EngineConfig::for_testing());
            let terms: Vec<&str> = out.terms.iter().collect();
            for w in terms.windows(2) {
                assert!(w[0] < w[1], "terms must be strictly sorted");
            }
        });
    }

    #[test]
    fn stopwords_absent_from_vocabulary() {
        let corpus = tiny_corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let out = scan(ctx, &corpus, &EngineConfig::for_testing());
            assert_eq!(out.term_id("the"), None);
            assert_eq!(out.term_id("html"), None);
        });
    }

    #[test]
    fn tokens_counted() {
        let corpus = tiny_corpus();
        let rt = Runtime::for_testing();
        let res = rt.run(2, |ctx| {
            let out = scan(ctx, &corpus, &EngineConfig::for_testing());
            let local_sum: u64 = out.docs.iter().map(|d| d.tokens as u64).sum();
            assert_eq!(local_sum, out.tokens_scanned);
            out.tokens_scanned
        });
        assert!(res.results.iter().sum::<u64>() > 1000);
    }
}
