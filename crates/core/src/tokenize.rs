//! Tokenization: field text → terms.
//!
//! §3.2: *"terms are separated by whitespaces (or any delimiters specified
//! during configuration)"*. The tokenizer splits on non-alphanumeric
//! characters, case-folds, and filters by length and a stopword list (the
//! list includes HTML structural words so GOV2-style markup does not
//! pollute the vocabulary).

use intern::{fxhash, TermInterner};

/// English function words plus markup noise. Short (the engine's
/// statistics reject high-df terms anyway); this list mainly keeps the
/// vocabulary map small.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "he",
    "in", "is", "it", "its", "of", "on", "or", "that", "the", "this", "to", "was", "were", "will",
    "with", "not", "they", "their", "we", "you", "all", "can", "her", "his", "our", "than", "then",
    "there", "these", "which", "who", "would", // Markup / web noise:
    "html", "head", "body", "title", "div", "span", "href", "http", "https", "www", "com", "gov",
    "org", "net", "img", "src", "br", "hr", "table", "tr", "td", "ul", "li", "meta", "doc",
    "docno", "dochdr",
];

/// Tokenizer settings.
#[derive(Debug, Clone)]
pub struct TokenizerConfig {
    /// Minimum term length in bytes.
    pub min_len: usize,
    /// Maximum term length in bytes (longer tokens are dropped as junk).
    pub max_len: usize,
    /// Drop terms that contain no alphabetic character (bare numbers).
    pub require_alpha: bool,
    /// Apply the stopword list.
    pub filter_stopwords: bool,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        TokenizerConfig {
            min_len: 3,
            max_len: 40,
            require_alpha: true,
            filter_stopwords: true,
        }
    }
}

/// A configured tokenizer. Construct once per scan; holds the stopword
/// set as an interner so membership tests share the scan hot path's
/// single-hash-pass, allocation-free lookup.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    config: TokenizerConfig,
    stopwords: TermInterner,
}

impl Tokenizer {
    pub fn new(config: TokenizerConfig) -> Self {
        let mut stopwords = TermInterner::new();
        if config.filter_stopwords {
            for w in STOPWORDS {
                stopwords.intern(w);
            }
        }
        Tokenizer { config, stopwords }
    }

    /// Tokenize `text`, invoking `emit` for each accepted term
    /// (lowercased). Returns the number of raw token candidates examined
    /// (for work accounting).
    pub fn tokenize_into(&self, text: &str, mut emit: impl FnMut(&str)) -> u64 {
        let mut candidates = 0u64;
        let mut buf = String::with_capacity(24);
        for raw in text.split(|c: char| !c.is_ascii_alphanumeric()) {
            if raw.is_empty() {
                continue;
            }
            candidates += 1;
            if raw.len() < self.config.min_len || raw.len() > self.config.max_len {
                continue;
            }
            if self.config.require_alpha && !raw.bytes().any(|b| b.is_ascii_alphabetic()) {
                continue;
            }
            buf.clear();
            for b in raw.bytes() {
                buf.push(b.to_ascii_lowercase() as char);
            }
            if self.config.filter_stopwords && self.stopwords.lookup(buf.as_str()).is_some() {
                continue;
            }
            emit(&buf);
        }
        candidates
    }

    /// Collect accepted terms into a vector (test/diagnostic helper).
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.tokenize_into(text, |t| out.push(t.to_string()));
        out
    }

    /// Single-pass tokenize + intern: one traversal per token computes
    /// the lowercased bytes and the alpha test together, then one fxhash
    /// is shared between the stopword probe and the vocabulary probe
    /// (where [`Tokenizer::tokenize_into`] + `TermInterner::intern`
    /// hashes every surviving token twice). `emit` receives the id from
    /// `terms` and whether it was newly interned. Returns the candidate
    /// count, same as `tokenize_into`; the emitted term sequence is
    /// pinned equal to the two-pass path by test.
    pub fn tokenize_intern_into(
        &self,
        text: &str,
        terms: &mut TermInterner,
        mut emit: impl FnMut(u32, bool),
    ) -> u64 {
        let mut candidates = 0u64;
        let mut buf = String::with_capacity(24);
        for raw in text.split(|c: char| !c.is_ascii_alphanumeric()) {
            if raw.is_empty() {
                continue;
            }
            candidates += 1;
            if raw.len() < self.config.min_len || raw.len() > self.config.max_len {
                continue;
            }
            buf.clear();
            let mut has_alpha = false;
            for b in raw.bytes() {
                // Tokens are ASCII alphanumeric by construction, so
                // `| 0x20` lowercases letters and leaves digits
                // (0x30..=0x39, bit 5 already set) unchanged.
                let lower = b | 0x20;
                has_alpha |= lower >= b'a';
                buf.push(lower as char);
            }
            if self.config.require_alpha && !has_alpha {
                continue;
            }
            let hash = fxhash(buf.as_bytes());
            if self.config.filter_stopwords
                && self
                    .stopwords
                    .lookup_bytes_hashed(buf.as_bytes(), hash)
                    .is_some()
            {
                continue;
            }
            let (id, is_new) = terms.intern_hashed(&buf, hash);
            emit(id, is_new);
        }
        candidates
    }
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer::new(TokenizerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_folds_case() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("Cardiomyopathy, HYPERTENSION; renal-failure."),
            vec!["cardiomyopathy", "hypertension", "renal", "failure"]
        );
    }

    #[test]
    fn filters_stopwords_and_short_terms() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("the cat is on a mat with it"),
            vec!["cat", "mat"]
        );
    }

    #[test]
    fn drops_bare_numbers_but_keeps_alphanumerics() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("12345 il6 2024 p53kinase"),
            vec!["il6", "p53kinase"]
        );
    }

    #[test]
    fn markup_words_filtered() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("<html><body>policy statute</body></html>"),
            vec!["policy", "statute"]
        );
    }

    #[test]
    fn respects_disabled_stopwords() {
        let t = Tokenizer::new(TokenizerConfig {
            filter_stopwords: false,
            ..Default::default()
        });
        assert!(t.tokenize("the cat").contains(&"the".to_string()));
    }

    #[test]
    fn overlong_tokens_dropped() {
        let t = Tokenizer::default();
        let long = "x".repeat(50);
        assert!(t.tokenize(&long).is_empty());
    }

    #[test]
    fn candidate_count_includes_rejected() {
        let t = Tokenizer::default();
        let mut n = 0;
        let candidates = t.tokenize_into("the 123 cat", |_| n += 1);
        assert_eq!(candidates, 3);
        assert_eq!(n, 1);
    }

    #[test]
    fn empty_text() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("... --- !!!").is_empty());
    }

    /// The single-pass fold must emit exactly the same term sequence
    /// (and candidate count) as tokenize_into + intern.
    #[test]
    fn fold_path_matches_two_pass_path() {
        let texts = [
            "Cardiomyopathy, HYPERTENSION; renal-failure.",
            "the cat is on a mat with it",
            "12345 il6 2024 p53kinase",
            "<html><body>policy statute</body></html>",
            "naïve café résumé mixed ASCII-only splits",
            "repeat repeat REPEAT rePEAT",
            "",
            "... --- !!!",
            "x1 y2 z3 aa0 0aa 000",
        ];
        for config in [
            TokenizerConfig::default(),
            TokenizerConfig {
                filter_stopwords: false,
                ..Default::default()
            },
            TokenizerConfig {
                require_alpha: false,
                ..Default::default()
            },
        ] {
            let t = Tokenizer::new(config);
            for text in texts {
                let mut two_pass_terms = Vec::new();
                let mut two_pass_interner = TermInterner::new();
                let two_pass_candidates = t.tokenize_into(text, |term| {
                    let (id, is_new) = two_pass_interner.intern(term);
                    two_pass_terms.push((id, is_new));
                });

                let mut fold_terms = Vec::new();
                let mut fold_interner = TermInterner::new();
                let fold_candidates =
                    t.tokenize_intern_into(text, &mut fold_interner, |id, is_new| {
                        fold_terms.push((id, is_new))
                    });

                assert_eq!(two_pass_candidates, fold_candidates, "text={text:?}");
                assert_eq!(two_pass_terms, fold_terms, "text={text:?}");
                assert_eq!(two_pass_interner.len(), fold_interner.len());
                for id in 0..two_pass_interner.len() as u32 {
                    assert_eq!(two_pass_interner.get(id), fold_interner.get(id));
                }
            }
        }
    }
}
