//! Sequential reference execution.
//!
//! The parallel engine running on a single rank *is* a sequential
//! execution of the identical algorithms (all collectives degenerate to
//! copies, the task queue serves only its owner, every global array is
//! one local block). This module packages that as an explicit oracle: the
//! cross-crate tests assert that for every processor count the parallel
//! engine reproduces [`run_sequential`]'s output.

use crate::config::EngineConfig;
use crate::pipeline::{run_engine, EngineOutput};
use corpus::SourceSet;
use perfmodel::CostModel;
use std::sync::Arc;

/// Run the pipeline sequentially (one rank, zero-cost model) and return
/// the master output, which holds the full coordinate set.
pub fn run_sequential(sources: &SourceSet, config: &EngineConfig) -> EngineOutput {
    run_engine(1, Arc::new(CostModel::zero()), sources, config)
        .outputs
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusSpec;

    #[test]
    fn sequential_run_completes_with_full_outputs() {
        let src = CorpusSpec {
            source_bytes: 8 * 1024,
            ..CorpusSpec::trec(64 * 1024, 8)
        }
        .generate();
        let out = run_sequential(&src, &EngineConfig::for_testing());
        let coords = out.coords.expect("sequential master holds coords");
        assert_eq!(coords.len() as u32, out.summary.total_docs);
        assert_eq!(out.assignments.len(), coords.len());
        assert_eq!(out.doc_base, 0);
    }
}
