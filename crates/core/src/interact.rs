//! Analyst interaction: selection and drill-down.
//!
//! The paper's conclusion (§6) names this the next frontier: *"The next
//! frontier of this work is the interactions associated with massive
//! datasets within a visual analytics environment."* The core interaction
//! in a ThemeView is *drill-down*: the analyst lassos a mountain (a region
//! of the 2-D projection), and the system re-analyzes just those documents
//! — a fresh topic space, clustering, and projection over the selection,
//! revealing sub-themes the global view aggregates away.
//!
//! This module provides the selection primitives and the corpus-subsetting
//! operation that feeds the selected documents back through the engine.
//! The re-analysis itself is just [`run_engine`](crate::pipeline::run_engine)
//! on the subset — the whole parallel pipeline is reused.

use crate::DocId;
use corpus::{Source, SourceSet};

/// Documents whose 2-D coordinates fall inside an axis-aligned rectangle.
pub fn select_rect(coords: &[(f64, f64)], min: (f64, f64), max: (f64, f64)) -> Vec<DocId> {
    coords
        .iter()
        .enumerate()
        .filter(|(_, (x, y))| *x >= min.0 && *x <= max.0 && *y >= min.1 && *y <= max.1)
        .map(|(i, _)| i as DocId)
        .collect()
}

/// Documents within `radius` of `center` (the "lasso a mountain" gesture).
pub fn select_radius(coords: &[(f64, f64)], center: (f64, f64), radius: f64) -> Vec<DocId> {
    let r2 = radius * radius;
    coords
        .iter()
        .enumerate()
        .filter(|(_, (x, y))| {
            let dx = x - center.0;
            let dy = y - center.1;
            dx * dx + dy * dy <= r2
        })
        .map(|(i, _)| i as DocId)
        .collect()
}

/// Documents belonging to one cluster.
pub fn select_cluster(assignments: &[u32], cluster: u32) -> Vec<DocId> {
    assignments
        .iter()
        .enumerate()
        .filter(|(_, &a)| a == cluster)
        .map(|(i, _)| i as DocId)
        .collect()
}

/// Build a corpus containing exactly the selected documents (global ids
/// in engine document order), preserving source formats, for drill-down
/// re-analysis.
///
/// `selected` need not be sorted; duplicates are ignored.
pub fn subset_corpus(sources: &SourceSet, selected: &[DocId]) -> SourceSet {
    let want: std::collections::HashSet<DocId> = selected.iter().copied().collect();
    let mut out = Vec::new();
    let mut next_id: DocId = 0;
    for src in &sources.sources {
        let mut data = Vec::new();
        for range in src.record_ranges() {
            if want.contains(&next_id) {
                data.extend_from_slice(&src.data[range]);
                // Re-insert the record separator the framer consumed.
                match src.format {
                    corpus::FormatKind::Medline => {
                        if !data.ends_with(b"\n\n") {
                            data.extend_from_slice(b"\n");
                        }
                    }
                    corpus::FormatKind::TrecWeb | corpus::FormatKind::Message => {
                        if !data.ends_with(b"\n") {
                            data.extend_from_slice(b"\n");
                        }
                    }
                }
            }
            next_id += 1;
        }
        if !data.is_empty() {
            out.push(Source {
                name: format!("{}.selection", src.name),
                data,
                format: src.format,
            });
        }
    }
    SourceSet { sources: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::pipeline::run_engine;
    use corpus::CorpusSpec;
    use perfmodel::CostModel;
    use std::sync::Arc;

    #[test]
    fn rect_and_radius_select_expected_points() {
        let coords = vec![(0.0, 0.0), (1.0, 1.0), (5.0, 5.0), (-1.0, 0.5)];
        assert_eq!(select_rect(&coords, (-0.5, -0.5), (1.5, 1.5)), vec![0, 1]);
        assert_eq!(select_radius(&coords, (0.0, 0.0), 1.5), vec![0, 1, 3]);
        assert!(select_rect(&coords, (10.0, 10.0), (11.0, 11.0)).is_empty());
    }

    #[test]
    fn cluster_selection() {
        let assignments = vec![0, 1, 1, 2, 1];
        assert_eq!(select_cluster(&assignments, 1), vec![1, 2, 4]);
        assert!(select_cluster(&assignments, 9).is_empty());
    }

    #[test]
    fn subset_corpus_keeps_exactly_the_selection() {
        let src = CorpusSpec::pubmed(64 * 1024, 17).generate();
        let total = src.total_records();
        assert!(total > 10);
        let selected: Vec<DocId> = (0..total as DocId).step_by(3).collect();
        let sub = subset_corpus(&src, &selected);
        assert_eq!(sub.total_records(), selected.len());
    }

    #[test]
    fn subset_preserves_record_content() {
        let src = CorpusSpec::trec(64 * 1024, 18).generate();
        let sub = subset_corpus(&src, &[0]);
        assert_eq!(sub.total_records(), 1);
        // The kept record parses identically to the original first record.
        let orig_src = &src.sources[0];
        let orig = orig_src.parse_record(orig_src.record_ranges()[0].clone());
        let kept_src = &sub.sources[0];
        let kept = kept_src.parse_record(kept_src.record_ranges()[0].clone());
        assert_eq!(orig.fields, kept.fields);
    }

    #[test]
    fn drill_down_reanalysis_runs_end_to_end() {
        let src = CorpusSpec::pubmed(192 * 1024, 19).generate();
        let cfg = EngineConfig::for_testing();
        let top = run_engine(2, Arc::new(CostModel::zero()), &src, &cfg);
        let master = top.master();
        let assignments = master.all_assignments.as_ref().unwrap();
        // Drill into the largest cluster.
        let biggest = (0..master.cluster_sizes.len())
            .max_by_key(|&c| master.cluster_sizes[c])
            .unwrap() as u32;
        let selected = select_cluster(assignments, biggest);
        assert!(selected.len() > 5);
        let sub = subset_corpus(&src, &selected);
        let drill = run_engine(2, Arc::new(CostModel::zero()), &sub, &cfg);
        let dm = drill.master();
        assert_eq!(dm.summary.total_docs as usize, selected.len());
        // The sub-analysis has its own themes and coordinates.
        assert_eq!(dm.coords.as_ref().unwrap().len(), selected.len());
    }

    #[test]
    fn empty_selection_empty_corpus() {
        let src = CorpusSpec::pubmed(32 * 1024, 20).generate();
        let sub = subset_corpus(&src, &[]);
        assert_eq!(sub.total_records(), 0);
        assert!(sub.sources.is_empty());
    }
}
