//! Parallel Inverted File Indexing (IFI) and global term statistics
//! (paper §3.3).
//!
//! The inversion follows FAST-INV's two-pass structure, which avoids any
//! sort: a **counting pass** sizes each term's posting range, a prefix sum
//! turns counts into offsets, and a **scatter pass** places each posting
//! into its term's preallocated slots. The scatter pass is where the
//! paper's load-balancing contribution lives:
//!
//! > *"a shared task queue, which is stored in a global array, represents
//! > the collection of loads to be processed by all processes … When a
//! > process finishes computing its loads, it gets the next available load
//! > from the task queue, and atomically increments the task queue."*
//!
//! A *load* is a fixed-size chunk ([`EngineConfig::chunk_docs`]) of one
//! owner's documents (fixed-size chunking, Kruskal & Weiss [19]). A thief
//! processing a remote load fetches the owner's forward-index slice from
//! the global arrays — paying the one-sided communication the paper's
//! locality-aware design makes visible — then scatters postings through a
//! **destination-aggregated exchange**: all of a load's cursor slots are
//! reserved with one batched fetch-add per destination rank
//! ([`ga::GlobalArray::fetch_add_batch`]) and the postings ship with one
//! packed put per destination rank, instead of one atomic `read_inc` per
//! (term, load) pair plus per-run puts. Message count per load falls from
//! O(distinct terms) to O(P) with bit-identical postings (the slots each
//! group receives are a permutation of the scalar schedule's; the
//! deterministic sort in [`InvertedIndex::postings_of`] erases the
//! difference).
//!
//! Three balancing modes are provided for Figure 9 and the ablation
//! benches: [`Balancing::Dynamic`] (the paper), [`Balancing::Static`]
//! (owner-computes baseline), and [`Balancing::MasterWorker`] (the
//! classical centralized alternative §3.3 argues against).

use crate::config::{Balancing, EngineConfig};
use crate::scan::{unpack_entry, ScanOutput};
use crate::{DocId, FieldId, TermId};
use ga::{GlobalArray, GlobalCounter, TaskQueue};
use perfmodel::WorkKind;
use spmd::Ctx;
use std::sync::Arc;

/// One posting of the term-to-(document, field) index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Posting {
    pub doc: DocId,
    pub field: FieldId,
    pub freq: u32,
}

/// Pack a posting (doc 32 | field 8 | freq 24). Public counterpart of
/// [`unpack_posting`] so the snapshot codec can rebuild the engine's
/// packed layout from decoded postings.
pub fn pack_posting(p: Posting) -> u64 {
    (p.doc as u64) | ((p.field as u64) << 32) | ((p.freq.min(0xFF_FFFF) as u64) << 40)
}

/// Unpack a posting from its global-array encoding (doc 32 | field 8 |
/// freq 24). Public so the serving tier can read a snapshot's flattened
/// posting array with the exact decoding the engine wrote.
pub fn unpack_posting(e: u64) -> Posting {
    Posting {
        doc: (e & 0xFFFF_FFFF) as DocId,
        field: ((e >> 32) & 0xFF) as FieldId,
        freq: (e >> 40) as u32,
    }
}

/// Per-rank load-balance observation for Figure 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankLoad {
    /// Loads this rank claimed that it also owned.
    pub own_tasks: u32,
    /// Loads this rank stole from other owners.
    pub stolen_tasks: u32,
    /// Postings this rank scattered.
    pub postings: u64,
    /// Virtual seconds this rank spent in the scatter phase.
    pub seconds: f64,
}

/// The inverted file index plus global term statistics.
pub struct InvertedIndex {
    /// Posting-range offsets per term (`vocab_size + 1`), replicated.
    pub offsets: Arc<Vec<i64>>,
    /// Packed postings in a global array.
    pub postings: GlobalArray<u64>,
    /// Document frequency per term, replicated.
    pub df: Arc<Vec<u32>>,
    /// Collection frequency per term, replicated.
    pub tf: Arc<Vec<u64>>,
    /// Total documents in the collection.
    pub total_docs: u32,
    /// Total accepted tokens in the collection.
    pub total_tokens: u64,
    /// Per-rank scatter-phase statistics (replicated).
    pub load: Vec<RankLoad>,
}

impl InvertedIndex {
    /// Fetch a term's postings, sorted by (doc, field) for determinism
    /// (scatter order depends on scheduling).
    pub fn postings_of(&self, ctx: &Ctx, term: TermId) -> Vec<Posting> {
        let lo = self.offsets[term as usize] as usize;
        let hi = self.offsets[term as usize + 1] as usize;
        let mut out: Vec<Posting> = self
            .postings
            .get(ctx, lo..hi)
            .into_iter()
            .map(unpack_posting)
            .collect();
        out.sort_unstable();
        out
    }
}

/// Documents per load for an owner with `n_docs` documents.
fn n_loads(n_docs: usize, chunk: usize) -> usize {
    n_docs.div_ceil(chunk.max(1))
}

/// Documents per intra-rank chunk for the counting pass. Fixed (never
/// derived from the pool width) so chunk boundaries — and therefore the
/// merged counts — are identical at every `threads_per_rank`.
const COUNT_DOC_CHUNK: usize = 32;

/// Partial counting-pass result for one contiguous chunk of local docs.
struct CountPartial {
    df: Vec<u32>,
    tf: Vec<u64>,
    plen: Vec<u32>,
    entries: u64,
}

/// Virtual seconds rank 0 needs to service one master-worker task request
/// (dequeue, bookkeeping, reply). With `P` workers hammering a single
/// master, a request waits behind `O(P)` others in expectation — the
/// scalability issue §3.3 describes.
const MASTER_SERVICE_S: f64 = 2.5e-5;

/// Run parallel inverted file indexing. Collective.
pub fn invert(ctx: &Ctx, scan: &ScanOutput, cfg: &EngineConfig) -> InvertedIndex {
    let p = ctx.nprocs();
    let vocab_size = scan.vocab_size();

    // ---- Counting pass (local): df, tf, and posting counts per term ----
    // Fanned out over the intra-rank pool: each fixed-size doc chunk
    // accumulates its own partial vectors, which merge in chunk index
    // order on the rank thread. The single InvertPostings charge lands
    // after the merge, so virtual time is invariant in the pool width.
    let partials: Vec<CountPartial> =
        ctx.pool()
            .map_chunks(scan.docs.len(), COUNT_DOC_CHUNK, |chunk| {
                let mut part = CountPartial {
                    df: vec![0u32; vocab_size],
                    tf: vec![0u64; vocab_size],
                    plen: vec![0u32; vocab_size],
                    entries: 0,
                };
                for d in &scan.docs[chunk] {
                    let mut last_term: Option<TermId> = None;
                    for (t, f) in d.distinct_terms() {
                        // distinct_terms is sorted and deduplicated, so each
                        // term counts once toward df.
                        debug_assert!(last_term.is_none_or(|lt| lt < t));
                        last_term = Some(t);
                        part.df[t as usize] += 1;
                        part.tf[t as usize] += f as u64;
                    }
                    for field in &d.fields {
                        for &(t, _) in &field.counts {
                            part.plen[t as usize] += 1;
                            part.entries += 1;
                        }
                    }
                }
                part
            });
    let mut df_local = vec![0u32; vocab_size];
    let mut tf_local = vec![0u64; vocab_size];
    let mut plen_local = vec![0u32; vocab_size];
    let mut local_entries = 0u64;
    for part in partials {
        for (acc, v) in df_local.iter_mut().zip(&part.df) {
            *acc += v;
        }
        for (acc, v) in tf_local.iter_mut().zip(&part.tf) {
            *acc += v;
        }
        for (acc, v) in plen_local.iter_mut().zip(&part.plen) {
            *acc += v;
        }
        local_entries += part.entries;
    }
    ctx.charge(WorkKind::InvertPostings, local_entries);

    // ---- Global term statistics in global arrays (§3.3) ----
    let df_ga = GlobalArray::<u32>::create(ctx, vocab_size);
    let tf_ga = GlobalArray::<u64>::create(ctx, vocab_size);
    let plen_ga = GlobalArray::<u32>::create(ctx, vocab_size);
    if vocab_size > 0 {
        // Destination-aggregated accumulate: one message per rank whose
        // block the vocab-length contribution overlaps.
        df_ga.acc_batch(ctx, &[(0, df_local.as_slice())]);
        tf_ga.acc_batch(ctx, &[(0, tf_local.as_slice())]);
        plen_ga.acc_batch(ctx, &[(0, plen_local.as_slice())]);
    }
    ctx.barrier();
    let df = Arc::new(df_ga.to_vec_collective(ctx));
    let tf = Arc::new(tf_ga.to_vec_collective(ctx));
    let plen = plen_ga.to_vec_collective(ctx);

    // ---- Offsets: prefix sum over posting counts (per-term work) ----
    ctx.charge_vocab(WorkKind::Flops, vocab_size as u64);
    let mut offsets = Vec::with_capacity(vocab_size + 1);
    let mut at: i64 = 0;
    for &c in &plen {
        offsets.push(at);
        at += c as i64;
    }
    offsets.push(at);
    let total_postings = at as usize;
    let offsets = Arc::new(offsets);

    // ---- Scatter pass with load balancing ----
    let postings = GlobalArray::<u64>::create(ctx, total_postings);
    let cursors = GlobalArray::<i64>::create(ctx, vocab_size);

    // Every rank needs every owner's document base to resolve loads.
    let doc_bases: Vec<u32> = ctx.allgather(scan.doc_base, 4);
    let doc_counts: Vec<u32> = ctx.allgather(scan.docs.len() as u32, 4);

    let my_loads = n_loads(scan.docs.len(), cfg.chunk_docs);
    let mut own_tasks = 0u32;
    let mut stolen_tasks = 0u32;
    let mut my_postings = 0u64;
    let scatter_start = ctx.now();

    let mut process_load = |owner: usize, index: usize| {
        let base = doc_bases[owner] as usize;
        let count = doc_counts[owner] as usize;
        let d0 = base + index * cfg.chunk_docs;
        let d1 = (d0 + cfg.chunk_docs).min(base + count);
        if d0 >= d1 {
            return;
        }
        // Fetch the owner's forward-index slice. For own loads this is a
        // local-block access; for stolen loads it is one-sided traffic.
        let offs = scan.fwd_offsets.get(ctx, d0..d1 + 1);
        let lo = offs[0] as usize;
        let hi = offs[d1 - d0] as usize;
        let entries = scan.fwd_data.get(ctx, lo..hi);
        // Group by term, preserving (doc, field) structure. Entries within
        // a document are term-sorted per field; a simple sort by term
        // groups across the load.
        let mut by_term: Vec<(TermId, u64)> = Vec::with_capacity(entries.len());
        let mut entry_at = lo;
        for (di, doc) in (d0..d1).enumerate() {
            let end = offs[di + 1] as usize;
            while entry_at < end {
                let (t, f, c) = unpack_entry(entries[entry_at - lo]);
                by_term.push((
                    t,
                    pack_posting(Posting {
                        doc: doc as DocId,
                        field: f,
                        freq: c,
                    }),
                ));
                entry_at += 1;
            }
        }
        by_term.sort_unstable_by_key(|&(t, _)| t);
        ctx.charge(WorkKind::InvertPostings, by_term.len() as u64);
        my_postings += by_term.len() as u64;
        // Aggregated exchange (ARMCI-style): reserve *all* term groups'
        // cursor slots in one batched fetch-add — block distribution
        // makes each cursor's owner computable locally, so the whole
        // reservation costs one message per destination rank instead of
        // one remote atomic per (term, load) pair. Then ship the packed
        // postings with the destination-aggregated put_batch: every span
        // bound for one rank travels in one message, contiguous or not.
        let mut groups: Vec<(TermId, usize, usize)> = Vec::new(); // (term, start, len)
        let mut reserve: Vec<(usize, i64)> = Vec::new();
        let mut i = 0;
        while i < by_term.len() {
            let t = by_term[i].0;
            let mut j = i + 1;
            while j < by_term.len() && by_term[j].0 == t {
                j += 1;
            }
            groups.push((t, i, j - i));
            reserve.push((t as usize, (j - i) as i64));
            i = j;
        }
        let slots = cursors.fetch_add_batch(ctx, &reserve);
        // by_term is term-sorted, so each group's payload is a contiguous
        // slice of one packed buffer — no per-group allocation.
        let packed: Vec<u64> = by_term.iter().map(|&(_, e)| e).collect();
        let puts: Vec<(usize, &[u64])> = groups
            .iter()
            .zip(&slots)
            .map(|(&(t, at, k), &slot)| {
                ((offsets[t as usize] + slot) as usize, &packed[at..at + k])
            })
            .collect();
        postings.put_batch(ctx, &puts);
    };

    match cfg.balancing {
        Balancing::Dynamic => {
            let q = TaskQueue::create(ctx, my_loads);
            while let Some(task) = q.pop(ctx) {
                if task.owner == ctx.rank() {
                    own_tasks += 1;
                } else {
                    stolen_tasks += 1;
                }
                process_load(task.owner, task.index);
            }
        }
        Balancing::Static => {
            // Owner-computes: no queue, no stealing.
            for index in 0..my_loads {
                own_tasks += 1;
                process_load(ctx.rank(), index);
            }
        }
        Balancing::MasterWorker => {
            // Centralized handout: every claim is an RPC to rank 0, which
            // services requests serially. Claims are still ordered by
            // virtual time (the master serves the first request to
            // arrive on the cluster's clock).
            let gate = spmd::VirtualGate::create(ctx);
            let load_counts: Vec<usize> = ctx.allgather(my_loads, 8);
            let mut bounds = Vec::with_capacity(p + 1);
            let mut acc = 0usize;
            for &c in &load_counts {
                bounds.push(acc);
                acc += c;
            }
            bounds.push(acc);
            let counter = GlobalCounter::create(ctx, 0);
            let claim_wait = MASTER_SERVICE_S * p as f64 * ctx.model().scale.data_scale();
            loop {
                gate.pace(ctx);
                let g = counter.fetch_add(ctx, 1);
                // Queueing at the master: expected wait grows with P, and
                // the nominal run issues data_scale x as many claims.
                ctx.advance(claim_wait);
                if g as usize >= acc {
                    gate.leave(ctx);
                    break;
                }
                let owner = match bounds.binary_search(&(g as usize)) {
                    Ok(mut r) => {
                        while r < p && bounds[r] == bounds[r + 1] {
                            r += 1;
                        }
                        r
                    }
                    Err(ins) => ins - 1,
                };
                let index = g as usize - bounds[owner];
                if owner == ctx.rank() {
                    own_tasks += 1;
                } else {
                    stolen_tasks += 1;
                }
                process_load(owner, index);
            }
        }
    }
    // Per-rank scatter time is measured *before* the closing barrier so
    // Figure 9 shows the genuine imbalance rather than the synced clock.
    let scatter_seconds = ctx.now() - scatter_start;
    ctx.barrier();

    let my_load = RankLoad {
        own_tasks,
        stolen_tasks,
        postings: my_postings,
        seconds: scatter_seconds,
    };
    let load = ctx.allgather(my_load, std::mem::size_of::<RankLoad>() as u64);

    let total_tokens = ctx.allreduce_scalar_u64(scan.tokens_scanned, spmd::ReduceOp::Sum);

    InvertedIndex {
        offsets,
        postings,
        df,
        tf,
        total_docs: scan.total_docs,
        total_tokens,
        load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use corpus::CorpusSpec;
    use spmd::Runtime;

    fn corpus() -> corpus::SourceSet {
        CorpusSpec {
            source_bytes: 8 * 1024,
            ..CorpusSpec::pubmed(48 * 1024, 123)
        }
        .generate()
    }

    fn run_invert(p: usize, balancing: Balancing) -> (Vec<u32>, Vec<u64>, Vec<Vec<Posting>>) {
        let src = corpus();
        let rt = Runtime::for_testing();
        let mut res = rt.run(p, |ctx| {
            let cfg = EngineConfig {
                balancing,
                chunk_docs: 8,
                ..EngineConfig::for_testing()
            };
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            ctx.barrier();
            // Fetch postings for a sample of terms for cross-P comparison.
            let sample: Vec<Vec<Posting>> = (0..s.vocab_size())
                .step_by(37)
                .map(|t| idx.postings_of(ctx, t as TermId))
                .collect();
            (idx.df.as_ref().clone(), idx.tf.as_ref().clone(), sample)
        });
        res.results.remove(0)
    }

    #[test]
    fn inversion_matches_across_p_and_modes() {
        let (df1, tf1, post1) = run_invert(1, Balancing::Dynamic);
        for (p, mode) in [
            (3, Balancing::Dynamic),
            (4, Balancing::Static),
            (2, Balancing::MasterWorker),
        ] {
            let (df, tf, post) = run_invert(p, mode);
            assert_eq!(df, df1, "df differs at P={p} {mode:?}");
            assert_eq!(tf, tf1, "tf differs at P={p} {mode:?}");
            assert_eq!(post, post1, "postings differ at P={p} {mode:?}");
        }
    }

    #[test]
    fn postings_consistent_with_forward_index() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            ctx.barrier();
            // Every local document's forward entries must appear in the
            // inverted postings of the corresponding term.
            for d in s.docs.iter().take(5) {
                for f in &d.fields {
                    for &(t, c) in &f.counts {
                        let posts = idx.postings_of(ctx, t);
                        assert!(
                            posts.contains(&Posting {
                                doc: d.doc_id,
                                field: f.field,
                                freq: c
                            }),
                            "missing posting term={t} doc={}",
                            d.doc_id
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn df_counts_distinct_documents() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            ctx.barrier();
            for t in (0..s.vocab_size()).step_by(53) {
                let posts = idx.postings_of(ctx, t as TermId);
                let mut docs: Vec<DocId> = posts.iter().map(|p| p.doc).collect();
                docs.dedup();
                assert_eq!(docs.len() as u32, idx.df[t], "df mismatch for term {t}");
            }
        });
    }

    #[test]
    fn tf_equals_sum_of_freqs() {
        let src = corpus();
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            ctx.barrier();
            for t in (0..s.vocab_size()).step_by(41) {
                let posts = idx.postings_of(ctx, t as TermId);
                let sum: u64 = posts.iter().map(|p| p.freq as u64).sum();
                assert_eq!(sum, idx.tf[t], "tf mismatch for term {t}");
            }
        });
    }

    #[test]
    fn every_load_processed_exactly_once() {
        let src = corpus();
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            let cfg = EngineConfig {
                chunk_docs: 4,
                ..EngineConfig::for_testing()
            };
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let expected_loads: usize = {
                let counts: Vec<u32> = ctx.allgather(s.docs.len() as u32, 4);
                counts.iter().map(|&c| n_loads(c as usize, 4)).sum()
            };
            let done: u32 = idx.load.iter().map(|l| l.own_tasks + l.stolen_tasks).sum();
            (expected_loads as u32, done)
        });
        for (expect, done) in res.results {
            assert_eq!(expect, done);
        }
    }

    #[test]
    fn static_mode_never_steals() {
        let src = corpus();
        let rt = Runtime::for_testing();
        let res = rt.run(3, |ctx| {
            let cfg = EngineConfig {
                balancing: Balancing::Static,
                ..EngineConfig::for_testing()
            };
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            idx.load.iter().map(|l| l.stolen_tasks).sum::<u32>()
        });
        assert!(res.results.iter().all(|&s| s == 0));
    }

    #[test]
    fn total_tokens_globally_agreed() {
        let src = corpus();
        let rt = Runtime::for_testing();
        let res = rt.run(3, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            invert(ctx, &s, &cfg).total_tokens
        });
        assert!(res.results.iter().all(|&t| t == res.results[0] && t > 0));
    }

    #[test]
    fn n_loads_rounding() {
        assert_eq!(n_loads(0, 8), 0);
        assert_eq!(n_loads(1, 8), 1);
        assert_eq!(n_loads(8, 8), 1);
        assert_eq!(n_loads(9, 8), 2);
    }

    #[test]
    fn posting_pack_roundtrip() {
        // Every field at its extremes and in the middle survives the
        // 32|8|24 packing exactly (freq within the 24-bit budget).
        for doc in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            for field in [0u8, 1, 7, u8::MAX] {
                for freq in [0u32, 1, 1000, 0xFF_FFFE, 0xFF_FFFF] {
                    let p = Posting { doc, field, freq };
                    assert_eq!(unpack_posting(pack_posting(p)), p, "{p:?}");
                }
            }
        }
    }

    #[test]
    fn posting_freq_saturates_at_24_bits() {
        // Frequencies beyond the 24-bit budget clamp to 0xFF_FFFF instead
        // of corrupting the neighbouring fields.
        for freq in [0x100_0000u32, 0x100_0001, u32::MAX] {
            let p = Posting {
                doc: 12345,
                field: 3,
                freq,
            };
            let back = unpack_posting(pack_posting(p));
            assert_eq!(back.freq, 0xFF_FFFF, "freq {freq:#x} must saturate");
            assert_eq!(back.doc, p.doc, "doc must survive saturation");
            assert_eq!(back.field, p.field, "field must survive saturation");
        }
    }
}
