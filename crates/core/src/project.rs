//! Projection from M-space to 2-D (paper §3.5).
//!
//! *"Our approach for dimensionality reduction was to use the cluster
//! centroids and employ principal component analysis (PCA), where we can
//! use the first two principal components to project the M space onto
//! those principal components. Each process computes the transformation
//! matrix using the centroids of the clusters. Finally, using the
//! transformation matrix, each process computes the 2-d or 3-d projection
//! coordinate for its document set. The master process (process with
//! rank=0) collects all the coordinates and writes them to a file."*
//!
//! Fitting PCA on the k centroids instead of all documents keeps the
//! covariance computation `O(k·M²)` and identical on every rank (the
//! centroids are replicated after the k-means Allreduce), so no extra
//! communication is needed until the final coordinate gather.

use crate::cluster::Clustering;
use crate::linalg::{dot, jacobi_eigen};
use crate::signature::Signatures;
use perfmodel::WorkKind;
use spmd::Ctx;

/// The projection outcome (2-D by default; 3-D per §3.5's "2-d or 3-d").
#[derive(Debug, Clone)]
pub struct Projection {
    /// 2-D coordinates of this rank's documents (the first two principal
    /// components — what the ThemeView terrain consumes).
    pub local_coords: Vec<(f64, f64)>,
    /// All documents' 2-D coordinates in global document order — `Some`
    /// on rank 0 only (the paper's master-writes-file step).
    pub all_coords: Option<Vec<(f64, f64)>>,
    /// Full `dims`-dimensional coordinates, row-major `n_local × dims`.
    pub local_coords_nd: Vec<f64>,
    /// Number of projected dimensions (2 or 3).
    pub dims: usize,
    /// The principal axes (each of length M), strongest first.
    pub axes: Vec<Vec<f64>>,
    /// Eigenvalue share captured by the projected axes.
    pub variance_explained: f64,
}

/// Compute the PCA projection onto the first two principal components.
/// Collective.
pub fn project(ctx: &Ctx, sigs: &Signatures, clustering: &Clustering) -> Projection {
    project_nd(ctx, sigs, clustering, 2)
}

/// Compute the PCA projection onto `dims` ∈ {2, 3} principal components.
/// Collective.
pub fn project_nd(
    ctx: &Ctx,
    sigs: &Signatures,
    clustering: &Clustering,
    dims: usize,
) -> Projection {
    assert!((2..=3).contains(&dims), "projection is 2-D or 3-D (§3.5)");
    let m = clustering.m;
    let k = clustering.pca_k;
    let centroid = |c: usize| -> &[f64] { &clustering.pca_centroids[c * m..(c + 1) * m] };

    // ---- Mean-center the centroids ----
    let mut mean = vec![0.0f64; m];
    for c in 0..k {
        for (s, &x) in mean.iter_mut().zip(centroid(c)) {
            *s += x;
        }
    }
    for s in &mut mean {
        *s /= k.max(1) as f64;
    }

    // ---- Covariance of centroids: M×M ----
    ctx.charge(WorkKind::Flops, (k * m * m) as u64);
    let mut cov = vec![0.0f64; m * m];
    for c in 0..k {
        let cen = centroid(c);
        for i in 0..m {
            let di = cen[i] - mean[i];
            for j in i..m {
                let dj = cen[j] - mean[j];
                cov[i * m + j] += di * dj;
            }
        }
    }
    let denom = (k.max(2) - 1) as f64;
    for i in 0..m {
        for j in i..m {
            let v = cov[i * m + j] / denom;
            cov[i * m + j] = v;
            cov[j * m + i] = v;
        }
    }

    // ---- Top principal axes via Jacobi ----
    ctx.charge(WorkKind::Flops, (m * m * m / 2).max(1) as u64);
    let eig = jacobi_eigen(&cov, m, 60);
    let axis = |i: usize| -> Vec<f64> {
        eig.vectors.get(i).cloned().unwrap_or_else(|| {
            // Degenerate covariance (fewer informative dimensions than
            // requested): fall back to a coordinate axis.
            let mut v = vec![0.0; m];
            if i < m {
                v[i] = 1.0;
            }
            v
        })
    };
    let axes: Vec<Vec<f64>> = (0..dims).map(axis).collect();
    let total_var: f64 = eig.values.iter().filter(|v| **v > 0.0).sum();
    let captured: f64 = eig.values.iter().take(dims).filter(|v| **v > 0.0).sum();
    let variance_explained = if total_var > 0.0 {
        captured / total_var
    } else {
        0.0
    };

    // ---- Project local documents ----
    let n_local = sigs.n_local();
    ctx.charge(WorkKind::Flops, (n_local * m * 2 * dims) as u64);
    let mut local_coords = Vec::with_capacity(n_local);
    let mut local_coords_nd = Vec::with_capacity(n_local * dims);
    let mut centered = vec![0.0f64; m];
    for i in 0..n_local {
        let sig = sigs.row(i);
        for (c, (&s, &mu)) in centered.iter_mut().zip(sig.iter().zip(&mean)) {
            *c = s - mu;
        }
        for axis in &axes {
            local_coords_nd.push(dot(&centered, axis));
        }
        let base = local_coords_nd.len() - dims;
        local_coords.push((local_coords_nd[base], local_coords_nd[base + 1]));
    }

    // ---- Master collects all coordinates (rank 0) ----
    let bytes = (n_local * 16) as u64;
    let gathered = ctx.gather_data(0, local_coords.clone(), bytes);
    let all_coords = gathered.map(|parts| parts.concat());

    Projection {
        local_coords,
        all_coords,
        local_coords_nd,
        dims,
        axes,
        variance_explained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assoc;
    use crate::cluster::kmeans;
    use crate::config::EngineConfig;
    use crate::index::invert;
    use crate::scan::scan;
    use crate::signature::generate;
    use crate::topicality::select_topics;
    use corpus::CorpusSpec;
    use spmd::Runtime;

    fn corpus() -> corpus::SourceSet {
        CorpusSpec {
            source_bytes: 8 * 1024,
            ..CorpusSpec::pubmed(128 * 1024, 5)
        }
        .generate()
    }

    fn run_projection(p: usize) -> (Vec<(f64, f64)>, Vec<Vec<f64>>, f64) {
        let src = corpus();
        let rt = Runtime::for_testing();
        let res = rt.run(p, |ctx| {
            let cfg = EngineConfig::for_testing();
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let topics = select_topics(ctx, &idx, &cfg, cfg.n_major, cfg.m_dims());
            let am = assoc::build(ctx, &s, &idx, &topics);
            let sigs = generate(ctx, &s, &am);
            let cl = kmeans(ctx, &sigs, s.doc_base, s.total_docs, 6, 20, 1e-4);
            let proj = project(ctx, &sigs, &cl);
            (proj.all_coords, proj.axes, proj.variance_explained)
        });
        let (coords, axes, var) = res.results.into_iter().next().unwrap();
        (coords.expect("rank 0 has all coords"), axes, var)
    }

    #[test]
    fn rank0_gathers_all_coordinates() {
        let (coords, _, _) = run_projection(3);
        assert!(coords.len() > 40);
    }

    #[test]
    fn projection_identical_across_p() {
        let (c1, a1, v1) = run_projection(1);
        for p in [2, 4] {
            let (c, a, v) = run_projection(p);
            assert_eq!(c.len(), c1.len());
            for (i, ((x, y), (x1, y1))) in c.iter().zip(&c1).enumerate() {
                assert!(
                    (x - x1).abs() < 1e-7 && (y - y1).abs() < 1e-7,
                    "P={p} doc {i}: ({x},{y}) vs ({x1},{y1})"
                );
            }
            for axis in 0..2 {
                for (x, y) in a[axis].iter().zip(&a1[axis]) {
                    assert!((x - y).abs() < 1e-7);
                }
            }
            assert!((v - v1).abs() < 1e-9);
        }
    }

    #[test]
    fn axes_are_orthonormal() {
        let (_, axes, _) = run_projection(2);
        assert!((dot(&axes[0], &axes[0]) - 1.0).abs() < 1e-9);
        assert!((dot(&axes[1], &axes[1]) - 1.0).abs() < 1e-9);
        assert!(dot(&axes[0], &axes[1]).abs() < 1e-9);
    }

    #[test]
    fn variance_explained_in_unit_range() {
        let (_, _, v) = run_projection(2);
        assert!((0.0..=1.0 + 1e-12).contains(&v), "variance {v}");
        // PCA on k centroids with clear theme structure should capture a
        // non-trivial share in two axes.
        assert!(v > 0.2, "suspiciously low variance explained: {v}");
    }

    #[test]
    fn coordinates_spread_out() {
        // Documents from different themes must not all collapse to one
        // point.
        let (coords, _, _) = run_projection(2);
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, _) in &coords {
            min_x = min_x.min(*x);
            max_x = max_x.max(*x);
        }
        assert!(
            max_x - min_x > 1e-3,
            "projection collapsed: [{min_x}, {max_x}]"
        );
    }
}
