//! Renderers: ASCII shading, PGM image, CSV grid.

use crate::peaks::Peak;
use crate::terrain::Terrain;

/// Shading ramp from valley to summit.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Render the terrain as shaded ASCII art, optionally marking peaks with
/// numbered labels (`1`–`9`, then `+`).
pub fn render_ascii(terrain: &Terrain, peaks: &[Peak]) -> String {
    let mut out = String::with_capacity((terrain.width + 1) * terrain.height);
    let mut marks = vec![None::<char>; terrain.width * terrain.height];
    for (i, p) in peaks.iter().enumerate() {
        let c = if i < 9 { (b'1' + i as u8) as char } else { '+' };
        marks[p.y * terrain.width + p.x] = Some(c);
    }
    for y in (0..terrain.height).rev() {
        for x in 0..terrain.width {
            if let Some(c) = marks[y * terrain.width + x] {
                out.push(c);
                continue;
            }
            let h = terrain.at(x, y);
            let idx = ((h * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Render as a binary-less ASCII PGM (P2) image, 0–255 gray levels.
pub fn render_pgm(terrain: &Terrain) -> String {
    let mut out = format!("P2\n{} {}\n255\n", terrain.width, terrain.height);
    for y in (0..terrain.height).rev() {
        let row: Vec<String> = (0..terrain.width)
            .map(|x| ((terrain.at(x, y) * 255.0).round() as u32).to_string())
            .collect();
        out.push_str(&row.join(" "));
        out.push('\n');
    }
    out
}

/// Render the raw grid as CSV (`x,y,height` per cell).
pub fn render_csv(terrain: &Terrain) -> String {
    let mut out = String::from("x,y,height\n");
    for y in 0..terrain.height {
        for x in 0..terrain.width {
            out.push_str(&format!("{x},{y},{:.6}\n", terrain.at(x, y)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terrain() -> Terrain {
        let points: Vec<(f64, f64)> = (0..30).map(|i| ((i % 5) as f64, (i % 3) as f64)).collect();
        Terrain::build(&points, 12, 8, None)
    }

    #[test]
    fn ascii_dimensions() {
        let t = terrain();
        let art = render_ascii(&t, &[]);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.chars().count() == 12));
    }

    #[test]
    fn ascii_marks_peaks() {
        let t = terrain();
        let peaks = t.peaks(3, 0.1, 2);
        assert!(!peaks.is_empty());
        let art = render_ascii(&t, &peaks);
        assert!(art.contains('1'), "peak marker missing:\n{art}");
    }

    #[test]
    fn pgm_header_and_range() {
        let t = terrain();
        let pgm = render_pgm(&t);
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("12 8"));
        assert_eq!(lines.next(), Some("255"));
        for line in lines {
            for v in line.split_whitespace() {
                let n: u32 = v.parse().unwrap();
                assert!(n <= 255);
            }
        }
    }

    #[test]
    fn csv_has_all_cells() {
        let t = terrain();
        let csv = render_csv(&t);
        assert_eq!(csv.lines().count(), 1 + 12 * 8);
        assert!(csv.starts_with("x,y,height\n"));
    }
}
