//! Peak detection: the theme "mountains" of a terrain.

use crate::terrain::Terrain;

/// A detected theme peak.
#[derive(Debug, Clone, PartialEq)]
pub struct Peak {
    /// Grid cell of the summit.
    pub x: usize,
    pub y: usize,
    /// Normalized height in `[0, 1]`.
    pub height: f64,
    /// Data-space coordinates of the summit.
    pub at: (f64, f64),
}

impl Terrain {
    /// Find up to `max_peaks` local maxima at least `min_height` tall and
    /// separated by at least `min_separation` grid cells (Chebyshev),
    /// tallest first.
    pub fn peaks(&self, max_peaks: usize, min_height: f64, min_separation: usize) -> Vec<Peak> {
        let mut candidates: Vec<Peak> = Vec::new();
        for y in 0..self.height {
            for x in 0..self.width {
                let h = self.at(x, y);
                if h < min_height {
                    continue;
                }
                // Strict local maximum over the 8-neighborhood (ties break
                // toward the lexicographically first cell so plateaus
                // yield one peak).
                let mut is_max = true;
                'nb: for dy in -1isize..=1 {
                    for dx in -1isize..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let nx = x as isize + dx;
                        let ny = y as isize + dy;
                        if nx < 0
                            || ny < 0
                            || nx >= self.width as isize
                            || ny >= self.height as isize
                        {
                            continue;
                        }
                        let nh = self.at(nx as usize, ny as usize);
                        let earlier = (ny as usize, nx as usize) < (y, x);
                        if nh > h || (nh == h && earlier) {
                            is_max = false;
                            break 'nb;
                        }
                    }
                }
                if is_max {
                    let (min_x, min_y, max_x, max_y) = self.bounds;
                    let fx = min_x + (x as f64 + 0.5) / self.width as f64 * (max_x - min_x);
                    let fy = min_y + (y as f64 + 0.5) / self.height as f64 * (max_y - min_y);
                    candidates.push(Peak {
                        x,
                        y,
                        height: h,
                        at: (fx, fy),
                    });
                }
            }
        }
        candidates.sort_by(|a, b| {
            b.height
                .partial_cmp(&a.height)
                .unwrap()
                .then((a.y, a.x).cmp(&(b.y, b.x)))
        });
        // Non-maximum suppression by separation.
        let mut selected: Vec<Peak> = Vec::new();
        for c in candidates {
            let far_enough = selected.iter().all(|s| {
                let dx = s.x.abs_diff(c.x);
                let dy = s.y.abs_diff(c.y);
                dx.max(dy) >= min_separation
            });
            if far_enough {
                selected.push(c);
                if selected.len() == max_peaks {
                    break;
                }
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cluster_terrain() -> Terrain {
        let mut points = Vec::new();
        for i in 0..40 {
            let j = (i % 6) as f64 * 0.02;
            points.push((0.0 + j, 0.0));
            points.push((10.0 + j, 10.0));
        }
        Terrain::build(&points, 32, 32, Some(0.8))
    }

    #[test]
    fn finds_both_mountains() {
        let t = two_cluster_terrain();
        let peaks = t.peaks(10, 0.3, 3);
        assert_eq!(peaks.len(), 2, "{peaks:?}");
        // Tallest first.
        assert!(peaks[0].height >= peaks[1].height);
        // Near the true cluster centers in data space.
        let near =
            |p: &Peak, cx: f64, cy: f64| (p.at.0 - cx).abs() < 1.5 && (p.at.1 - cy).abs() < 1.5;
        assert!(peaks.iter().any(|p| near(p, 0.05, 0.0)));
        assert!(peaks.iter().any(|p| near(p, 10.05, 10.0)));
    }

    #[test]
    fn max_peaks_respected() {
        let t = two_cluster_terrain();
        let peaks = t.peaks(1, 0.1, 1);
        assert_eq!(peaks.len(), 1);
    }

    #[test]
    fn min_height_filters() {
        let t = two_cluster_terrain();
        let peaks = t.peaks(10, 1.01, 1);
        assert!(peaks.is_empty());
    }

    #[test]
    fn flat_terrain_no_peaks() {
        let t = Terrain::build(&[], 8, 8, None);
        assert!(t.peaks(5, 0.1, 1).is_empty());
    }

    #[test]
    fn separation_suppresses_shoulders() {
        // One big cluster: with large separation only one peak survives.
        let points: Vec<(f64, f64)> = (0..60)
            .map(|i| ((i % 8) as f64 * 0.1, (i % 6) as f64 * 0.1))
            .collect();
        let t = Terrain::build(&points, 24, 24, Some(0.15));
        let peaks = t.peaks(10, 0.05, 24);
        assert_eq!(peaks.len(), 1, "{peaks:?}");
    }
}
