//! The Galaxy view: documents as a cluster-colored scatter.
//!
//! IN-SPIRE ships two signature visualizations over the same projected
//! coordinates: the ThemeView terrain (aggregate density) and the Galaxy
//! (every document an individual star, colored by cluster, with cluster
//! centroids as labeled hubs). The Galaxy is the view analysts use to
//! select and drill into individual documents.

/// ASCII Galaxy: documents as digits/letters keyed by cluster (cluster 0
/// → 'a', 10+ → 'A'…, 36+ → '*'), centroid hubs as '@'.
pub fn render_galaxy_ascii(
    coords: &[(f64, f64)],
    assignments: &[u32],
    width: usize,
    height: usize,
) -> String {
    assert_eq!(coords.len(), assignments.len(), "one assignment per point");
    assert!(width > 0 && height > 0);
    let mut grid = vec![b' '; width * height];
    if coords.is_empty() {
        return to_lines(&grid, width, height);
    }
    let (min_x, min_y, max_x, max_y) = bounds(coords);
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let glyph = |c: u32| -> u8 {
        match c {
            0..=9 => b'a' + c as u8,
            10..=35 => b'A' + (c - 10) as u8,
            _ => b'*',
        }
    };
    for (&(x, y), &c) in coords.iter().zip(assignments) {
        let gx = (((x - min_x) / span_x) * (width - 1) as f64).round() as usize;
        let gy = (((y - min_y) / span_y) * (height - 1) as f64).round() as usize;
        grid[gy.min(height - 1) * width + gx.min(width - 1)] = glyph(c);
    }
    // Centroid hubs.
    let n_clusters = assignments
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    for c in 0..n_clusters {
        let members: Vec<(f64, f64)> = coords
            .iter()
            .zip(assignments)
            .filter(|(_, &a)| a as usize == c)
            .map(|(&p, _)| p)
            .collect();
        if members.is_empty() {
            continue;
        }
        let cx = members.iter().map(|p| p.0).sum::<f64>() / members.len() as f64;
        let cy = members.iter().map(|p| p.1).sum::<f64>() / members.len() as f64;
        let gx = (((cx - min_x) / span_x) * (width - 1) as f64).round() as usize;
        let gy = (((cy - min_y) / span_y) * (height - 1) as f64).round() as usize;
        grid[gy.min(height - 1) * width + gx.min(width - 1)] = b'@';
    }
    to_lines(&grid, width, height)
}

/// SVG Galaxy: documents as cluster-colored dots, centroids as labeled
/// hubs. `labels[c]` names cluster `c` (optional).
pub fn render_galaxy_svg(
    coords: &[(f64, f64)],
    assignments: &[u32],
    labels: &[String],
    width_px: u32,
) -> String {
    assert_eq!(coords.len(), assignments.len(), "one assignment per point");
    let w = width_px as f64;
    if coords.is_empty() {
        return format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{w:.0}\" \
             viewBox=\"0 0 {w:.0} {w:.0}\"><rect width=\"{w:.0}\" height=\"{w:.0}\" \
             fill=\"#0b1020\"/></svg>\n"
        );
    }
    let (min_x, min_y, max_x, max_y) = bounds(coords);
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let h = w * span_y / span_x;
    let sx = |x: f64| (x - min_x) / span_x * (w - 20.0) + 10.0;
    let sy = |y: f64| h - ((y - min_y) / span_y * (h - 20.0) + 10.0);

    let mut svg = String::with_capacity(coords.len() * 64);
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{h:.0}\" \
         viewBox=\"0 0 {w:.0} {h:.0}\">\n<rect width=\"{w:.0}\" height=\"{h:.0}\" fill=\"#0b1020\"/>\n"
    ));
    for (&(x, y), &c) in coords.iter().zip(assignments) {
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"1.8\" fill=\"{}\" fill-opacity=\"0.8\"/>\n",
            sx(x),
            sy(y),
            cluster_color(c)
        ));
    }
    // Centroid hubs + labels.
    let n_clusters = assignments
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    for c in 0..n_clusters {
        let members: Vec<(f64, f64)> = coords
            .iter()
            .zip(assignments)
            .filter(|(_, &a)| a as usize == c)
            .map(|(&p, _)| p)
            .collect();
        if members.is_empty() {
            continue;
        }
        let cx = members.iter().map(|p| p.0).sum::<f64>() / members.len() as f64;
        let cy = members.iter().map(|p| p.1).sum::<f64>() / members.len() as f64;
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"5\" fill=\"none\" stroke=\"{}\" stroke-width=\"1.5\"/>\n",
            sx(cx),
            sy(cy),
            cluster_color(c as u32)
        ));
        if let Some(label) = labels.get(c) {
            svg.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" font-family=\"sans-serif\" font-size=\"11\" \
                 fill=\"#e8e8f0\">{}</text>\n",
                sx(cx) + 7.0,
                sy(cy) + 4.0,
                label.replace('&', "&amp;").replace('<', "&lt;")
            ));
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// A well-spread categorical palette (golden-angle hue stepping).
pub fn cluster_color(c: u32) -> String {
    let hue = (c as f64 * 137.508) % 360.0;
    let (h, s, l): (f64, f64, f64) = (hue, 0.65, 0.62);
    // HSL → RGB.
    let c_ = (1.0 - (2.0 * l - 1.0).abs()) * s;
    let x = c_ * (1.0 - ((h / 60.0) % 2.0 - 1.0).abs());
    let m = l - c_ / 2.0;
    let (r, g, b) = match (h / 60.0) as u32 {
        0 => (c_, x, 0.0),
        1 => (x, c_, 0.0),
        2 => (0.0, c_, x),
        3 => (0.0, x, c_),
        4 => (x, 0.0, c_),
        _ => (c_, 0.0, x),
    };
    format!(
        "rgb({},{},{})",
        ((r + m) * 255.0) as u8,
        ((g + m) * 255.0) as u8,
        ((b + m) * 255.0) as u8
    )
}

fn bounds(coords: &[(f64, f64)]) -> (f64, f64, f64, f64) {
    let mut b = (
        f64::INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in coords {
        b.0 = b.0.min(x);
        b.1 = b.1.min(y);
        b.2 = b.2.max(x);
        b.3 = b.3.max(y);
    }
    b
}

fn to_lines(grid: &[u8], width: usize, height: usize) -> String {
    let mut out = String::with_capacity((width + 1) * height);
    for y in (0..height).rev() {
        out.push_str(std::str::from_utf8(&grid[y * width..(y + 1) * width]).unwrap());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<(f64, f64)>, Vec<u32>) {
        let mut coords = Vec::new();
        let mut assignments = Vec::new();
        for i in 0..30 {
            let j = 0.05 * (i % 5) as f64;
            coords.push((0.0 + j, 0.0 + j));
            assignments.push(0);
            coords.push((10.0 + j, 10.0 - j));
            assignments.push(1);
        }
        (coords, assignments)
    }

    #[test]
    fn ascii_galaxy_separates_clusters() {
        let (coords, assignments) = sample();
        let art = render_galaxy_ascii(&coords, &assignments, 40, 20);
        assert_eq!(art.lines().count(), 20);
        assert!(art.contains('a'));
        assert!(art.contains('b'));
        assert!(art.contains('@'));
        // Cluster a is bottom-left, b top-right: first rendered line (top)
        // holds 'b's, last line holds 'a's.
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].contains('b') || lines[1].contains('b'));
        assert!(lines[19].contains('a') || lines[18].contains('a'));
    }

    #[test]
    fn svg_galaxy_has_a_dot_per_document() {
        let (coords, assignments) = sample();
        let svg = render_galaxy_svg(&coords, &assignments, &["alpha".into(), "beta".into()], 400);
        // 60 docs + 2 hub rings.
        assert_eq!(svg.matches("<circle").count(), 62);
        assert!(svg.contains(">alpha</text>"));
        assert!(svg.contains(">beta</text>"));
    }

    #[test]
    fn colors_are_distinct_for_small_palettes() {
        let colors: Vec<String> = (0..12).map(cluster_color).collect();
        let set: std::collections::HashSet<&String> = colors.iter().collect();
        assert_eq!(set.len(), 12, "{colors:?}");
    }

    #[test]
    fn empty_galaxy_renders() {
        let art = render_galaxy_ascii(&[], &[], 10, 5);
        assert_eq!(art.lines().count(), 5);
        let svg = render_galaxy_svg(&[], &[], &[], 300);
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    #[should_panic(expected = "one assignment per point")]
    fn mismatched_lengths_rejected() {
        render_galaxy_ascii(&[(0.0, 0.0)], &[], 4, 4);
    }

    #[test]
    fn many_clusters_fall_back_to_star() {
        // Three collinear points in one high-numbered cluster: the hub
        // overwrites the middle cell, the endpoints keep the '*' glyph.
        let coords = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)];
        let assignments = vec![40, 40, 40];
        let art = render_galaxy_ascii(&coords, &assignments, 9, 5);
        assert!(art.contains('*'), "{art}");
        assert!(art.contains('@'), "{art}");
    }
}
