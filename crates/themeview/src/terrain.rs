//! Kernel-density terrain from 2-D points.

/// A density landscape over a regular grid.
#[derive(Debug, Clone)]
pub struct Terrain {
    /// Grid heights, row-major, `height[y * width + x]`, normalized to
    /// `[0, 1]` (0 = deepest valley, 1 = highest peak).
    pub heights: Vec<f64>,
    pub width: usize,
    pub height: usize,
    /// Data-space bounds: (min_x, min_y, max_x, max_y).
    pub bounds: (f64, f64, f64, f64),
}

impl Terrain {
    /// Build a `width × height` terrain from points with a Gaussian
    /// kernel. `bandwidth` is in data units; pass `None` for Scott's rule.
    ///
    /// Degenerate inputs (no points, zero extent) produce a flat terrain.
    pub fn build(
        points: &[(f64, f64)],
        width: usize,
        height: usize,
        bandwidth: Option<f64>,
    ) -> Terrain {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        let mut heights = vec![0.0f64; width * height];
        if points.is_empty() {
            return Terrain {
                heights,
                width,
                height,
                bounds: (0.0, 0.0, 1.0, 1.0),
            };
        }

        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &(x, y) in points {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        // Pad bounds a little so edge points get full kernels.
        let span_x = (max_x - min_x).max(1e-9);
        let span_y = (max_y - min_y).max(1e-9);
        let pad_x = span_x * 0.08;
        let pad_y = span_y * 0.08;
        min_x -= pad_x;
        max_x += pad_x;
        min_y -= pad_y;
        max_y += pad_y;

        let bw = bandwidth.unwrap_or_else(|| {
            // Scott's rule (2-D): n^(-1/6) times the data spread.
            let n = points.len() as f64;
            let spread = (span_x + span_y) / 2.0;
            (spread * n.powf(-1.0 / 6.0) * 0.5).max(1e-9)
        });
        let inv2bw2 = 1.0 / (2.0 * bw * bw);

        let cell_x = (max_x - min_x) / width as f64;
        let cell_y = (max_y - min_y) / height as f64;
        // Kernel support: 3 bandwidths.
        let rx = ((3.0 * bw / cell_x).ceil() as isize).max(1);
        let ry = ((3.0 * bw / cell_y).ceil() as isize).max(1);

        for &(px, py) in points {
            let gx = ((px - min_x) / cell_x) as isize;
            let gy = ((py - min_y) / cell_y) as isize;
            for dy in -ry..=ry {
                let y = gy + dy;
                if y < 0 || y >= height as isize {
                    continue;
                }
                let cy = min_y + (y as f64 + 0.5) * cell_y;
                for dx in -rx..=rx {
                    let x = gx + dx;
                    if x < 0 || x >= width as isize {
                        continue;
                    }
                    let cx = min_x + (x as f64 + 0.5) * cell_x;
                    let d2 = (cx - px) * (cx - px) + (cy - py) * (cy - py);
                    heights[y as usize * width + x as usize] += (-d2 * inv2bw2).exp();
                }
            }
        }

        // Normalize to [0, 1].
        let max_h = heights.iter().cloned().fold(0.0f64, f64::max);
        if max_h > 0.0 {
            for h in &mut heights {
                *h /= max_h;
            }
        }

        Terrain {
            heights,
            width,
            height,
            bounds: (min_x, min_y, max_x, max_y),
        }
    }

    /// Height at grid cell `(x, y)`.
    pub fn at(&self, x: usize, y: usize) -> f64 {
        self.heights[y * self.width + x]
    }

    /// Map a data-space point to its grid cell (clamped).
    pub fn cell_of(&self, x: f64, y: f64) -> (usize, usize) {
        let (min_x, min_y, max_x, max_y) = self.bounds;
        let fx = ((x - min_x) / (max_x - min_x)).clamp(0.0, 1.0);
        let fy = ((y - min_y) / (max_y - min_y)).clamp(0.0, 1.0);
        (
            ((fx * self.width as f64) as usize).min(self.width - 1),
            ((fy * self.height as f64) as usize).min(self.height - 1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_points_flat_terrain() {
        let t = Terrain::build(&[], 16, 16, None);
        assert!(t.heights.iter().all(|&h| h == 0.0));
    }

    #[test]
    fn single_cluster_peaks_at_center() {
        // A dense cluster near (5,5) and one straggler at (8,8): the
        // summit must sit at the cluster's center of mass, and the space
        // between cluster and straggler must be a valley.
        let mut points: Vec<(f64, f64)> = (0..50)
            .map(|i| (5.0 + 0.01 * (i % 7) as f64, 5.0 + 0.01 * (i % 5) as f64))
            .collect();
        points.push((8.0, 8.0));
        let t = Terrain::build(&points, 33, 33, Some(0.3));
        let mx = 5.03;
        let my = 5.02;
        let (cx, cy) = t.cell_of(mx, my);
        let center = t.at(cx, cy);
        assert!(center > 0.9, "center height {center}");
        let (vx, vy) = t.cell_of(6.5, 6.5);
        assert!(t.at(vx, vy) < 0.2, "valley height {}", t.at(vx, vy));
    }

    #[test]
    fn two_clusters_two_mountains() {
        let mut points = Vec::new();
        for i in 0..40 {
            let j = (i % 6) as f64 * 0.02;
            points.push((0.0 + j, 0.0));
            points.push((10.0 + j, 10.0));
        }
        let t = Terrain::build(&points, 32, 32, Some(0.8));
        let (ax, ay) = t.cell_of(0.0, 0.0);
        let (bx, by) = t.cell_of(10.0, 10.0);
        let (mx, my) = t.cell_of(5.0, 5.0);
        assert!(t.at(ax, ay) > 0.8);
        assert!(t.at(bx, by) > 0.8);
        assert!(t.at(mx, my) < 0.3, "saddle {}", t.at(mx, my));
    }

    #[test]
    fn heights_normalized() {
        let points = vec![(1.0, 1.0), (2.0, 2.0), (1.5, 1.2)];
        let t = Terrain::build(&points, 10, 10, None);
        let max = t.heights.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(t.heights.iter().all(|&h| (0.0..=1.0).contains(&h)));
    }

    #[test]
    fn identical_points_do_not_panic() {
        let points = vec![(3.0, 3.0); 20];
        let t = Terrain::build(&points, 8, 8, None);
        let (cx, cy) = t.cell_of(3.0, 3.0);
        assert!(t.at(cx, cy) > 0.99);
    }

    #[test]
    fn cell_of_clamps() {
        let t = Terrain::build(&[(0.0, 0.0), (1.0, 1.0)], 4, 4, None);
        assert_eq!(t.cell_of(-100.0, -100.0), (0, 0));
        assert_eq!(t.cell_of(100.0, 100.0), (3, 3));
    }
}
