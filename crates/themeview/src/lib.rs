//! # themeview — terrain visualization of projected document sets
//!
//! The final product of the paper's pipeline is a ThemeView™: *"a
//! scale-independent landscape of themes based on the contributions of the
//! projected documents into 2-space. The terrain has various mountains
//! depicting where themes are dominant and valleys where weak themes lie"*
//! (§2.1, Figure 2).
//!
//! This crate turns 2-D document coordinates into that landscape:
//!
//! * [`Terrain::build`] — kernel-density estimation on a regular grid
//!   (Gaussian kernels, bandwidth set by Scott's rule unless overridden).
//! * [`Terrain::peaks`] — local maxima with a minimum separation: the
//!   theme "mountains".
//! * [`Terrain::contours`] — elevation isolines via marching squares.
//! * [`render_ascii`] — a shaded character rendering for terminals.
//! * [`render_pgm`] — a portable graymap for external viewers.
//! * [`render_csv`] — the raw grid for plotting tools.
//! * [`render_svg`] — a vector rendering with filled contour bands and
//!   labeled peaks.
//! * [`galaxy`] — the companion Galaxy view: documents as a scatter of
//!   cluster-colored points (IN-SPIRE's other signature visualization).

pub mod contours;
pub mod galaxy;
pub mod peaks;
pub mod render;
pub mod svg;
pub mod terrain;

pub use contours::Contour;
pub use galaxy::{render_galaxy_ascii, render_galaxy_svg};
pub use peaks::Peak;
pub use render::{render_ascii, render_csv, render_pgm};
pub use svg::render_svg;
pub use terrain::Terrain;
