//! SVG rendering of the ThemeView terrain: filled elevation bands,
//! contour lines, and labeled peaks — a vector artifact any browser
//! displays.

use crate::peaks::Peak;
use crate::terrain::Terrain;

/// Options for [`render_svg`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Pixel width of the output; height follows the terrain aspect.
    pub width_px: u32,
    /// Iso levels for the filled bands (ascending).
    pub levels: Vec<f64>,
    /// Labels to print at peaks (paired by index with the peaks passed
    /// in; missing entries fall back to the peak number).
    pub peak_labels: Vec<String>,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width_px: 800,
            levels: vec![0.15, 0.3, 0.45, 0.6, 0.75, 0.9],
            peak_labels: Vec::new(),
        }
    }
}

/// Elevation color ramp: deep-valley blue-gray to summit white, the
/// classic terrain palette.
fn band_color(level: f64) -> String {
    // Interpolate between (40,60,90) and (245,245,240).
    let t = level.clamp(0.0, 1.0);
    let r = (40.0 + t * 205.0) as u8;
    let g = (60.0 + t * 185.0) as u8;
    let b = (90.0 + t * 150.0) as u8;
    format!("rgb({r},{g},{b})")
}

/// Render the terrain, its contour bands, and labeled peaks as an SVG
/// document.
pub fn render_svg(terrain: &Terrain, peaks: &[Peak], options: &SvgOptions) -> String {
    let (min_x, min_y, max_x, max_y) = terrain.bounds;
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let w = options.width_px as f64;
    let h = w * span_y / span_x;
    let sx = |x: f64| (x - min_x) / span_x * w;
    // SVG y grows downward; data y grows upward.
    let sy = |y: f64| h - (y - min_y) / span_y * h;

    let mut svg = String::with_capacity(16 * 1024);
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{h:.0}\" \
         viewBox=\"0 0 {w:.0} {h:.0}\">\n"
    ));
    svg.push_str(&format!(
        "<rect width=\"{w:.0}\" height=\"{h:.0}\" fill=\"{}\"/>\n",
        band_color(0.0)
    ));

    // Filled bands: draw closed contours bottom-up so higher bands paint
    // over lower ones.
    for &level in &options.levels {
        let color = band_color(level);
        for c in terrain.contours(&[level]) {
            if c.points.len() < 3 {
                continue;
            }
            let mut d = String::new();
            for (i, &(x, y)) in c.points.iter().enumerate() {
                d.push_str(if i == 0 { "M" } else { "L" });
                d.push_str(&format!("{:.1},{:.1} ", sx(x), sy(y)));
            }
            if c.closed {
                d.push('Z');
                svg.push_str(&format!(
                    "<path d=\"{d}\" fill=\"{color}\" stroke=\"rgba(30,40,60,0.35)\" stroke-width=\"1\"/>\n"
                ));
            } else {
                svg.push_str(&format!(
                    "<path d=\"{d}\" fill=\"none\" stroke=\"rgba(30,40,60,0.35)\" stroke-width=\"1\"/>\n"
                ));
            }
        }
    }

    // Peaks: markers plus labels.
    for (i, p) in peaks.iter().enumerate() {
        let x = sx(p.at.0);
        let y = sy(p.at.1);
        let label = options
            .peak_labels
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("{}", i + 1));
        svg.push_str(&format!(
            "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"3\" fill=\"#222\"/>\n"
        ));
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-family=\"sans-serif\" font-size=\"12\" \
             fill=\"#111\" stroke=\"#fff\" stroke-width=\"3\" paint-order=\"stroke\">{}</text>\n",
            x + 5.0,
            y - 5.0,
            xml_escape(&label)
        ));
    }

    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terrain_and_peaks() -> (Terrain, Vec<Peak>) {
        let mut points = Vec::new();
        for i in 0..60 {
            let j = 0.02 * (i % 6) as f64;
            points.push((0.0 + j, 0.0));
            points.push((8.0 + j, 8.0));
        }
        let t = Terrain::build(&points, 40, 40, Some(0.7));
        let p = t.peaks(4, 0.2, 4);
        (t, p)
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let (t, p) = terrain_and_peaks();
        let svg = render_svg(&t, &p, &SvgOptions::default());
        assert!(svg.starts_with("<svg "));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<svg ").count(), 1);
        // Balanced path elements (every path self-closes).
        assert!(svg.matches("<path ").count() > 3);
        assert_eq!(
            svg.matches("<path ").count(),
            svg.matches("/>\n").count() - 1 - p.len()
        );
    }

    #[test]
    fn peaks_render_labels() {
        let (t, p) = terrain_and_peaks();
        let svg = render_svg(
            &t,
            &p,
            &SvgOptions {
                peak_labels: vec!["cardiology".into(), "oncology & more".into()],
                ..Default::default()
            },
        );
        assert!(svg.contains(">cardiology</text>"));
        assert!(svg.contains("oncology &amp; more"));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn empty_terrain_renders_background_only() {
        let t = Terrain::build(&[], 8, 8, None);
        let svg = render_svg(&t, &[], &SvgOptions::default());
        assert!(svg.contains("<rect"));
        assert!(!svg.contains("<path"));
    }

    #[test]
    fn color_ramp_monotone() {
        // Summits are lighter than valleys in every channel.
        let lo = band_color(0.0);
        let hi = band_color(1.0);
        assert_eq!(lo, "rgb(40,60,90)");
        assert_eq!(hi, "rgb(245,245,240)");
    }
}
