//! Contour (isoline) extraction — the elevation lines of the ThemeView
//! terrain, via marching squares.
//!
//! IN-SPIRE's ThemeView renders the density landscape with elevation
//! contours; this module extracts them as polylines in data space so any
//! frontend (the SVG renderer here, or an external tool via CSV) can draw
//! them.

use crate::terrain::Terrain;

/// One contour line: an open or closed polyline in data coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Contour {
    /// The iso level in `[0, 1]`.
    pub level: f64,
    /// Polyline vertices in data space.
    pub points: Vec<(f64, f64)>,
    /// Whether the polyline closes on itself.
    pub closed: bool,
}

/// Cell-edge identifier used while stitching segments into polylines.
type EdgeKey = (usize, usize, u8); // (cell x, cell y, edge 0..4: S,E,N,W)
type Segment = (EdgeKey, (f64, f64), EdgeKey, (f64, f64)); // two interpolated edge crossings

impl Terrain {
    /// Extract contours at the given iso `levels` (each in `[0,1]`).
    pub fn contours(&self, levels: &[f64]) -> Vec<Contour> {
        let mut out = Vec::new();
        for &level in levels {
            out.extend(self.contours_at(level));
        }
        out
    }

    /// Marching squares at one level, with linear interpolation along the
    /// cell edges and segment stitching into polylines.
    fn contours_at(&self, level: f64) -> Vec<Contour> {
        if self.width < 2 || self.height < 2 {
            return Vec::new();
        }
        // Collect segments per cell as (edge_a, edge_b) with interpolated
        // endpoints.
        let mut segments: Vec<Segment> = Vec::new();
        for cy in 0..self.height - 1 {
            for cx in 0..self.width - 1 {
                // Corner values: SW, SE, NE, NW.
                let sw = self.at(cx, cy);
                let se = self.at(cx + 1, cy);
                let ne = self.at(cx + 1, cy + 1);
                let nw = self.at(cx, cy + 1);
                let mut case = 0u8;
                if sw >= level {
                    case |= 1;
                }
                if se >= level {
                    case |= 2;
                }
                if ne >= level {
                    case |= 4;
                }
                if nw >= level {
                    case |= 8;
                }
                if case == 0 || case == 15 {
                    continue;
                }
                // Interpolated crossing points on each edge (S, E, N, W).
                let t = |a: f64, b: f64| -> f64 {
                    if (b - a).abs() < 1e-12 {
                        0.5
                    } else {
                        ((level - a) / (b - a)).clamp(0.0, 1.0)
                    }
                };
                let south = (cx as f64 + t(sw, se), cy as f64);
                let east = (cx as f64 + 1.0, cy as f64 + t(se, ne));
                let north = (cx as f64 + t(nw, ne), cy as f64 + 1.0);
                let west = (cx as f64, cy as f64 + t(sw, nw));
                let e = |edge: u8| -> EdgeKey { (cx, cy, edge) };
                // Segment table (ambiguous saddles 5/10 resolved by the
                // cell-center average).
                let center = (sw + se + ne + nw) / 4.0;
                let mut push = |a: u8, pa: (f64, f64), b: u8, pb: (f64, f64)| {
                    segments.push((e(a), pa, e(b), pb));
                };
                match case {
                    1 => push(3, west, 0, south),
                    2 => push(0, south, 1, east),
                    3 => push(3, west, 1, east),
                    4 => push(1, east, 2, north),
                    5 => {
                        if center >= level {
                            push(3, west, 2, north);
                            push(1, east, 0, south);
                        } else {
                            push(3, west, 0, south);
                            push(1, east, 2, north);
                        }
                    }
                    6 => push(0, south, 2, north),
                    7 => push(3, west, 2, north),
                    8 => push(2, north, 3, west),
                    9 => push(2, north, 0, south),
                    10 => {
                        if center >= level {
                            push(0, south, 3, west);
                            push(1, east, 2, north);
                        } else {
                            push(0, south, 1, east);
                            push(2, north, 3, west);
                        }
                    }
                    11 => push(2, north, 1, east),
                    12 => push(1, east, 3, west),
                    13 => push(1, east, 0, south),
                    14 => push(0, south, 3, west),
                    _ => unreachable!(),
                }
            }
        }
        self.stitch(level, segments)
    }

    /// Convert grid coordinates to data coordinates.
    fn grid_to_data(&self, gx: f64, gy: f64) -> (f64, f64) {
        let (min_x, min_y, max_x, max_y) = self.bounds;
        (
            min_x + (gx + 0.5) / self.width as f64 * (max_x - min_x),
            min_y + (gy + 0.5) / self.height as f64 * (max_y - min_y),
        )
    }

    /// Stitch segments into polylines by matching shared edges.
    fn stitch(&self, level: f64, segments: Vec<Segment>) -> Vec<Contour> {
        use std::collections::HashMap;
        // Canonical global edge key so neighbouring cells agree: edges are
        // identified by their low-corner vertex and orientation.
        fn canon(k: EdgeKey) -> (usize, usize, bool) {
            let (cx, cy, e) = k;
            match e {
                0 => (cx, cy, true),      // south edge of (cx,cy): horizontal at row cy
                2 => (cx, cy + 1, true),  // north edge: horizontal at row cy+1
                3 => (cx, cy, false),     // west edge: vertical at col cx
                _ => (cx + 1, cy, false), // east edge: vertical at col cx+1
            }
        }
        let mut by_edge: HashMap<(usize, usize, bool), Vec<usize>> = HashMap::new();
        for (i, (a, _, b, _)) in segments.iter().enumerate() {
            by_edge.entry(canon(*a)).or_default().push(i);
            by_edge.entry(canon(*b)).or_default().push(i);
        }
        let mut used = vec![false; segments.len()];
        let mut contours = Vec::new();
        for start in 0..segments.len() {
            if used[start] {
                continue;
            }
            used[start] = true;
            let (a0, pa0, b0, pb0) = segments[start];
            let mut points = vec![pa0, pb0];
            // Walk forward from the b-end.
            let mut tail = canon(b0);
            let head = canon(a0);
            let mut closed = false;
            while let Some(cands) = by_edge.get(&tail) {
                let next = cands.iter().copied().find(|&i| !used[i]);
                let Some(i) = next else { break };
                used[i] = true;
                let (na, npa, nb, npb) = segments[i];
                if canon(na) == tail {
                    points.push(npb);
                    tail = canon(nb);
                } else {
                    points.push(npa);
                    tail = canon(na);
                }
                if tail == head {
                    closed = true;
                    break;
                }
            }
            let data_points: Vec<(f64, f64)> = points
                .iter()
                .map(|&(gx, gy)| self.grid_to_data(gx, gy))
                .collect();
            contours.push(Contour {
                level,
                points: data_points,
                closed,
            });
        }
        contours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic radial hill centered in a [0,10]x[0,10] domain — an
    /// analytically known surface, so the marching-squares output can be
    /// checked precisely.
    fn hill(width: usize, height: usize) -> Terrain {
        let mut heights = vec![0.0f64; width * height];
        for y in 0..height {
            for x in 0..width {
                let fx = (x as f64 + 0.5) / width as f64 * 10.0;
                let fy = (y as f64 + 0.5) / height as f64 * 10.0;
                let r2 = (fx - 5.0).powi(2) + (fy - 5.0).powi(2);
                heights[y * width + x] = (-r2 / 6.0).exp();
            }
        }
        Terrain {
            heights,
            width,
            height,
            bounds: (0.0, 0.0, 10.0, 10.0),
        }
    }

    /// Two radial hills at (3.5,3.5) and (6.5,6.5), overlapping enough
    /// that a saddle exists well above zero.
    fn two_hills(n: usize) -> Terrain {
        let mut heights = vec![0.0f64; n * n];
        for y in 0..n {
            for x in 0..n {
                let fx = (x as f64 + 0.5) / n as f64 * 10.0;
                let fy = (y as f64 + 0.5) / n as f64 * 10.0;
                let a = (-((fx - 3.5).powi(2) + (fy - 3.5).powi(2)) / 3.0).exp();
                let b = (-((fx - 6.5).powi(2) + (fy - 6.5).powi(2)) / 3.0).exp();
                heights[y * n + x] = a + b;
            }
        }
        // Normalize.
        let max = heights.iter().cloned().fold(0.0f64, f64::max);
        for h in &mut heights {
            *h /= max;
        }
        Terrain {
            heights,
            width: n,
            height: n,
            bounds: (0.0, 0.0, 10.0, 10.0),
        }
    }

    #[test]
    fn single_hill_yields_closed_rings() {
        let t = hill(48, 48);
        let contours = t.contours(&[0.3, 0.6, 0.9]);
        assert_eq!(contours.len(), 3, "{contours:?}");
        for c in &contours {
            assert!(c.closed, "open contour at level {}", c.level);
            assert!(c.points.len() >= 8);
        }
    }

    #[test]
    fn ring_radius_matches_the_analytic_level_set() {
        // exp(-r^2/6) = L  =>  r = sqrt(-6 ln L).
        let t = hill(96, 96);
        for level in [0.3f64, 0.6, 0.9] {
            let expect_r = (-6.0 * level.ln()).sqrt();
            let cs = t.contours(&[level]);
            assert_eq!(cs.len(), 1);
            for &(x, y) in &cs[0].points {
                let r = ((x - 5.0).powi(2) + (y - 5.0).powi(2)).sqrt();
                assert!(
                    (r - expect_r).abs() < 0.25,
                    "level {level}: vertex radius {r} vs {expect_r}"
                );
            }
        }
    }

    #[test]
    fn higher_levels_give_smaller_rings() {
        let t = hill(48, 48);
        let extent = |level: f64| -> f64 {
            let cs = t.contours(&[level]);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &(x, _) in &cs[0].points {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            hi - lo
        };
        assert!(extent(0.2) > extent(0.8));
    }

    #[test]
    fn flat_terrain_has_no_contours() {
        let t = Terrain::build(&[], 16, 16, None);
        assert!(t.contours(&[0.5]).is_empty());
    }

    #[test]
    fn level_above_max_yields_nothing() {
        let t = hill(32, 32);
        assert!(t.contours(&[1.01]).is_empty());
    }

    #[test]
    fn two_hills_give_separate_rings() {
        let t = two_hills(64);
        let contours = t.contours(&[0.55]);
        let closed: Vec<&Contour> = contours.iter().filter(|c| c.closed).collect();
        assert_eq!(closed.len(), 2, "{} closed rings", closed.len());
        // One ring around each center.
        let near = |c: &Contour, cx: f64, cy: f64| {
            c.points
                .iter()
                .all(|&(x, y)| ((x - cx).powi(2) + (y - cy).powi(2)).sqrt() < 2.2)
        };
        assert!(closed.iter().any(|c| near(c, 3.5, 3.5)));
        assert!(closed.iter().any(|c| near(c, 6.5, 6.5)));
    }

    #[test]
    fn saddle_between_hills_resolves_without_crossings() {
        // A level just below the saddle produces one merged (dumbbell)
        // outline or two rings — either is valid marching squares, but
        // segments must stitch into closed loops, not dangling ends.
        let t = two_hills(64);
        // Find the saddle height (midpoint).
        let (sx, sy) = t.cell_of(5.0, 5.0);
        let saddle = t.at(sx, sy);
        let contours = t.contours(&[saddle * 0.9]);
        assert!(!contours.is_empty());
        for c in &contours {
            assert!(c.closed, "dangling contour near the saddle: {c:?}");
        }
    }
}
