//! Description of the machine being modeled.

/// Interconnect parameters (a two-parameter latency/bandwidth model, i.e.
/// the postal / Hockney model that LogP-style collective costs build on).
#[derive(Debug, Clone)]
pub struct Network {
    /// One-way small-message latency in seconds (what a blocking
    /// round-trip or a collective tree round pays).
    pub latency_s: f64,
    /// Per-message initiation overhead under pipelining, in seconds.
    /// One-sided RMA and atomics are issued non-blocking and overlapped
    /// (the ARMCI design the paper builds on — ref [21], "exploiting
    /// non-blocking remote memory access"), so a stream of them is
    /// limited by the message rate, not by serial round trips.
    pub msg_overhead_s: f64,
    /// Point-to-point bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

impl Network {
    /// 2007-era single-data-rate InfiniBand: ~5 µs MPI latency, ~900 MB/s
    /// effective point-to-point bandwidth.
    pub fn infiniband_sdr() -> Self {
        Network {
            latency_s: 5e-6,
            msg_overhead_s: 1.2e-6,
            bandwidth_bps: 900e6,
        }
    }

    /// Gigabit Ethernet of the same era, for sensitivity studies: ~50 µs
    /// latency, ~110 MB/s.
    pub fn gigabit_ethernet() -> Self {
        Network {
            latency_s: 50e-6,
            msg_overhead_s: 12e-6,
            bandwidth_bps: 110e6,
        }
    }

    /// Time to move `bytes` point to point.
    pub fn ptp(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / self.bandwidth_bps
    }
}

/// Where the source datasets live and how reading them scales (§4.2:
/// scanning "can be leveraged by using scalable parallel file systems
/// (e.g., Lustre)").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StorageModel {
    /// Each node reads from its own local disk (data pre-staged).
    NodeLocal,
    /// A shared server (NFS-class): fixed aggregate bandwidth divided
    /// among all readers — scanning I/O stops scaling with P.
    SharedFixed {
        /// Aggregate bytes per second of the shared server.
        aggregate_bps: f64,
    },
    /// A parallel filesystem (Lustre-class): bandwidth grows with the
    /// number of reading nodes, up to a backplane cap.
    Parallel {
        /// Bytes per second each reading node can stream.
        per_node_bps: f64,
        /// Upper bound across all nodes.
        backplane_bps: f64,
    },
}

/// The cluster: homogeneous nodes, each with `procs_per_node` processors
/// sharing the node's memory and disk.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Human-readable name, recorded in experiment output.
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Processors (cores/CPUs) per node.
    pub procs_per_node: usize,
    /// CPU clock in GHz (informational; throughput lives in the rate card).
    pub cpu_ghz: f64,
    /// Bytes of RAM per node.
    pub memory_per_node: u64,
    /// Local disk read bandwidth per node, bytes per second, shared by the
    /// node's processors.
    pub disk_bandwidth_bps: f64,
    /// Where the source datasets live (the paper's configuration is a
    /// shared server; they note Lustre as the remedy for scanning
    /// becoming I/O bound, §4.2).
    pub storage: StorageModel,
    /// Interconnect.
    pub network: Network,
}

impl ClusterSpec {
    /// The paper's platform: "a Linux cluster based on dual 1.5-GHz Intel
    /// Itanium nodes and Infiniband network (48 processors total)" at PNNL,
    /// i.e. 24 nodes × 2 processors. Node memory is not stated in the paper;
    /// 8 GB/node is representative of that machine class and makes the
    /// 16.44 GB PubMed run oversubscribe memory at P = 4 exactly as the
    /// paper reports.
    pub fn pnnl_itanium_2007() -> Self {
        ClusterSpec {
            name: "PNNL Itanium-2/InfiniBand (24 nodes x 2 procs)".to_string(),
            nodes: 24,
            procs_per_node: 2,
            cpu_ghz: 1.5,
            memory_per_node: 8 << 30,
            disk_bandwidth_bps: 200e6,
            storage: StorageModel::SharedFixed {
                aggregate_bps: 500e6,
            },
            network: Network::infiniband_sdr(),
        }
    }

    /// Total processor count.
    pub fn total_procs(&self) -> usize {
        self.nodes * self.procs_per_node
    }

    /// Memory available to one processor when a node is fully populated.
    pub fn memory_per_proc(&self) -> u64 {
        self.memory_per_node / self.procs_per_node as u64
    }

    /// Memory available to each *active* processor when only `p` ranks
    /// run: with block placement, a run smaller than a node leaves the
    /// rest of the node's memory to the ranks it does host.
    pub fn memory_per_active_proc(&self, p: usize) -> u64 {
        let per_node = self.procs_per_node.min(p.max(1));
        self.memory_per_node / per_node as u64
    }

    /// Which node hosts `rank`, under the usual block placement (ranks
    /// 0..procs_per_node on node 0, and so on).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.procs_per_node
    }

    /// Whether two ranks share a node (intra-node one-sided traffic could
    /// in principle be cheaper; the Global Arrays model exposes this as
    /// locality information).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pnnl_has_48_procs() {
        let c = ClusterSpec::pnnl_itanium_2007();
        assert_eq!(c.total_procs(), 48);
    }

    #[test]
    fn node_placement_is_blocked() {
        let c = ClusterSpec::pnnl_itanium_2007();
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(1), 0);
        assert_eq!(c.node_of(2), 1);
        assert!(c.same_node(4, 5));
        assert!(!c.same_node(1, 2));
    }

    #[test]
    fn memory_split_between_procs() {
        let c = ClusterSpec::pnnl_itanium_2007();
        assert_eq!(c.memory_per_proc(), 4 << 30);
    }

    #[test]
    fn ptp_monotone_in_size() {
        let n = Network::infiniband_sdr();
        assert!(n.ptp(1e6) > n.ptp(1e3));
        assert!(n.ptp(0.0) == n.latency_s);
    }

    #[test]
    fn ethernet_slower_than_ib() {
        let ib = Network::infiniband_sdr();
        let eth = Network::gigabit_ethernet();
        assert!(eth.ptp(1e6) > ib.ptp(1e6));
    }
}
