//! LogP-style costs for the MPI collectives the engine uses.
//!
//! All collectives are modeled as binomial trees over the [`Network`]'s
//! latency/bandwidth parameters: `ceil(log2 p)` rounds, each moving the
//! payload point to point. This is the standard first-order model for the
//! MVAPICH-class MPI implementations of the paper's era and is what makes
//! the Allreduce-heavy topicality step stop scaling as `p` grows — exactly
//! the behaviour the paper reports in Figures 6b/7b.

use crate::cluster::Network;

/// `ceil(log2 p)`, with `p <= 1` costing zero rounds.
pub fn rounds(p: usize) -> u32 {
    if p <= 1 {
        0
    } else {
        usize::BITS - (p - 1).leading_zeros()
    }
}

/// Barrier: latency-only binomial dissemination.
pub fn barrier(net: &Network, p: usize) -> f64 {
    rounds(p) as f64 * net.latency_s
}

/// Broadcast `bytes` from a root: `log p` rounds of the full payload.
pub fn broadcast(net: &Network, p: usize, bytes: f64) -> f64 {
    rounds(p) as f64 * net.ptp(bytes)
}

/// Reduce `bytes` to a root (same tree as broadcast, plus the combining
/// arithmetic which is charged to the compute meter by the caller).
pub fn reduce(net: &Network, p: usize, bytes: f64) -> f64 {
    broadcast(net, p, bytes)
}

/// Allreduce: reduce followed by broadcast (the classical implementation;
/// recursive-doubling halves the constant but has the same `log p` shape).
pub fn allreduce(net: &Network, p: usize, bytes: f64) -> f64 {
    2.0 * broadcast(net, p, bytes)
}

/// Gather `bytes_per_rank` from every rank to a root. The root's inbound
/// link is the bottleneck: `(p-1)` payloads, pipelined behind one latency
/// per tree round.
pub fn gather(net: &Network, p: usize, bytes_per_rank: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    rounds(p) as f64 * net.latency_s + (p - 1) as f64 * bytes_per_rank / net.bandwidth_bps
}

/// Allgather: every rank ends with `p * bytes_per_rank`; ring/bruck style
/// moves `(p-1)` payloads through each rank.
pub fn allgather(net: &Network, p: usize, bytes_per_rank: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    rounds(p) as f64 * net.latency_s + (p - 1) as f64 * bytes_per_rank / net.bandwidth_bps
}

/// All-to-all personalized exchange: every rank sends a distinct
/// `bytes_per_pair` to every other rank. Modeled as `(p-1)` pipelined
/// point-to-point transfers behind the tree latency.
pub fn alltoall(net: &Network, p: usize, bytes_per_pair: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    rounds(p) as f64 * net.latency_s + (p - 1) as f64 * bytes_per_pair / net.bandwidth_bps
}

/// Reduce-scatter of a `total_bytes` vector: reduce then scatter 1/p to
/// each rank — half the volume of a full allreduce in the classical
/// implementation.
pub fn reduce_scatter(net: &Network, p: usize, total_bytes: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    rounds(p) as f64 * net.latency_s + total_bytes * (p - 1) as f64 / p as f64 / net.bandwidth_bps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::infiniband_sdr()
    }

    #[test]
    fn rounds_matches_log2_ceiling() {
        assert_eq!(rounds(1), 0);
        assert_eq!(rounds(2), 1);
        assert_eq!(rounds(3), 2);
        assert_eq!(rounds(4), 2);
        assert_eq!(rounds(5), 3);
        assert_eq!(rounds(8), 3);
        assert_eq!(rounds(9), 4);
        assert_eq!(rounds(32), 5);
        assert_eq!(rounds(48), 6);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let n = net();
        assert_eq!(barrier(&n, 1), 0.0);
        assert_eq!(broadcast(&n, 1, 1e6), 0.0);
        assert_eq!(allreduce(&n, 1, 1e6), 0.0);
        assert_eq!(gather(&n, 1, 1e6), 0.0);
        assert_eq!(allgather(&n, 1, 1e6), 0.0);
    }

    #[test]
    fn allreduce_twice_broadcast() {
        let n = net();
        assert!((allreduce(&n, 16, 4096.0) - 2.0 * broadcast(&n, 16, 4096.0)).abs() < 1e-15);
    }

    #[test]
    fn costs_monotone_in_p() {
        let n = net();
        let mut prev = 0.0;
        for p in [2usize, 4, 8, 16, 32] {
            let c = allreduce(&n, p, 8192.0);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn alltoall_and_reduce_scatter_monotone() {
        let n = net();
        assert!(alltoall(&n, 16, 1024.0) > alltoall(&n, 4, 1024.0));
        assert!(reduce_scatter(&n, 16, 1e6) > reduce_scatter(&n, 2, 1e6));
        assert_eq!(alltoall(&n, 1, 4096.0), 0.0);
        assert_eq!(reduce_scatter(&n, 1, 4096.0), 0.0);
    }

    #[test]
    fn reduce_scatter_cheaper_than_allreduce() {
        let n = net();
        assert!(reduce_scatter(&n, 8, 1e6) < allreduce(&n, 8, 1e6));
    }

    #[test]
    fn gather_dominated_by_payload_volume() {
        let n = net();
        let small = gather(&n, 32, 8.0);
        let large = gather(&n, 32, 1e6);
        assert!(large > 10.0 * small);
    }
}
