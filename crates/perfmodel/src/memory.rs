//! Memory-pressure (thrashing) model.
//!
//! The paper observes (§4.2): *"in the case of 16GB PubMed data on 4
//! processors, the performance is very low because this problem size is too
//! large for a 4 processor case. Therefore, excessive cache misses, page
//! faults, etc, degrade the overall performance."*
//!
//! We reproduce that anomaly with a smooth penalty applied to compute
//! charges once a processor's working set exceeds its share of node memory.
//! Below the threshold the factor is exactly 1; above it the factor grows
//! quadratically in the oversubscription ratio, capped so a single bad
//! configuration slows down by a bounded (but large) amount rather than
//! diverging.

#[derive(Debug, Clone)]
pub struct MemoryModel {
    /// Fraction of per-processor memory usable by the engine (the OS, file
    /// cache, and buffers take the rest).
    pub usable_fraction: f64,
    /// Penalty strength: factor = 1 + strength * (ratio - 1)^2 for
    /// working-set/usable ratios above 1.
    pub strength: f64,
    /// Upper bound on the factor.
    pub max_factor: f64,
    /// Expansion from corpus bytes to in-memory working set (indices,
    /// postings, hash tables are several times the raw text).
    pub working_set_expansion: f64,
}

impl MemoryModel {
    /// Defaults tuned for the 2007 platform.
    pub fn default_2007() -> Self {
        MemoryModel {
            usable_fraction: 0.85,
            strength: 8.0,
            max_factor: 40.0,
            working_set_expansion: 1.2,
        }
    }

    /// No memory pressure ever — for correctness-only tests.
    pub fn disabled() -> Self {
        MemoryModel {
            usable_fraction: 1.0,
            strength: 0.0,
            max_factor: 1.0,
            working_set_expansion: 1.0,
        }
    }

    /// Multiplier for compute charges given a per-processor working set (in
    /// bytes, nominal scale) and the memory available to that processor.
    pub fn thrash_factor(&self, working_set_bytes: u64, memory_per_proc: u64) -> f64 {
        let usable = memory_per_proc as f64 * self.usable_fraction;
        if usable <= 0.0 {
            return self.max_factor;
        }
        let ratio = working_set_bytes as f64 / usable;
        if ratio <= 1.0 {
            1.0
        } else {
            (1.0 + self.strength * (ratio - 1.0).powi(2)).min(self.max_factor)
        }
    }

    /// Estimated per-processor working set for a corpus of `corpus_bytes`
    /// split across `p` processors.
    pub fn working_set(&self, corpus_bytes: u64, p: usize) -> u64 {
        ((corpus_bytes as f64 / p.max(1) as f64) * self.working_set_expansion) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_penalty_when_fits() {
        let m = MemoryModel::default_2007();
        assert_eq!(m.thrash_factor(1 << 30, 4 << 30), 1.0);
    }

    #[test]
    fn penalty_when_oversubscribed() {
        let m = MemoryModel::default_2007();
        let f = m.thrash_factor(16 << 30, 4 << 30);
        assert!(f > 1.0);
        assert!(f <= m.max_factor);
    }

    #[test]
    fn penalty_monotone_in_working_set() {
        let m = MemoryModel::default_2007();
        let mem = 4u64 << 30;
        let mut prev = 0.0;
        for gb in [1u64, 4, 8, 16, 32, 64] {
            let f = m.thrash_factor(gb << 30, mem);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn penalty_capped() {
        let m = MemoryModel::default_2007();
        assert_eq!(m.thrash_factor(u64::MAX / 2, 1), m.max_factor);
    }

    #[test]
    fn paper_anomaly_shape() {
        // 16.44 GB PubMed: heavy penalty at P=4, mild-or-none at P=8+.
        let m = MemoryModel::default_2007();
        let corpus = (16.44 * (1u64 << 30) as f64) as u64;
        let mem = 4u64 << 30; // per-proc share on the PNNL machine
        let f4 = m.thrash_factor(m.working_set(corpus, 4), mem);
        let f8 = m.thrash_factor(m.working_set(corpus, 8), mem);
        let f16 = m.thrash_factor(m.working_set(corpus, 16), mem);
        assert!(f4 > 2.0, "P=4 must thrash hard, got {f4}");
        assert!(f8 < f4 / 2.0, "P=8 must be much better, got {f8} vs {f4}");
        assert!(f16 <= f8);
    }

    #[test]
    fn disabled_model_is_identity() {
        let m = MemoryModel::disabled();
        assert_eq!(m.thrash_factor(u64::MAX / 4, 1), 1.0);
    }

    #[test]
    fn working_set_shrinks_with_p() {
        let m = MemoryModel::default_2007();
        assert!(m.working_set(1 << 30, 8) < m.working_set(1 << 30, 4));
    }
}
