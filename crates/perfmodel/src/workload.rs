//! Scaling between the corpus we actually generate and the nominal corpus
//! the paper processed.
//!
//! The paper's datasets are 1–16.44 GB; generating and processing them for
//! real inside a scaling sweep (6 processor counts × 6 datasets) is neither
//! necessary nor possible in this environment. Instead the benchmark
//! harness generates a *statistically faithful miniature* (same record
//! framing, Zipfian term distribution, document-length distribution) of a
//! few megabytes and declares its nominal size.
//!
//! Two scale factors follow:
//!
//! * [`data_scale`](WorkloadScale::data_scale) = nominal/actual bytes —
//!   every compute [`WorkKind`](crate::WorkKind) in the pipeline is linear
//!   in corpus bytes, so compute charges are multiplied by this factor.
//! * [`vocab_scale`](WorkloadScale::vocab_scale) — communication payloads
//!   that hold per-term data (term statistics, topicality candidates, the
//!   association matrix) grow with the *vocabulary*, which grows
//!   sublinearly in corpus size by Heaps' law `V ∝ bytes^β` with β ≈ 0.5
//!   for English text. Payload bytes are multiplied by
//!   `(nominal/actual)^β`.
//!
//! Both factors are 1 when `nominal == actual`, so the model is exact for
//! corpora processed at their true size.

/// Heaps-law exponent used for vocabulary-sized communication payloads.
/// 0.62 sits between conservative English prose (~0.5) and noisy web text
/// (~0.7+).
pub const HEAPS_BETA: f64 = 0.62;

#[derive(Debug, Clone)]
pub struct WorkloadScale {
    /// Size the corpus "stands for", in bytes.
    pub nominal_bytes: u64,
    /// Size of the corpus actually generated and processed, in bytes.
    pub actual_bytes: u64,
    /// Heaps exponent.
    pub heaps_beta: f64,
    /// Extra multiplier on the vocabulary scale, correcting for the
    /// generated corpus's *closed* vocabulary: real collections keep
    /// minting terms (numbers, names, typos, URLs) that the synthetic
    /// generator does not. Web crawls mint far more than curated
    /// abstracts, so the benchmark harness sets this per corpus flavour.
    pub vocab_multiplier: f64,
}

impl WorkloadScale {
    pub fn new(nominal_bytes: u64, actual_bytes: u64) -> Self {
        assert!(actual_bytes > 0, "actual corpus size must be positive");
        WorkloadScale {
            nominal_bytes,
            actual_bytes,
            heaps_beta: HEAPS_BETA,
            vocab_multiplier: 1.0,
        }
    }

    /// Set the closed-vocabulary correction (see `vocab_multiplier`).
    pub fn with_vocab_multiplier(mut self, m: f64) -> Self {
        assert!(m > 0.0);
        self.vocab_multiplier = m;
        self
    }

    /// No scaling: corpus processed at its true size.
    pub fn identity() -> Self {
        WorkloadScale {
            nominal_bytes: 1,
            actual_bytes: 1,
            heaps_beta: HEAPS_BETA,
            vocab_multiplier: 1.0,
        }
    }

    /// Multiplier applied to compute charges.
    pub fn data_scale(&self) -> f64 {
        self.nominal_bytes as f64 / self.actual_bytes as f64
    }

    /// Multiplier applied to vocabulary-sized communication payloads and
    /// per-term compute passes.
    pub fn vocab_scale(&self) -> f64 {
        self.data_scale().powf(self.heaps_beta) * self.vocab_multiplier
    }

    /// Scaled payload size in (fractional) bytes for communication charges.
    pub fn comm_bytes(&self, bytes: u64) -> f64 {
        bytes as f64 * self.vocab_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_one() {
        let s = WorkloadScale::identity();
        assert_eq!(s.data_scale(), 1.0);
        assert_eq!(s.vocab_scale(), 1.0);
        assert_eq!(s.comm_bytes(100), 100.0);
    }

    #[test]
    fn data_scale_is_ratio() {
        let s = WorkloadScale::new(1 << 30, 1 << 20);
        assert!((s.data_scale() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn vocab_scale_follows_heaps() {
        let s = WorkloadScale::new(1 << 30, 1 << 20);
        assert!((s.vocab_scale() - 1024f64.powf(HEAPS_BETA)).abs() < 1e-9);
    }

    #[test]
    fn vocab_multiplier_applies() {
        let s = WorkloadScale::new(1 << 30, 1 << 20).with_vocab_multiplier(10.0);
        assert!((s.vocab_scale() - 10.0 * 1024f64.powf(HEAPS_BETA)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_actual_rejected() {
        WorkloadScale::new(1, 0);
    }
}
