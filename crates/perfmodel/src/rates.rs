//! Per-processor throughput for each kind of work the engine performs.
//!
//! The engine counts *real* work as it executes (bytes tokenized, postings
//! scattered, floating-point operations in the numeric kernels) and the
//! rate card converts those counts into virtual seconds on one 2007-era
//! processor. The absolute values are calibrated so that the end-to-end
//! pipeline lands in the same range as the paper's Figure 5 (tens of
//! minutes for gigabytes of text on a handful of processors); the *shapes*
//! of the scaling curves come from the algorithms themselves.

/// Kinds of work the text engine performs, each metered separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkKind {
    /// Raw bytes pushed through the scanner (record framing, charset walk).
    ScanBytes,
    /// Tokens produced by the tokenizer (case folding, delimiter logic,
    /// per-token vocabulary lookup against the process-local cache).
    TokenizeTerms,
    /// Hash-table operations (local shard work of the distributed
    /// vocabulary map; the network part of a remote op is charged
    /// separately).
    HashOps,
    /// Postings moved during FAST-INV inversion (count pass + scatter pass
    /// are both metered in postings).
    InvertPostings,
    /// Vocabulary terms scored by the Bookstein topicality measure.
    TopicalityTerms,
    /// Token-level updates while accumulating the association matrix.
    AssocOps,
    /// Floating-point operations in the numeric kernels (signature
    /// generation, k-means, PCA, projection).
    Flops,
    /// Bulk local memory movement (local portion of global-array traffic).
    MemoryBytes,
}

/// Throughputs, in units of work per second per processor.
#[derive(Debug, Clone)]
pub struct RateCard {
    pub scan_bytes_per_s: f64,
    pub tokenize_terms_per_s: f64,
    pub hash_ops_per_s: f64,
    pub invert_postings_per_s: f64,
    pub topicality_terms_per_s: f64,
    pub assoc_ops_per_s: f64,
    pub flops_per_s: f64,
    pub memory_bytes_per_s: f64,
}

impl RateCard {
    /// Calibrated for a 1.5 GHz Itanium-2 running the text engine: sustained
    /// rates for branchy string processing sit far below peak, and the
    /// numeric kernels sustain on the order of 10^8 flop/s on this code.
    pub fn itanium_2007() -> Self {
        RateCard {
            scan_bytes_per_s: 1.5e6,
            tokenize_terms_per_s: 1.2e6,
            hash_ops_per_s: 4.0e5,
            invert_postings_per_s: 2.5e5,
            topicality_terms_per_s: 1.5e5,
            assoc_ops_per_s: 1.2e6,
            flops_per_s: 1.2e8,
            memory_bytes_per_s: 8.0e8,
        }
    }

    /// Everything infinitely fast — for correctness-only tests.
    pub fn zero() -> Self {
        RateCard {
            scan_bytes_per_s: f64::INFINITY,
            tokenize_terms_per_s: f64::INFINITY,
            hash_ops_per_s: f64::INFINITY,
            invert_postings_per_s: f64::INFINITY,
            topicality_terms_per_s: f64::INFINITY,
            assoc_ops_per_s: f64::INFINITY,
            flops_per_s: f64::INFINITY,
            memory_bytes_per_s: f64::INFINITY,
        }
    }

    /// A rate card uniformly `factor`× faster than this one — the single
    /// knob for recalibrating absolute times against published numbers
    /// without touching relative component costs.
    pub fn scaled(&self, factor: f64) -> RateCard {
        assert!(factor > 0.0, "speed factor must be positive");
        RateCard {
            scan_bytes_per_s: self.scan_bytes_per_s * factor,
            tokenize_terms_per_s: self.tokenize_terms_per_s * factor,
            hash_ops_per_s: self.hash_ops_per_s * factor,
            invert_postings_per_s: self.invert_postings_per_s * factor,
            topicality_terms_per_s: self.topicality_terms_per_s * factor,
            assoc_ops_per_s: self.assoc_ops_per_s * factor,
            flops_per_s: self.flops_per_s * factor,
            memory_bytes_per_s: self.memory_bytes_per_s * factor,
        }
    }

    fn rate(&self, kind: WorkKind) -> f64 {
        match kind {
            WorkKind::ScanBytes => self.scan_bytes_per_s,
            WorkKind::TokenizeTerms => self.tokenize_terms_per_s,
            WorkKind::HashOps => self.hash_ops_per_s,
            WorkKind::InvertPostings => self.invert_postings_per_s,
            WorkKind::TopicalityTerms => self.topicality_terms_per_s,
            WorkKind::AssocOps => self.assoc_ops_per_s,
            WorkKind::Flops => self.flops_per_s,
            WorkKind::MemoryBytes => self.memory_bytes_per_s,
        }
    }

    /// Seconds for `units` of `kind` on one processor.
    pub fn seconds(&self, kind: WorkKind, units: u64) -> f64 {
        let r = self.rate(kind);
        if r.is_infinite() {
            0.0
        } else {
            units as f64 / r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_units_cost_nothing() {
        let r = RateCard::itanium_2007();
        for kind in [
            WorkKind::ScanBytes,
            WorkKind::TokenizeTerms,
            WorkKind::HashOps,
            WorkKind::InvertPostings,
            WorkKind::TopicalityTerms,
            WorkKind::AssocOps,
            WorkKind::Flops,
            WorkKind::MemoryBytes,
        ] {
            assert_eq!(r.seconds(kind, 0), 0.0);
        }
    }

    #[test]
    fn seconds_proportional_to_units() {
        let r = RateCard::itanium_2007();
        let a = r.seconds(WorkKind::Flops, 1_000);
        let b = r.seconds(WorkKind::Flops, 3_000);
        assert!((b / a - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_card_is_free() {
        let r = RateCard::zero();
        assert_eq!(r.seconds(WorkKind::InvertPostings, u64::MAX), 0.0);
    }

    #[test]
    fn scaled_card_divides_times_uniformly() {
        let base = RateCard::itanium_2007();
        let fast = base.scaled(2.0);
        for kind in [WorkKind::ScanBytes, WorkKind::Flops, WorkKind::HashOps] {
            let t0 = base.seconds(kind, 1_000_000);
            let t1 = fast.seconds(kind, 1_000_000);
            assert!((t0 / t1 - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_nonpositive() {
        RateCard::itanium_2007().scaled(0.0);
    }

    #[test]
    fn string_work_slower_than_memcpy() {
        let r = RateCard::itanium_2007();
        assert!(r.seconds(WorkKind::ScanBytes, 1000) > r.seconds(WorkKind::MemoryBytes, 1000));
    }
}
