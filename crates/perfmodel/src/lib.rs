//! # perfmodel — virtual-time cost model of a 2007-era commodity cluster
//!
//! The IPPS 2007 paper *Scalable Visual Analytics of Massive Textual
//! Datasets* evaluates its parallel text engine on a Linux cluster of dual
//! 1.5 GHz Itanium-2 nodes connected by InfiniBand (48 processors total).
//! This reproduction executes the same algorithms for real, but on a single
//! development machine, so elapsed wall-clock time cannot exhibit the
//! paper's scaling curves. Instead every rank of the SPMD runtime carries a
//! **virtual clock** that is advanced by the *work it actually performed*
//! (bytes scanned, postings inverted, floating-point operations, …) priced
//! by the model in this crate, plus communication charges for one-sided
//! accesses and collectives.
//!
//! The model is deliberately simple and fully documented:
//!
//! * [`ClusterSpec`] — the machine: nodes, processors per node, memory and
//!   disk per node, and the interconnect ([`Network`]).
//! * [`RateCard`] — how fast one 2007-era processor performs each
//!   [`WorkKind`] (calibrated against the paper's absolute minutes).
//! * [`collectives`] — LogP-style binomial-tree costs for barrier,
//!   broadcast, reductions, gathers.
//! * [`MemoryModel`] — a thrash multiplier once a processor's working set
//!   exceeds its share of node memory; this reproduces the paper's
//!   observation that 16.44 GB of PubMed on 4 processors is
//!   disproportionately slow ("excessive cache misses, page faults").
//! * [`WorkloadScale`] — maps a scaled-down corpus that we really generate
//!   (megabytes) onto the nominal corpus the paper processed (gigabytes),
//!   scaling compute charges linearly in bytes and communication payloads by
//!   a Heaps-law vocabulary exponent.
//!
//! The crate is pure and dependency-light: everything is `f64` seconds and
//! plain functions, so it can be unit-tested exhaustively and reused by the
//! `spmd` runtime, the `ga` toolkit, and the benchmark harness.

pub mod cluster;
pub mod collectives;
pub mod memory;
pub mod rates;
pub mod workload;

pub use cluster::{ClusterSpec, Network, StorageModel};
pub use memory::MemoryModel;
pub use rates::{RateCard, WorkKind};
pub use workload::WorkloadScale;

/// The complete cost model handed to the SPMD runtime.
///
/// All methods return **virtual seconds**. The model is immutable and
/// shared (`Arc`) between ranks; it contains no interior mutability.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// The machine being modeled.
    pub cluster: ClusterSpec,
    /// Per-processor throughput for each kind of work.
    pub rates: RateCard,
    /// Memory-pressure model (thrashing).
    pub memory: MemoryModel,
    /// Scaling between the generated corpus and the nominal (paper-sized)
    /// corpus.
    pub scale: WorkloadScale,
}

impl CostModel {
    /// Model of the paper's evaluation platform processing a corpus at its
    /// real (generated) size — `scale` is identity.
    pub fn pnnl_2007() -> Self {
        CostModel {
            cluster: ClusterSpec::pnnl_itanium_2007(),
            rates: RateCard::itanium_2007(),
            memory: MemoryModel::default_2007(),
            scale: WorkloadScale::identity(),
        }
    }

    /// Same platform, but pretending the generated corpus of `actual_bytes`
    /// stands in for a nominal corpus of `nominal_bytes` (see
    /// [`WorkloadScale`]).
    pub fn pnnl_2007_scaled(nominal_bytes: u64, actual_bytes: u64) -> Self {
        CostModel {
            scale: WorkloadScale::new(nominal_bytes, actual_bytes),
            ..Self::pnnl_2007()
        }
    }

    /// A "free" model: all charges are zero. Used by unit tests that only
    /// care about algorithmic results, not timing.
    pub fn zero() -> Self {
        CostModel {
            cluster: ClusterSpec::pnnl_itanium_2007(),
            rates: RateCard::zero(),
            memory: MemoryModel::disabled(),
            scale: WorkloadScale::identity(),
        }
    }

    /// Virtual seconds for `units` of `kind` performed by one processor.
    ///
    /// Compute charges scale with [`WorkloadScale::data_scale`]: the real
    /// corpus is a constant-factor miniature of the nominal one, and every
    /// [`WorkKind`] in the pipeline is linear in corpus size.
    pub fn compute(&self, kind: WorkKind, units: u64) -> f64 {
        self.rates.seconds(kind, units) * self.scale.data_scale()
    }

    /// Compute charge additionally multiplied by the memory-pressure factor
    /// for a per-processor working set of `working_set_bytes` (expressed at
    /// nominal scale).
    pub fn compute_pressured(&self, kind: WorkKind, units: u64, working_set_bytes: u64) -> f64 {
        let factor = self
            .memory
            .thrash_factor(working_set_bytes, self.cluster.memory_per_proc());
        self.compute(kind, units) * factor
    }

    /// One-sided remote access of `bytes` (get/put/accumulate). Charged to
    /// the *origin* only — the essence of the Global Arrays / ARMCI model is
    /// that the target does not participate.
    ///
    /// Scaled by `data_scale`: GA bulk traffic (forward-index fetches,
    /// posting scatters) is proportional to corpus bytes, so a nominal-size
    /// run performs `data_scale`× as many such operations.
    pub fn one_sided(&self, bytes: u64) -> f64 {
        let n = &self.cluster.network;
        (n.msg_overhead_s + bytes as f64 / n.bandwidth_bps) * self.scale.data_scale()
    }

    /// One-sided RPC whose *count* scales with the vocabulary rather than
    /// the corpus (distributed-hashmap term registration): by Heaps' law
    /// the nominal run performs `vocab_scale`× as many.
    pub fn one_sided_vocab(&self, bytes: u64) -> f64 {
        let n = &self.cluster.network;
        (n.msg_overhead_s + bytes as f64 / n.bandwidth_bps) * self.scale.vocab_scale()
    }

    /// Local (same-address-space) array access of `bytes`.
    pub fn local_access(&self, bytes: u64) -> f64 {
        self.rates.seconds(WorkKind::MemoryBytes, bytes) * self.scale.data_scale()
    }

    /// Remote atomic read-modify-write (fetch-and-increment): one network
    /// round trip. Atomic counts accompany data-proportional work
    /// (inversion cursors, task claims), hence `data_scale`.
    pub fn remote_atomic(&self) -> f64 {
        2.0 * self.cluster.network.msg_overhead_s * self.scale.data_scale()
    }

    /// Disk read of `bytes` by one processor; the node's disk bandwidth is
    /// shared by `procs_per_node` processors, which is what eventually makes
    /// scanning I/O bound at scale (paper §4.2).
    pub fn disk_read(&self, bytes: u64) -> f64 {
        let per_proc_bw = self.cluster.disk_bandwidth_bps / self.cluster.procs_per_node as f64;
        (bytes as f64 * self.scale.data_scale()) / per_proc_bw
    }

    /// Reading `bytes` of source data by one of `p` concurrently scanning
    /// processors. Under NFS-class shared storage the fixed aggregate
    /// bandwidth is divided among readers (total scan I/O constant in `p`
    /// — the paper's "scanning becomes I/O bound" effect); a Lustre-class
    /// parallel filesystem scales with the reading nodes up to its
    /// backplane; node-local disks behave like [`CostModel::disk_read`].
    pub fn scan_io(&self, bytes: u64, p: usize) -> f64 {
        let nominal = bytes as f64 * self.scale.data_scale();
        match self.cluster.storage {
            cluster::StorageModel::NodeLocal => self.disk_read(bytes),
            cluster::StorageModel::SharedFixed { aggregate_bps } => {
                nominal / (aggregate_bps / p.max(1) as f64)
            }
            cluster::StorageModel::Parallel {
                per_node_bps,
                backplane_bps,
            } => {
                let nodes = p.max(1).div_ceil(self.cluster.procs_per_node);
                let agg = (per_node_bps * nodes as f64).min(backplane_bps);
                nominal / (agg / p.max(1) as f64)
            }
        }
    }

    /// Cost of a barrier across `p` ranks.
    pub fn barrier(&self, p: usize) -> f64 {
        collectives::barrier(&self.cluster.network, p)
    }

    /// Cost of broadcasting `bytes` from one root to `p` ranks.
    pub fn broadcast(&self, p: usize, bytes: u64) -> f64 {
        collectives::broadcast(&self.cluster.network, p, self.scale.comm_bytes(bytes))
    }

    /// Cost of an allreduce of `bytes` across `p` ranks.
    pub fn allreduce(&self, p: usize, bytes: u64) -> f64 {
        collectives::allreduce(&self.cluster.network, p, self.scale.comm_bytes(bytes))
    }

    /// Cost of gathering `bytes_per_rank` from each of `p` ranks to a root.
    pub fn gather(&self, p: usize, bytes_per_rank: u64) -> f64 {
        collectives::gather(
            &self.cluster.network,
            p,
            self.scale.comm_bytes(bytes_per_rank),
        )
    }

    /// Gather whose payload is proportional to corpus size (per-document
    /// data such as projected coordinates) rather than vocabulary size.
    pub fn gather_data(&self, p: usize, bytes_per_rank: u64) -> f64 {
        collectives::gather(
            &self.cluster.network,
            p,
            bytes_per_rank as f64 * self.scale.data_scale(),
        )
    }

    /// Cost of an allgather of `bytes_per_rank` from each of `p` ranks.
    pub fn allgather(&self, p: usize, bytes_per_rank: u64) -> f64 {
        collectives::allgather(
            &self.cluster.network,
            p,
            self.scale.comm_bytes(bytes_per_rank),
        )
    }

    /// Cost of an all-to-all of `bytes_per_pair` between every rank pair.
    pub fn alltoall(&self, p: usize, bytes_per_pair: u64) -> f64 {
        collectives::alltoall(
            &self.cluster.network,
            p,
            self.scale.comm_bytes(bytes_per_pair),
        )
    }

    /// Cost of a reduce-scatter over a `total_bytes` vector.
    pub fn reduce_scatter(&self, p: usize, total_bytes: u64) -> f64 {
        collectives::reduce_scatter(&self.cluster.network, p, self.scale.comm_bytes(total_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_charges_nothing() {
        let m = CostModel::zero();
        assert_eq!(m.compute(WorkKind::ScanBytes, 1 << 30), 0.0);
        assert_eq!(
            m.compute_pressured(WorkKind::ScanBytes, 1 << 30, u64::MAX),
            0.0
        );
    }

    #[test]
    fn compute_scales_linearly_in_units() {
        let m = CostModel::pnnl_2007();
        let one = m.compute(WorkKind::ScanBytes, 1_000_000);
        let ten = m.compute(WorkKind::ScanBytes, 10_000_000);
        assert!((ten / one - 10.0).abs() < 1e-9);
    }

    #[test]
    fn data_scale_inflates_compute() {
        let base = CostModel::pnnl_2007();
        let scaled = CostModel::pnnl_2007_scaled(1 << 30, 1 << 20); // 1 GiB nominal, 1 MiB actual
        let b = base.compute(WorkKind::ScanBytes, 1 << 20);
        let s = scaled.compute(WorkKind::ScanBytes, 1 << 20);
        assert!((s / b - 1024.0).abs() < 1e-6);
    }

    #[test]
    fn one_sided_is_latency_plus_bandwidth() {
        let m = CostModel::pnnl_2007();
        let small = m.one_sided(8);
        let large = m.one_sided(8 * 1024 * 1024);
        assert!(small >= m.cluster.network.msg_overhead_s);
        assert!(large > small);
    }

    #[test]
    fn disk_shared_between_node_procs() {
        let m = CostModel::pnnl_2007();
        // With 2 procs/node, each proc sees half the node disk bandwidth.
        let t = m.disk_read(1 << 20);
        let full_bw = (1u64 << 20) as f64 / m.cluster.disk_bandwidth_bps;
        assert!((t / full_bw - m.cluster.procs_per_node as f64).abs() < 1e-9);
    }

    #[test]
    fn collective_costs_grow_with_p() {
        let m = CostModel::pnnl_2007();
        assert!(m.allreduce(32, 4096) > m.allreduce(2, 4096));
        assert!(m.broadcast(16, 1024) > m.broadcast(2, 1024));
        assert!(m.barrier(32) > m.barrier(2));
    }

    #[test]
    fn shared_fixed_storage_makes_scan_io_constant_in_p() {
        let m = CostModel::pnnl_2007();
        // Per-rank bytes halve as P doubles, but the aggregate is fixed:
        // total time constant.
        let total_bytes = 1u64 << 26;
        let t4 = m.scan_io(total_bytes / 4, 4);
        let t32 = m.scan_io(total_bytes / 32, 32);
        assert!((t4 - t32).abs() < 1e-9, "{t4} vs {t32}");
    }

    #[test]
    fn parallel_storage_scales_with_nodes() {
        let mut m = CostModel::pnnl_2007();
        m.cluster.storage = StorageModel::Parallel {
            per_node_bps: 200e6,
            backplane_bps: 10e9,
        };
        let total_bytes = 1u64 << 26;
        let t4 = m.scan_io(total_bytes / 4, 4);
        let t32 = m.scan_io(total_bytes / 32, 32);
        // Per-processor bandwidth is constant (the filesystem scales with
        // the nodes), so per-rank time scales like the per-rank bytes: 8x.
        assert!((t4 / t32 - 8.0).abs() < 0.1, "{t4} vs {t32}");
        // Contrast with the shared server, where t4 == t32.
        let shared = CostModel::pnnl_2007();
        let s4 = shared.scan_io(total_bytes / 4, 4);
        let s32 = shared.scan_io(total_bytes / 32, 32);
        assert!((s4 - s32).abs() < 1e-9);
    }

    #[test]
    fn parallel_storage_capped_by_backplane() {
        let mut m = CostModel::pnnl_2007();
        m.cluster.storage = StorageModel::Parallel {
            per_node_bps: 200e6,
            backplane_bps: 400e6,
        };
        // 16 nodes would give 3.2 GB/s uncapped; the backplane holds it
        // to 400 MB/s, i.e. the SharedFixed behaviour.
        let t = m.scan_io(1 << 20, 32);
        let expect = (1u64 << 20) as f64 / (400e6 / 32.0);
        assert!((t - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn pressured_compute_exceeds_unpressured_when_oversubscribed() {
        let m = CostModel::pnnl_2007();
        let fit = m.compute_pressured(WorkKind::ScanBytes, 1000, 1 << 20);
        let thrash = m.compute_pressured(WorkKind::ScanBytes, 1000, 1 << 40);
        assert!(thrash > fit);
    }
}
