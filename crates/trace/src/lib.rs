//! # inspire-trace — observability for the engine
//!
//! The paper's entire evaluation is observational: Figures 6b/7b report
//! per-component time shares, Figure 8 per-component speedups, Figure 9
//! per-rank load balance. This crate is the instrumentation layer that
//! makes such measurements first-class in every run instead of something
//! only the bench harness reconstructs:
//!
//! * [`log`] — a leveled, rank-prefixed structured logger
//!   (`INSPIRE_LOG=error|warn|info|debug`) replacing ad-hoc `eprintln!`
//!   warnings, so `P>1` runs don't interleave unattributed lines.
//! * [`span`] — a per-rank ring-buffered span recorder. Every event is
//!   stamped with both the host wall clock and the SPMD **virtual**
//!   clock; recording is off by default and a single branch when off.
//! * [`chrome`] — export of recorded spans to the Chrome trace-event
//!   JSON format (`chrome://tracing`, Perfetto): one lane per rank,
//!   stage spans, collective wait spans, task-queue events.
//! * [`metrics`] — log-bucketed latency histograms (p50/p95/p99 with
//!   bounded relative error) and gauges behind a string-keyed registry,
//!   used by the snapshot-serving query path; renders as JSON or
//!   Prometheus text exposition and persists at bucket fidelity.
//! * [`reqspan`] — the request-scoped counterpart to [`span`]: per-request
//!   stage timelines built concurrently on serving workers, a structured
//!   access-log line format, and a thread-safe keep-N-worst slow-query
//!   ring with JSON and Chrome-trace export.
//! * [`report`] — the structured run report: a pretty table for stderr
//!   plus a machine-readable JSON artifact, covering per-stage wall and
//!   virtual time, communication totals, per-stage load imbalance, and
//!   critical-path shares.
//! * [`json`] — the minimal JSON writer/parser the exporters share
//!   (no external dependencies anywhere in this crate).
//!
//! Nothing in this crate advances a virtual clock or charges work:
//! engine output is bit-identical with tracing enabled or disabled.

pub mod chrome;
pub mod json;
pub mod log;
pub mod metrics;
pub mod report;
pub mod reqspan;
pub mod span;

pub use log::Level;
pub use metrics::{Histogram, HistogramSummary, Registry};
pub use report::{RunReport, StageRow};
pub use reqspan::{ReqSpan, ReqTimeline, ReqTrace, SlowLog};
pub use span::{Event, Phase, RankTrace, SpanRecorder};
