//! Leveled, rank-prefixed logging.
//!
//! The level is read once per process from `INSPIRE_LOG`
//! (`error|warn|info|debug`, default `warn`); every line carries the
//! emitting rank so warnings from a `P>1` run are attributable even when
//! the rank threads interleave on stderr:
//!
//! ```text
//! [inspire r3 WARN] checkpoint write ckpt/ckpt_scan.isnap failed: ...
//! ```
//!
//! Use through the crate-level macros, which skip all formatting when the
//! level is disabled:
//!
//! ```
//! let rank = 3usize;
//! inspire_trace::log_warn!(rank, "checkpoint write {} failed", "x.isnap");
//! inspire_trace::log_info!(None, "no rank context here");
//! ```

use std::fmt;
use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
}

impl Level {
    /// Parse an `INSPIRE_LOG` value. Unknown strings return `None`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// Label as printed in the line prefix.
    pub fn label(&self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

static MAX_LEVEL: OnceLock<Level> = OnceLock::new();

/// The process-wide maximum level: `INSPIRE_LOG`, read once, default
/// [`Level::Warn`].
pub fn max_level() -> Level {
    *MAX_LEVEL.get_or_init(|| {
        std::env::var("INSPIRE_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Warn)
    })
}

/// Would a line at `level` be emitted?
#[inline]
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

/// Rank context for a log line: a bare `usize` or `None` outside any
/// rank (CLI front-end, test harness).
pub trait IntoRank {
    fn into_rank(self) -> Option<usize>;
}

impl IntoRank for usize {
    fn into_rank(self) -> Option<usize> {
        Some(self)
    }
}

impl IntoRank for Option<usize> {
    fn into_rank(self) -> Option<usize> {
        self
    }
}

/// Emit one line to stderr. Prefer the `log_*` macros, which check
/// [`enabled`] before formatting.
pub fn log(level: Level, rank: Option<usize>, args: fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    // One write_fmt per line so concurrent ranks cannot interleave
    // mid-line (eprintln! already locks stderr per call).
    match rank {
        Some(r) => eprintln!("[inspire r{r} {}] {args}", level.label()),
        None => eprintln!("[inspire {}] {args}", level.label()),
    }
}

#[macro_export]
macro_rules! log_error {
    ($rank:expr, $($arg:tt)+) => {
        $crate::log::log(
            $crate::log::Level::Error,
            $crate::log::IntoRank::into_rank($rank),
            format_args!($($arg)+),
        )
    };
}

#[macro_export]
macro_rules! log_warn {
    ($rank:expr, $($arg:tt)+) => {
        $crate::log::log(
            $crate::log::Level::Warn,
            $crate::log::IntoRank::into_rank($rank),
            format_args!($($arg)+),
        )
    };
}

#[macro_export]
macro_rules! log_info {
    ($rank:expr, $($arg:tt)+) => {
        $crate::log::log(
            $crate::log::Level::Info,
            $crate::log::IntoRank::into_rank($rank),
            format_args!($($arg)+),
        )
    };
}

#[macro_export]
macro_rules! log_debug {
    ($rank:expr, $($arg:tt)+) => {
        $crate::log::log(
            $crate::log::Level::Debug,
            $crate::log::IntoRank::into_rank($rank),
            format_args!($($arg)+),
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_levels() {
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse(" warning "), Some(Level::Warn));
        assert_eq!(Level::parse("Info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn severity_orders_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn rank_conversions() {
        assert_eq!(IntoRank::into_rank(5usize), Some(5));
        assert_eq!(IntoRank::into_rank(None), None);
        assert_eq!(IntoRank::into_rank(Some(2usize)), Some(2));
    }

    #[test]
    fn default_level_is_warn() {
        // The test process does not set INSPIRE_LOG.
        if std::env::var("INSPIRE_LOG").is_err() {
            assert_eq!(max_level(), Level::Warn);
            assert!(enabled(Level::Error));
            assert!(enabled(Level::Warn));
            assert!(!enabled(Level::Debug));
        }
    }
}
