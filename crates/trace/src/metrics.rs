//! Latency metrics: log-bucketed histograms and a string-keyed registry.
//!
//! [`Histogram`] is an HDR-style log-linear histogram over `u64` values
//! (nanoseconds, by convention): each power-of-two octave is split into
//! `2^SUB_BITS = 8` linear sub-buckets, so any reported quantile's bucket
//! upper bound is within `1/8 = 12.5%` of a value actually recorded into
//! that bucket; values below 8 are exact. Recording is two shifts and an
//! increment — cheap enough for the per-query serving path.
//!
//! Histograms merge by bucket-wise addition, and merged quantiles
//! *bracket* the per-shard quantiles: `quantile` returns the upper bound
//! of the first bucket whose cumulative count reaches `ceil(q·n)`, so
//! the merged value is `>=` the minimum and `<=` the maximum of the
//! shards' values for the same `q` (the property the proptest in
//! `tests/hist_props.rs` exercises).

use std::collections::BTreeMap;

/// Sub-bucket resolution: 8 linear buckets per power-of-two octave.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;

/// A log-bucketed histogram of `u64` values with ≤12.5% relative error.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    counts: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index for `v`: exact below `SUB`, then `SUB_BITS` linear
/// sub-buckets per octave above.
fn bucket_of(v: u64) -> u32 {
    if v < SUB {
        return v as u32;
    }
    let octave = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
    let sub = ((v >> (octave - SUB_BITS)) - SUB) as u32; // 0..SUB
    (octave - SUB_BITS + 1) * SUB as u32 + sub
}

/// Largest value mapping to `bucket` (inclusive upper bound).
fn upper_bound(bucket: u32) -> u64 {
    if bucket < SUB as u32 {
        return bucket as u64;
    }
    let octave = bucket / SUB as u32 + SUB_BITS - 1;
    let sub = (bucket % SUB as u32) as u64;
    // Start of the sub-bucket plus its width, minus one.
    ((SUB + sub) << (octave - SUB_BITS)) + (1u64 << (octave - SUB_BITS)) - 1
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            counts: BTreeMap::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        *self.counts.entry(bucket_of(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a duration in nanoseconds.
    pub fn record_ns(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the first bucket whose cumulative count reaches
    /// `ceil(q·count)` (clamped to at least 1). Returns 0 on an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (&bucket, &n) in &self.counts {
            cum += n;
            if cum >= target {
                return upper_bound(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Merge `other` into `self` bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        for (&bucket, &n) in &other.counts {
            *self.counts.entry(bucket).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot the standard percentiles under `name`.
    pub fn summarize(&self, name: &str) -> HistogramSummary {
        HistogramSummary {
            name: name.to_string(),
            count: self.count,
            sum_ns: self.sum.min(u64::MAX as u128) as u64,
            min_ns: self.min(),
            max_ns: self.max(),
            mean_ns: self.mean(),
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
        }
    }

    /// Serialize at full bucket fidelity (exact round trip through
    /// [`Histogram::from_persist`], so persisted histograms stay
    /// count-additive under [`Histogram::merge`]). Used by the ingest
    /// metrics sidecar to accumulate across processes.
    pub fn to_persist_json(&self) -> String {
        let mut s = format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max
        );
        for (i, (&b, &n)) in self.counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{b},{n}]"));
        }
        s.push_str("]}");
        s
    }

    /// Rebuild a histogram from its [`to_persist_json`](Self::to_persist_json)
    /// form (parsed). Sums above 2^53 lose f64 precision on the way
    /// through JSON; fine for the latency sidecars this serves.
    pub fn from_persist(v: &crate::json::Value) -> Result<Histogram, String> {
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(crate::json::Value::as_f64)
                .map(|f| f as u64)
                .ok_or_else(|| format!("histogram persist: missing {key}"))
        };
        let count = num("count")?;
        let sum = v
            .get("sum")
            .and_then(crate::json::Value::as_f64)
            .ok_or("histogram persist: missing sum")? as u128;
        let min = num("min")?;
        let max = num("max")?;
        let buckets = v
            .get("buckets")
            .and_then(crate::json::Value::as_arr)
            .ok_or("histogram persist: missing buckets")?;
        let mut counts = BTreeMap::new();
        let mut bucket_total = 0u64;
        for (i, pair) in buckets.iter().enumerate() {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("histogram persist: bucket {i} not a pair"))?;
            let b = pair[0].as_f64().ok_or("bad bucket index")? as u32;
            let n = pair[1].as_f64().ok_or("bad bucket count")? as u64;
            bucket_total += n;
            *counts.entry(b).or_insert(0) += n;
        }
        if bucket_total != count {
            return Err(format!(
                "histogram persist: bucket counts sum to {bucket_total}, count says {count}"
            ));
        }
        Ok(Histogram {
            counts,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        })
    }
}

/// Percentile snapshot of one histogram; nanosecond units by convention.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

/// Map a metric name onto the Prometheus charset `[a-zA-Z0-9_:]`,
/// replacing anything else (and a leading digit) with `_`.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render nanoseconds human-readably (`850ns`, `12.4µs`, `3.1ms`, `2.0s`).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

impl HistogramSummary {
    /// One JSON object per summary, e.g. for the run report's `queries`
    /// section.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\
             \"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
            crate::json::escape(&self.name),
            self.count,
            self.sum_ns,
            self.min_ns,
            self.max_ns,
            crate::json::num(self.mean_ns),
            self.p50_ns,
            self.p95_ns,
            self.p99_ns
        )
    }
}

/// A string-keyed registry of histograms and gauges. Not thread-safe by
/// design: each serving rank owns its own registry and summaries merge
/// after the run, mirroring how `CommStats` works.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    hists: BTreeMap<String, Histogram>,
    gauges: BTreeMap<String, f64>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Record `d` into histogram `name`, creating it on first use.
    pub fn observe(&mut self, name: &str, d: std::time::Duration) {
        self.hists.entry(name.to_string()).or_default().record_ns(d);
    }

    /// Time `f`, recording its duration into histogram `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.observe(name, start.elapsed());
        out
    }

    /// Set gauge `name` to `v` (last write wins).
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Ensure histogram `name` exists (empty until the first
    /// observation). Expositions call this so scrapes expose a stable
    /// family set from the very first request, instead of families
    /// popping into existence when their first sample lands.
    pub fn ensure(&mut self, name: &str) {
        self.hists.entry(name.to_string()).or_default();
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Summaries of all histograms, sorted by name.
    pub fn summaries(&self) -> Vec<HistogramSummary> {
        self.hists.iter().map(|(k, h)| h.summarize(k)).collect()
    }

    /// Merge `other` into `self`: same-named histograms merge bucket-wise
    /// (count-additive), gauges take `other`'s value on collision. The
    /// serving tier uses this to fold per-worker registries into one
    /// `/metrics` view without sharing mutable histograms across threads.
    pub fn merge(&mut self, other: &Registry) {
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
        for (name, &v) in &other.gauges {
            self.gauges.insert(name.clone(), v);
        }
    }

    /// Export the whole registry as one JSON object: histogram summaries
    /// under `"histograms"` (sorted by name) and gauges under `"gauges"`.
    /// This is the payload a serving `/metrics` endpoint returns; it
    /// round-trips through [`crate::json::parse`].
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"histograms\":[");
        for (i, sum) in self.summaries().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&sum.to_json());
        }
        s.push_str("],\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{}",
                crate::json::escape(k),
                crate::json::num(*v)
            ));
        }
        s.push_str("}}");
        s
    }

    /// Prometheus text exposition (format 0.0.4): each histogram as a
    /// `summary` metric — `{quantile="0.5|0.95|0.99"}` sample lines plus
    /// the `_sum`/`_count` pair that keeps scraped series count-additive
    /// across merges — and each gauge as a `gauge`. Histograms record
    /// nanoseconds; metrics named `*_seconds` are scaled to seconds on
    /// the way out, so the exposition speaks base units while the JSON
    /// views keep their `*_ns` fields.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, h) in &self.hists {
            let n = prom_name(name);
            let scale = if n.ends_with("_seconds") { 1e-9 } else { 1.0 };
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{n}{{quantile=\"{label}\"}} {}\n",
                    crate::json::num(h.quantile(q) as f64 * scale)
                ));
            }
            out.push_str(&format!(
                "{n}_sum {}\n",
                crate::json::num(h.sum() as f64 * scale)
            ));
            out.push_str(&format!("{n}_count {}\n", h.count()));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", crate::json::num(*v)));
        }
        out
    }

    /// Full-fidelity serialization: every histogram at bucket level (see
    /// [`Histogram::to_persist_json`]) plus gauges. Unlike
    /// [`to_json`](Self::to_json) this round-trips exactly, so a
    /// registry persisted by one process and reloaded by another keeps
    /// merging count-additively.
    pub fn to_persist_json(&self) -> String {
        let mut s = String::from("{\"histograms\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{}",
                crate::json::escape(name),
                h.to_persist_json()
            ));
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{}",
                crate::json::escape(k),
                crate::json::num(*v)
            ));
        }
        s.push_str("}}");
        s
    }

    /// Rebuild a registry from [`to_persist_json`](Self::to_persist_json).
    pub fn from_persist_json(s: &str) -> Result<Registry, String> {
        let doc = crate::json::parse(s)?;
        let mut reg = Registry::new();
        if let Some(crate::json::Value::Obj(hists)) = doc.get("histograms") {
            for (name, v) in hists {
                reg.hists.insert(name.clone(), Histogram::from_persist(v)?);
            }
        } else {
            return Err("registry persist: missing histograms".into());
        }
        if let Some(crate::json::Value::Obj(gauges)) = doc.get("gauges") {
            for (name, v) in gauges {
                let f = v
                    .as_f64()
                    .ok_or_else(|| format!("registry persist: gauge {name} not a number"))?;
                reg.gauges.insert(name.clone(), f);
            }
        } else {
            return Err("registry persist: missing gauges".into());
        }
        Ok(reg)
    }

    /// A `latency p50 p95 p99` table for stderr.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "metric", "count", "p50", "p95", "p99", "max"
        ));
        for s in self.summaries() {
            out.push_str(&format!(
                "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                s.name,
                s.count,
                fmt_ns(s.p50_ns as f64),
                fmt_ns(s.p95_ns as f64),
                fmt_ns(s.p99_ns as f64),
                fmt_ns(s.max_ns as f64)
            ));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k:<24} {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        for v in 0..SUB {
            assert_eq!(bucket_of(v), v as u32);
            assert_eq!(upper_bound(v as u32), v);
        }
        assert_eq!(h.count(), SUB);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), SUB - 1);
    }

    #[test]
    fn upper_bound_is_tight_and_monotone() {
        // Every value maps to a bucket whose upper bound is >= the value
        // and within 12.5% above it.
        for v in [8u64, 9, 15, 16, 100, 1_000, 123_456, u32::MAX as u64] {
            let ub = upper_bound(bucket_of(v));
            assert!(ub >= v, "ub({v}) = {ub} < v");
            assert!(
                (ub - v) as f64 <= v as f64 / 8.0 + 1.0,
                "ub({v}) = {ub} too loose"
            );
        }
        let mut prev = 0;
        for b in 0..200u32 {
            let ub = upper_bound(b);
            assert!(ub >= prev, "upper_bound not monotone at bucket {b}");
            prev = ub;
        }
    }

    #[test]
    fn bucket_of_and_upper_bound_agree() {
        // upper_bound(b) itself lands in bucket b.
        for b in 0..300u32 {
            assert_eq!(bucket_of(upper_bound(b)), b, "bucket {b}");
        }
    }

    #[test]
    fn quantiles_bound_recorded_values() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let p50 = h.quantile(0.5);
        assert!((500_000..=563_000).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((990_000..=1_114_000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1_000_000); // clamped to observed max
        assert_eq!(h.min(), 1000);
    }

    #[test]
    fn merge_adds_counts_and_preserves_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [10u64, 20, 30] {
            a.record(v);
        }
        for v in [1_000u64, 2_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 2_000);
        assert!(a.quantile(0.5) >= 30);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn registry_observe_and_render() {
        let mut r = Registry::new();
        for i in 1..=100u64 {
            r.observe("query.term", std::time::Duration::from_micros(i));
        }
        r.gauge("snapshot.docs", 1234.0);
        let sums = r.summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].count, 100);
        let table = r.render_table();
        assert!(table.contains("query.term"));
        assert!(table.contains("snapshot.docs"));
        let json = sums[0].to_json();
        crate::json::parse(&json).expect("summary JSON parses");
    }

    #[test]
    fn registry_merge_and_json_export() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        for i in 1..=10u64 {
            a.observe("serve.term", std::time::Duration::from_micros(i));
            b.observe("serve.term", std::time::Duration::from_micros(i * 100));
        }
        b.observe("serve.search", std::time::Duration::from_millis(1));
        a.gauge("cache.hits", 3.0);
        b.gauge("cache.hits", 7.0);
        a.merge(&b);
        let sums = a.summaries();
        assert_eq!(sums.len(), 2);
        let term = sums.iter().find(|s| s.name == "serve.term").unwrap();
        assert_eq!(term.count, 20);
        let json = a.to_json();
        let v = crate::json::parse(&json).expect("registry JSON parses");
        let hists = v.get("histograms").and_then(|h| h.as_arr()).unwrap();
        assert_eq!(hists.len(), 2);
        let gauges = v.get("gauges").unwrap();
        assert_eq!(gauges.get("cache.hits").and_then(|g| g.as_f64()), Some(7.0));
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(850.0), "850ns");
        assert_eq!(fmt_ns(12_400.0), "12.4µs");
        assert_eq!(fmt_ns(3_100_000.0), "3.1ms");
        assert_eq!(fmt_ns(2.0e9), "2.00s");
    }

    #[test]
    fn summary_carries_sum() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        let s = h.summarize("serve_request_seconds");
        assert_eq!(s.sum_ns, 400);
        let json = s.to_json();
        let v = crate::json::parse(&json).unwrap();
        assert_eq!(v.get("sum_ns").and_then(|x| x.as_f64()), Some(400.0));
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("serve_request_seconds"), "serve_request_seconds");
        assert_eq!(prom_name("serve.query"), "serve_query");
        assert_eq!(prom_name("9lives"), "_lives");
        assert_eq!(prom_name(""), "_");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut r = Registry::new();
        for i in 1..=100u64 {
            r.observe("serve_term_seconds", std::time::Duration::from_micros(i));
        }
        r.gauge("snapshot_generation", 3.0);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE serve_term_seconds summary\n"));
        assert!(text.contains("serve_term_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("serve_term_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("serve_term_seconds_count 100\n"));
        assert!(text.contains("# TYPE snapshot_generation gauge\nsnapshot_generation 3\n"));
        // _sum is scaled ns → s: 1+2+..+100 µs = 5050 µs = 0.00505 s.
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("serve_term_seconds_sum "))
            .unwrap();
        let v: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((v - 0.00505).abs() < 1e-9, "sum {v}");
        // Every sample line's metric family has a TYPE header.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let metric = line.split(['{', ' ']).next().unwrap();
            let family = metric
                .strip_suffix("_sum")
                .or_else(|| metric.strip_suffix("_count"))
                .unwrap_or(metric);
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "no TYPE for {metric}"
            );
        }
    }

    #[test]
    fn histogram_persist_round_trips_and_stays_additive() {
        let mut h = Histogram::new();
        for v in [1u64, 7, 100, 5_000, 1_000_000, u32::MAX as u64] {
            h.record(v);
        }
        let doc = crate::json::parse(&h.to_persist_json()).unwrap();
        let back = Histogram::from_persist(&doc).unwrap();
        assert_eq!(back, h);
        // Accumulate across a persist/load cycle: equals direct merging.
        let mut more = Histogram::new();
        more.record(42);
        let mut via_persist = back.clone();
        via_persist.merge(&more);
        let mut direct = h.clone();
        direct.merge(&more);
        assert_eq!(via_persist, direct);
        // Empty histogram round-trips too (min sentinel preserved).
        let empty_doc = crate::json::parse(&Histogram::new().to_persist_json()).unwrap();
        let empty = Histogram::from_persist(&empty_doc).unwrap();
        assert_eq!(empty, Histogram::new());
    }

    #[test]
    fn registry_persist_round_trips() {
        let mut r = Registry::new();
        r.observe("seal_latency_seconds", std::time::Duration::from_millis(12));
        r.observe("seal_latency_seconds", std::time::Duration::from_millis(30));
        r.gauge("snapshot_generation", 5.0);
        let s = r.to_persist_json();
        let back = Registry::from_persist_json(&s).unwrap();
        assert_eq!(
            back.histogram("seal_latency_seconds").map(|h| h.count()),
            Some(2)
        );
        assert_eq!(
            back.histogram("seal_latency_seconds"),
            r.histogram("seal_latency_seconds")
        );
        let gauges: Vec<_> = back.gauges().collect();
        assert_eq!(gauges, vec![("snapshot_generation", 5.0)]);
        assert!(Registry::from_persist_json("{}").is_err());
        assert!(Registry::from_persist_json("not json").is_err());
    }
}
