//! Chrome trace-event export.
//!
//! Converts per-rank [`RankTrace`]s into the JSON Object Format consumed
//! by `chrome://tracing` and Perfetto: one process (`pid: 0`), one
//! thread lane per rank (`tid: rank`), duration events (`ph: "B"/"E"`)
//! for stages and collectives, instants (`ph: "i"`) for point events.
//! The `ts` axis is the SPMD **virtual** clock in microseconds — the
//! timeline the paper's model reasons about — and each event carries the
//! host wall-clock microseconds in `args.wall_us` for correlation.
//!
//! Because the recorder is a drop-oldest ring, a drained trace can open
//! mid-span. Export reconciles this so the emitted file is always
//! balanced per lane: `End` events with no matching `Begin` are skipped,
//! and `Begin` events still open at the end of the lane get a synthetic
//! `End` at the lane's last timestamp.

use std::io::Write as _;
use std::path::Path;

use crate::json::{self, Value};
use crate::span::{Phase, RankTrace};

/// Render traces to a complete Chrome trace-event JSON document.
pub fn to_chrome_json(traces: &[RankTrace]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for trace in traces {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"rank {}\"}}}}",
                trace.rank, trace.rank
            ),
            &mut first,
        );
        let last_ts = trace.events.last().map(|e| e.virt_us).unwrap_or(0.0);
        // Names of spans currently open in this lane, for reconciliation.
        let mut open: Vec<(&'static str, &'static str)> = Vec::new();
        for ev in &trace.events {
            let ph = match ev.phase {
                Phase::Begin => {
                    open.push((ev.cat, ev.name));
                    "B"
                }
                Phase::End => {
                    // An End must close the innermost open Begin; a ring
                    // that dropped the Begin produces an orphan — skip it.
                    match open.last() {
                        Some(&(_, name)) if name == ev.name => {
                            open.pop();
                        }
                        _ => continue,
                    }
                    "E"
                }
                Phase::Instant => "i",
            };
            let scope = if ev.phase == Phase::Instant {
                ",\"s\":\"t\""
            } else {
                ""
            };
            push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{},\
                     \"pid\":0,\"tid\":{}{scope},\"args\":{{\"wall_us\":{}}}}}",
                    json::escape(ev.name),
                    json::escape(ev.cat),
                    json::num(ev.virt_us),
                    trace.rank,
                    json::num(ev.wall_us)
                ),
                &mut first,
            );
        }
        // Close any spans still open (their End fell past the drain).
        while let Some((cat, name)) = open.pop() {
            push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"E\",\"ts\":{},\
                     \"pid\":0,\"tid\":{},\"args\":{{\"synthetic\":true}}}}",
                    json::escape(name),
                    json::escape(cat),
                    json::num(last_ts),
                    trace.rank
                ),
                &mut first,
            );
        }
    }
    let dropped: u64 = traces.iter().map(|t| t.dropped).sum();
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!(
        "\"clock\":\"virtual_us\",\"ranks\":{},\"dropped_events\":{}",
        traces.len(),
        dropped
    ));
    out.push_str("}}\n");
    out
}

/// Write the Chrome trace for `traces` to `path`.
pub fn write_chrome_trace(path: &Path, traces: &[RankTrace]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_chrome_json(traces).as_bytes())
}

/// What [`validate_chrome_json`] learned about a well-formed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Distinct `tid` lanes seen (ranks).
    pub lanes: usize,
    /// Total `B`/`E` pairs across all lanes.
    pub spans: usize,
    /// Total `i` events.
    pub instants: usize,
}

/// Parse `s` as a Chrome trace-event document and check the invariants
/// our exporters guarantee: `traceEvents` is an array; per lane, every
/// `E` closes the innermost open `B` of the same name, every `B` is
/// closed, every `X` complete event (the request-timeline exporter in
/// [`crate::reqspan`] emits these) carries a non-negative `dur`, and
/// `ts` is monotone non-decreasing.
pub fn validate_chrome_json(s: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(s)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut lanes: Vec<(f64, Vec<String>)> = Vec::new(); // (last_ts, open stack) per tid
    let mut tids: Vec<i64> = Vec::new();
    let mut summary = TraceSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue; // metadata carries no ts
        }
        let tid = ev
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as i64;
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let lane = match tids.iter().position(|&t| t == tid) {
            Some(ix) => ix,
            None => {
                tids.push(tid);
                lanes.push((f64::NEG_INFINITY, Vec::new()));
                lanes.len() - 1
            }
        };
        let (last_ts, stack) = &mut lanes[lane];
        if ts < *last_ts {
            return Err(format!(
                "event {i} (tid {tid}): ts {ts} < previous {last_ts} — not monotone"
            ));
        }
        *last_ts = ts;
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => match stack.pop() {
                Some(top) if top == name => summary.spans += 1,
                Some(top) => {
                    return Err(format!(
                        "event {i} (tid {tid}): E \"{name}\" does not close innermost B \"{top}\""
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i} (tid {tid}): E \"{name}\" with no open B"
                    ))
                }
            },
            "i" => summary.instants += 1,
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i} (tid {tid}): X \"{name}\" without dur"))?;
                if dur < 0.0 {
                    return Err(format!(
                        "event {i} (tid {tid}): X \"{name}\" has negative dur {dur}"
                    ));
                }
                summary.spans += 1;
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    for (lane, (_, stack)) in lanes.iter().enumerate() {
        if let Some(open) = stack.last() {
            return Err(format!("tid {}: span \"{open}\" never closed", tids[lane]));
        }
    }
    summary.lanes = lanes.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Event, Phase};

    fn ev(name: &'static str, cat: &'static str, phase: Phase, virt_us: f64) -> Event {
        Event {
            name,
            cat,
            phase,
            virt_us,
            wall_us: virt_us / 10.0,
        }
    }

    fn trace(rank: usize, events: Vec<Event>) -> RankTrace {
        RankTrace {
            rank,
            events,
            dropped: 0,
        }
    }

    #[test]
    fn exports_balanced_lanes_that_validate() {
        let traces = vec![
            trace(
                0,
                vec![
                    ev("scan", "stage", Phase::Begin, 0.0),
                    ev("barrier", "collective", Phase::Begin, 10.0),
                    ev("barrier", "collective", Phase::End, 15.0),
                    ev("scan", "stage", Phase::End, 20.0),
                ],
            ),
            trace(
                1,
                vec![
                    ev("scan", "stage", Phase::Begin, 0.0),
                    ev("steal", "queue", Phase::Instant, 5.0),
                    ev("scan", "stage", Phase::End, 25.0),
                ],
            ),
        ];
        let s = to_chrome_json(&traces);
        let sum = validate_chrome_json(&s).expect("valid trace");
        assert_eq!(sum.lanes, 2);
        assert_eq!(sum.spans, 3);
        assert_eq!(sum.instants, 1);
    }

    #[test]
    fn ring_truncation_is_reconciled() {
        // Orphan End (its Begin was dropped by the ring) and an unclosed
        // Begin at the tail.
        let traces = vec![trace(
            0,
            vec![
                ev("scan", "stage", Phase::End, 5.0), // orphan: skipped
                ev("cluster", "stage", Phase::Begin, 6.0),
                ev("barrier", "collective", Phase::Begin, 8.0), // unclosed: synthesized
            ],
        )];
        let s = to_chrome_json(&traces);
        let sum = validate_chrome_json(&s).expect("reconciled trace validates");
        assert_eq!(sum.spans, 2); // cluster + barrier, both closed synthetically
        assert!(s.contains("\"synthetic\":true"));
    }

    #[test]
    fn validator_rejects_imbalance_and_time_travel() {
        let bad_balance = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome_json(bad_balance)
            .unwrap_err()
            .contains("never closed"));

        let bad_order = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":10,"pid":0,"tid":0},
            {"name":"a","ph":"E","ts":5,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome_json(bad_order)
            .unwrap_err()
            .contains("monotone"));

        let bad_nest = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":0,"tid":0},
            {"name":"b","ph":"B","ts":2,"pid":0,"tid":0},
            {"name":"a","ph":"E","ts":3,"pid":0,"tid":0},
            {"name":"b","ph":"E","ts":4,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome_json(bad_nest)
            .unwrap_err()
            .contains("innermost"));
    }

    #[test]
    fn complete_events_validate_and_require_dur() {
        let good = r#"{"traceEvents":[
            {"name":"request","ph":"X","ts":0,"dur":100,"pid":0,"tid":0},
            {"name":"parse","ph":"X","ts":0,"dur":10,"pid":0,"tid":0},
            {"name":"serialize","ph":"X","ts":10,"dur":90,"pid":0,"tid":0}
        ]}"#;
        let sum = validate_chrome_json(good).expect("X events validate");
        assert_eq!(sum.spans, 3);

        let no_dur = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome_json(no_dur)
            .unwrap_err()
            .contains("without dur"));

        let neg_dur = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0,"dur":-1,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome_json(neg_dur)
            .unwrap_err()
            .contains("negative dur"));
    }

    #[test]
    fn empty_trace_set_is_valid() {
        let s = to_chrome_json(&[]);
        let sum = validate_chrome_json(&s).unwrap();
        assert_eq!(sum, TraceSummary::default());
    }
}
