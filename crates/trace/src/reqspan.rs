//! Request-scoped span timelines and the slow-query ring.
//!
//! The [`span`](crate::span) recorder is per-rank and SPMD-oriented: one
//! ring per rank, drained after a batch run. A serving tier needs the
//! opposite shape — many short-lived timelines, one per request, built
//! concurrently on worker threads and retained only when interesting.
//! This module provides that shape:
//!
//! * [`ReqTrace`] — a tiny single-request builder. Stages are contiguous
//!   by construction (`begin` closes the previous stage) and measured on
//!   the host wall clock in microseconds from the request's first byte.
//! * [`ReqTimeline`] — the finished record: request id, route, status,
//!   cache hit/miss, live-view generation, bytes, and the stage spans.
//!   Renders as a JSON object, a one-line structured access-log entry,
//!   or (in bulk) a Chrome trace-event document using `ph: "X"` complete
//!   events, one lane per request.
//! * [`SlowLog`] — a thread-safe keep-N-worst ring. Admission is a
//!   lock-free floor check ([`SlowLog::would_admit`]), so the fast path
//!   for an unremarkable request is two atomic loads and no lock.
//!
//! Nothing here charges virtual time or perturbs results: timelines are
//! observational and the served bytes are identical with or without them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{self, Value};

/// One stage of a request timeline, in microseconds since request start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqSpan {
    pub name: &'static str,
    pub start_us: u64,
    pub dur_us: u64,
}

/// A finished per-request timeline.
#[derive(Debug, Clone)]
pub struct ReqTimeline {
    /// Process-unique request id (from the accept loop's counter).
    pub id: u64,
    /// Route path, e.g. `/query`.
    pub route: String,
    /// Full request target, e.g. `/query?q=a+AND+b&top=10`.
    pub detail: String,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// Whether the result cache answered it.
    pub cache_hit: bool,
    /// Live-view generation of the state the request executed against.
    pub generation: u64,
    /// Serving epoch (bumped by every hot swap) at execution time.
    pub epoch: u64,
    /// Response body bytes.
    pub bytes: u64,
    /// Wall time from first byte to response ready, microseconds.
    pub total_us: u64,
    /// Stage spans in start order.
    pub spans: Vec<ReqSpan>,
}

impl ReqTimeline {
    /// Total microseconds attributed to stage `name`.
    pub fn stage_us(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_us)
            .sum()
    }

    /// `(stage, summed micros)` in first-seen order.
    pub fn stages_us(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            match out.iter_mut().find(|(n, _)| *n == s.name) {
                Some((_, d)) => *d += s.dur_us,
                None => out.push((s.name, s.dur_us)),
            }
        }
        out
    }

    fn stages_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (name, us)) in self.stages_us().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{us}", json::escape(name)));
        }
        s.push('}');
        s
    }

    /// Full JSON object including the span list (the `/debug/slow` shape).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"id\":{},\"route\":\"{}\",\"detail\":\"{}\",\"status\":{},\
             \"cache_hit\":{},\"generation\":{},\"epoch\":{},\"bytes\":{},\
             \"total_us\":{},\"stages\":{},\"spans\":[",
            self.id,
            json::escape(&self.route),
            json::escape(&self.detail),
            self.status,
            self.cache_hit,
            self.generation,
            self.epoch,
            self.bytes,
            self.total_us,
            self.stages_json()
        );
        for (i, sp) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
                json::escape(sp.name),
                sp.start_us,
                sp.dur_us
            ));
        }
        s.push_str("]}");
        s
    }

    /// One structured access-log line (no trailing newline): the same
    /// fields as [`to_json`](Self::to_json) with stages flattened to a
    /// `name → micros` object and the span list dropped.
    pub fn access_line(&self) -> String {
        format!(
            "{{\"id\":{},\"route\":\"{}\",\"detail\":\"{}\",\"status\":{},\
             \"cache_hit\":{},\"generation\":{},\"epoch\":{},\"bytes\":{},\
             \"total_us\":{},\"stages\":{}}}",
            self.id,
            json::escape(&self.route),
            json::escape(&self.detail),
            self.status,
            self.cache_hit,
            self.generation,
            self.epoch,
            self.bytes,
            self.total_us,
            self.stages_json()
        )
    }
}

/// Render timelines as a Chrome trace-event document: one lane per
/// request, `ph: "X"` complete events (an enclosing `request` span plus
/// one per stage), `ts` in microseconds since that request's start.
/// Validates under [`crate::chrome::validate_chrome_json`].
pub fn timelines_to_chrome_json(timelines: &[ReqTimeline]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for (lane, t) in timelines.iter().enumerate() {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{lane},\
                 \"args\":{{\"name\":\"req {} {} ({}us)\"}}}}",
                t.id,
                json::escape(&t.detail),
                t.total_us
            ),
            &mut first,
        );
        push(
            format!(
                "{{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":0,\
                 \"dur\":{},\"pid\":0,\"tid\":{lane},\"args\":{{\"id\":{},\"status\":{},\
                 \"cache_hit\":{},\"generation\":{},\"epoch\":{},\"bytes\":{}}}}}",
                t.total_us, t.id, t.status, t.cache_hit, t.generation, t.epoch, t.bytes
            ),
            &mut first,
        );
        for sp in &t.spans {
            push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":{},\
                     \"dur\":{},\"pid\":0,\"tid\":{lane},\"args\":{{}}}}",
                    json::escape(sp.name),
                    sp.start_us,
                    sp.dur_us
                ),
                &mut first,
            );
        }
    }
    out.push_str(&format!(
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"clock\":\"request_us\",\
         \"requests\":{}}}}}\n",
        timelines.len()
    ));
    out
}

/// Parse one access-log line back into its field map (tests and tooling).
pub fn parse_access_line(line: &str) -> Result<Value, String> {
    json::parse(line)
}

/// Single-request timeline builder. Cheap: one `Instant` plus a small
/// `Vec`; all timestamps are microseconds relative to construction.
#[derive(Debug)]
pub struct ReqTrace {
    t0: Instant,
    open: Option<(&'static str, u64)>,
    spans: Vec<ReqSpan>,
}

impl Default for ReqTrace {
    fn default() -> Self {
        Self::start()
    }
}

impl ReqTrace {
    pub fn start() -> Self {
        ReqTrace {
            t0: Instant::now(),
            open: None,
            spans: Vec::with_capacity(6),
        }
    }

    /// Microseconds since the request started.
    pub fn mark(&self) -> u64 {
        (self.t0.elapsed().as_nanos() / 1_000).min(u64::MAX as u128) as u64
    }

    /// Open stage `name`, closing the currently open stage first —
    /// stages are contiguous by construction.
    pub fn begin(&mut self, name: &'static str) {
        self.end();
        self.open = Some((name, self.mark()));
    }

    /// Close the currently open stage, if any.
    pub fn end(&mut self) {
        if let Some((name, start)) = self.open.take() {
            let now = self.mark();
            self.spans.push(ReqSpan {
                name,
                start_us: start,
                dur_us: now.saturating_sub(start),
            });
        }
    }

    /// Record a stage measured externally (e.g. decode time attributed
    /// from inside query evaluation). Callers must push in start order.
    pub fn push_span(&mut self, name: &'static str, start_us: u64, dur_us: u64) {
        self.spans.push(ReqSpan {
            name,
            start_us,
            dur_us,
        });
    }

    /// Close any open stage and return `(spans, total_us)`.
    pub fn finish(mut self) -> (Vec<ReqSpan>, u64) {
        self.end();
        let total = self.mark();
        (self.spans, total)
    }
}

/// Thread-safe keep-N-worst ring of request timelines.
///
/// `threshold_us` is the static admission bar; once the ring is full the
/// bar rises to "worse than the current N-th worst" and is published in
/// `floor_us` so the hot path can reject without locking.
pub struct SlowLog {
    cap: usize,
    threshold_us: u64,
    floor_us: AtomicU64,
    ring: Mutex<Vec<ReqTimeline>>,
}

impl SlowLog {
    pub fn new(cap: usize, threshold_us: u64) -> Self {
        SlowLog {
            cap: cap.max(1),
            threshold_us,
            floor_us: AtomicU64::new(threshold_us),
            ring: Mutex::new(Vec::new()),
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Lock-free pre-check: would a request of `total_us` be retained?
    /// False means "definitely not" — the caller can skip building the
    /// timeline's retained copy without taking the ring lock.
    pub fn would_admit(&self, total_us: u64) -> bool {
        total_us >= self.floor_us.load(Ordering::Relaxed)
    }

    /// Offer a timeline; keeps the worst `cap` by `total_us`.
    pub fn offer(&self, t: ReqTimeline) {
        if t.total_us < self.threshold_us {
            return;
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.len() < self.cap {
            ring.push(t);
        } else {
            let (mi, _) = ring
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.total_us)
                .expect("ring non-empty at capacity");
            if t.total_us <= ring[mi].total_us {
                return;
            }
            ring[mi] = t;
        }
        if ring.len() == self.cap {
            let min = ring.iter().map(|r| r.total_us).min().unwrap_or(0);
            // Full ring: admission now requires beating the N-th worst.
            self.floor_us.store(
                min.saturating_add(1).max(self.threshold_us),
                Ordering::Relaxed,
            );
        }
    }

    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retained timelines, worst first.
    pub fn snapshot(&self) -> Vec<ReqTimeline> {
        let mut v = self.ring.lock().unwrap().clone();
        v.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.id.cmp(&b.id)));
        v
    }

    /// The `/debug/slow` JSON document.
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut s = format!(
            "{{\"retained\":{},\"capacity\":{},\"threshold_us\":{},\"slow\":[",
            snap.len(),
            self.cap,
            self.threshold_us
        );
        for (i, t) in snap.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&t.to_json());
        }
        s.push_str("]}\n");
        s
    }

    /// The `/debug/slow?format=chrome` document.
    pub fn to_chrome_json(&self) -> String {
        timelines_to_chrome_json(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::validate_chrome_json;

    fn tl(id: u64, total_us: u64) -> ReqTimeline {
        ReqTimeline {
            id,
            route: "/query".into(),
            detail: format!("/query?q=t{id}"),
            status: 200,
            cache_hit: false,
            generation: 3,
            epoch: 1,
            bytes: 42,
            total_us,
            spans: vec![
                ReqSpan {
                    name: "parse",
                    start_us: 0,
                    dur_us: total_us / 4,
                },
                ReqSpan {
                    name: "serialize",
                    start_us: total_us / 4,
                    dur_us: total_us - total_us / 4,
                },
            ],
        }
    }

    #[test]
    fn builder_produces_contiguous_spans() {
        let mut tr = ReqTrace::start();
        tr.begin("parse");
        tr.begin("cache_probe"); // closes parse
        std::thread::sleep(std::time::Duration::from_millis(1));
        let (spans, total) = tr.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "parse");
        assert_eq!(spans[1].name, "cache_probe");
        assert_eq!(spans[1].start_us, spans[0].start_us + spans[0].dur_us);
        assert!(spans[1].dur_us >= 1_000, "slept 1ms inside cache_probe");
        assert!(total >= spans[1].start_us + spans[1].dur_us);
    }

    #[test]
    fn timeline_json_and_access_line_parse() {
        let t = tl(7, 1000);
        let v = crate::json::parse(&t.to_json()).expect("timeline JSON parses");
        assert_eq!(v.get("id").and_then(|x| x.as_f64()), Some(7.0));
        assert_eq!(
            v.get("stages")
                .and_then(|s| s.get("parse"))
                .and_then(|x| x.as_f64()),
            Some(250.0)
        );
        let line = t.access_line();
        assert!(!line.contains('\n'));
        let v = parse_access_line(&line).expect("access line parses");
        assert_eq!(v.get("total_us").and_then(|x| x.as_f64()), Some(1000.0));
        assert!(v.get("spans").is_none(), "access line has no span list");
    }

    #[test]
    fn slow_log_keeps_n_worst() {
        let log = SlowLog::new(3, 0);
        for (id, us) in [(1, 50), (2, 500), (3, 10), (4, 300), (5, 700), (6, 5)] {
            if log.would_admit(us) {
                log.offer(tl(id, us));
            }
        }
        let snap = log.snapshot();
        let kept: Vec<u64> = snap.iter().map(|t| t.total_us).collect();
        assert_eq!(kept, vec![700, 500, 300]);
        // Once full, the lock-free floor rejects anything at-or-below min.
        assert!(!log.would_admit(300));
        assert!(log.would_admit(301));
    }

    #[test]
    fn slow_log_threshold_filters() {
        let log = SlowLog::new(8, 100);
        assert!(!log.would_admit(99));
        log.offer(tl(1, 99));
        log.offer(tl(2, 100));
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot()[0].id, 2);
    }

    #[test]
    fn chrome_export_validates() {
        let log = SlowLog::new(4, 0);
        log.offer(tl(1, 1000));
        log.offer(tl(2, 2000));
        let doc = log.to_chrome_json();
        let sum = validate_chrome_json(&doc).expect("slow-log chrome trace validates");
        assert_eq!(sum.lanes, 2);
        // One enclosing request span + two stage spans per lane.
        assert_eq!(sum.spans, 6);
        let json_doc = log.to_json();
        let v = crate::json::parse(&json_doc).expect("slow JSON parses");
        assert_eq!(v.get("retained").and_then(|x| x.as_f64()), Some(2.0));
    }
}
