//! Per-rank span recording.
//!
//! A [`SpanRecorder`] is owned by one rank (it is deliberately not
//! `Sync`, like the rank's clock) and collects [`Event`]s into a bounded
//! ring: when the buffer is full the **oldest** events are dropped and
//! counted, so a run can never exhaust memory by tracing. Every event
//! carries two timestamps:
//!
//! * `virt_us` — the rank's SPMD virtual clock (microseconds on the
//!   modeled cluster), the time axis the exported trace uses, and
//! * `wall_us` — host wall clock microseconds since the runtime's epoch,
//!   for correlating with real execution.
//!
//! Recording is a single branch when disabled and never touches the
//! virtual clock, so engine output is bit-identical with tracing on or
//! off.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::time::Instant;

/// Default per-rank event capacity (events, not bytes).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Trace-event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Duration span opens (`ph: "B"`).
    Begin,
    /// Duration span closes (`ph: "E"`).
    End,
    /// Point event (`ph: "i"`).
    Instant,
}

/// One recorded event. `name` and `cat` are `&'static str` so recording
/// never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Span or instant name (e.g. a stage label, `"barrier"`).
    pub name: &'static str,
    /// Category lane: `"stage"`, `"collective"`, `"queue"`, …
    pub cat: &'static str,
    /// Begin / End / Instant.
    pub phase: Phase,
    /// Virtual clock at the event, microseconds.
    pub virt_us: f64,
    /// Host wall clock at the event, microseconds since the run epoch.
    pub wall_us: f64,
}

/// The ring-buffered recorder one rank writes into.
pub struct SpanRecorder {
    enabled: bool,
    epoch: Instant,
    capacity: usize,
    buf: RefCell<VecDeque<Event>>,
    dropped: Cell<u64>,
}

impl SpanRecorder {
    /// A recorder that records nothing; [`SpanRecorder::record`] is a
    /// single branch.
    pub fn disabled() -> Self {
        SpanRecorder {
            enabled: false,
            epoch: Instant::now(),
            capacity: 0,
            buf: RefCell::new(VecDeque::new()),
            dropped: Cell::new(0),
        }
    }

    /// An enabled recorder. `epoch` should be shared by all ranks of one
    /// run so wall timestamps align across lanes.
    pub fn enabled_with(epoch: Instant, capacity: usize) -> Self {
        let capacity = capacity.max(16);
        SpanRecorder {
            enabled: true,
            epoch,
            capacity,
            buf: RefCell::new(VecDeque::with_capacity(capacity.min(4096))),
            dropped: Cell::new(0),
        }
    }

    /// Is this recorder collecting events?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event at `virt_seconds` on the virtual clock. A no-op
    /// when disabled.
    #[inline]
    pub fn record(&self, cat: &'static str, name: &'static str, phase: Phase, virt_seconds: f64) {
        if !self.enabled {
            return;
        }
        let wall_us = self.epoch.elapsed().as_secs_f64() * 1e6;
        let mut buf = self.buf.borrow_mut();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
        buf.push_back(Event {
            name,
            cat,
            phase,
            virt_us: virt_seconds * 1e6,
            wall_us,
        });
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }

    /// Drain the buffer into a sendable per-rank trace.
    pub fn take(&self, rank: usize) -> RankTrace {
        RankTrace {
            rank,
            events: self.buf.borrow_mut().drain(..).collect(),
            dropped: self.dropped.replace(0),
        }
    }
}

/// One rank's recorded events, in record order, safe to send across
/// threads once the run is over.
#[derive(Debug, Clone, Default)]
pub struct RankTrace {
    pub rank: usize,
    pub events: Vec<Event>,
    /// Oldest events overwritten by the ring while recording.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let r = SpanRecorder::disabled();
        r.record("stage", "scan", Phase::Begin, 0.0);
        r.record("stage", "scan", Phase::End, 1.0);
        assert!(r.is_empty());
        assert_eq!(r.take(0).events.len(), 0);
    }

    #[test]
    fn records_in_order_with_virtual_micros() {
        let r = SpanRecorder::enabled_with(Instant::now(), 64);
        r.record("stage", "scan", Phase::Begin, 0.5);
        r.record("collective", "barrier", Phase::Begin, 0.75);
        r.record("collective", "barrier", Phase::End, 1.0);
        r.record("stage", "scan", Phase::End, 1.25);
        let t = r.take(2);
        assert_eq!(t.rank, 2);
        assert_eq!(t.dropped, 0);
        let names: Vec<_> = t.events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["scan", "barrier", "barrier", "scan"]);
        assert_eq!(t.events[0].virt_us, 0.5e6);
        assert_eq!(t.events[3].virt_us, 1.25e6);
        // Wall stamps are monotone in record order.
        for w in t.events.windows(2) {
            assert!(w[0].wall_us <= w[1].wall_us);
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let r = SpanRecorder::enabled_with(Instant::now(), 16);
        for i in 0..40 {
            r.record("queue", "tick", Phase::Instant, i as f64);
        }
        let t = r.take(0);
        assert_eq!(t.events.len(), 16);
        assert_eq!(t.dropped, 24);
        // The survivors are the newest 16.
        assert_eq!(t.events[0].virt_us, 24.0e6);
        assert_eq!(t.events[15].virt_us, 39.0e6);
    }

    #[test]
    fn take_resets_the_buffer() {
        let r = SpanRecorder::enabled_with(Instant::now(), 64);
        r.record("stage", "scan", Phase::Instant, 1.0);
        assert_eq!(r.take(0).events.len(), 1);
        assert!(r.is_empty());
        assert_eq!(r.take(0).dropped, 0);
    }
}
