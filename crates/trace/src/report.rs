//! The structured run report.
//!
//! After a pipeline or bench run, the engine folds its per-rank timers,
//! wait accumulators, and comm counters into one [`RunReport`]: a row
//! per stage with virtual/wall time, load imbalance, wait-time share and
//! critical-path share, plus communication totals and (when the serving
//! path ran) query latency summaries. The report renders two ways — a
//! pretty table for stderr and machine-readable JSON for CI and the
//! bench history — from the same data, so the numbers can never drift
//! apart.
//!
//! The imbalance metrics follow the paper's Figure 9 load-balance
//! analysis. A stage's per-rank *elapsed* virtual time includes the time
//! spent blocked in collectives, and collectives synchronize the rank
//! clocks — so elapsed time is nearly identical across ranks and says
//! nothing about balance. Imbalance is therefore computed over *busy*
//! time (elapsed minus collective wait): `imbalance% = (max - min) / max`
//! over per-rank busy seconds. `wait share` is the fraction of the
//! slowest rank's elapsed stage time spent blocked in collectives, and
//! `critical share` is the stage's slowest-rank elapsed time as a
//! fraction of the whole critical path (the sum of per-stage maxima).

use std::fmt::Write as _;
use std::path::Path;

use crate::json;
use crate::metrics::{fmt_ns, HistogramSummary};

/// One stage's row in the report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageRow {
    pub name: String,
    /// Slowest rank's elapsed virtual seconds in this stage (includes
    /// time blocked in collectives).
    pub virt_max_s: f64,
    /// Fastest rank's elapsed virtual seconds.
    pub virt_min_s: f64,
    /// Sum over ranks of elapsed virtual seconds.
    pub virt_sum_s: f64,
    /// Slowest rank's busy (elapsed minus collective-wait) seconds.
    pub busy_max_s: f64,
    /// Fastest rank's busy seconds.
    pub busy_min_s: f64,
    /// Slowest rank's measured wall seconds in this stage.
    pub wall_max_s: f64,
    /// Slowest single rank's collective wait seconds attributed here.
    pub wait_max_s: f64,
    /// Sum over ranks of collective wait seconds attributed here.
    pub wait_sum_s: f64,
}

impl StageRow {
    /// `(max - min) / max` over per-rank busy time, in percent. Elapsed
    /// virtual time is collective-synchronized, so busy time is what
    /// actually varies across ranks.
    pub fn imbalance_pct(&self) -> f64 {
        if self.busy_max_s <= 0.0 {
            0.0
        } else {
            100.0 * (self.busy_max_s - self.busy_min_s) / self.busy_max_s
        }
    }

    /// Fraction of the slowest rank's elapsed stage time spent blocked
    /// in collectives, percent.
    pub fn wait_share_pct(&self) -> f64 {
        if self.virt_max_s > 0.0 {
            100.0 * self.wait_max_s / self.virt_max_s
        } else if self.wait_max_s > 0.0 {
            // Wait accrued outside any timed component scope.
            100.0
        } else {
            0.0
        }
    }

    fn to_json(&self, critical_total_s: f64) -> String {
        let critical_share = if critical_total_s > 0.0 {
            100.0 * self.virt_max_s / critical_total_s
        } else {
            0.0
        };
        format!(
            "{{\"name\":\"{}\",\"virt_max_s\":{},\"virt_min_s\":{},\"virt_sum_s\":{},\
             \"busy_max_s\":{},\"busy_min_s\":{},\
             \"wall_max_s\":{},\"wait_max_s\":{},\"wait_sum_s\":{},\
             \"imbalance_pct\":{},\"wait_share_pct\":{},\"critical_share_pct\":{}}}",
            json::escape(&self.name),
            json::num(self.virt_max_s),
            json::num(self.virt_min_s),
            json::num(self.virt_sum_s),
            json::num(self.busy_max_s),
            json::num(self.busy_min_s),
            json::num(self.wall_max_s),
            json::num(self.wait_max_s),
            json::num(self.wait_sum_s),
            json::num(self.imbalance_pct()),
            json::num(self.wait_share_pct()),
            json::num(critical_share)
        )
    }
}

/// Communication totals across all ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommTotals {
    pub messages: u64,
    pub bytes: u64,
}

/// The complete run report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// What ran, e.g. `"pipeline"` or `"bench-smoke"`.
    pub title: String,
    /// Free-form key/value context (P, docs, model, …), in insertion
    /// order.
    pub meta: Vec<(String, String)>,
    /// End-of-run virtual time (max over ranks), seconds.
    pub virtual_time_s: f64,
    /// End-of-run wall time, seconds.
    pub wall_time_s: f64,
    /// Per-stage rows, pipeline order.
    pub stages: Vec<StageRow>,
    pub comm: CommTotals,
    /// Query latency summaries, when the serving path ran.
    pub queries: Vec<HistogramSummary>,
}

impl RunReport {
    /// Sum of per-stage slowest-rank virtual time: the critical path the
    /// `critical_share_pct` column is relative to.
    pub fn critical_path_s(&self) -> f64 {
        self.stages.iter().map(|s| s.virt_max_s).sum()
    }

    /// The stage holding the largest critical-path share.
    pub fn critical_path_stage(&self) -> Option<&str> {
        self.stages
            .iter()
            .max_by(|a, b| a.virt_max_s.total_cmp(&b.virt_max_s))
            .map(|s| s.name.as_str())
    }

    /// Worst per-stage imbalance, percent.
    pub fn max_imbalance_pct(&self) -> f64 {
        self.stages
            .iter()
            .map(StageRow::imbalance_pct)
            .fold(0.0, f64::max)
    }

    /// Machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let critical = self.critical_path_s();
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"title\": \"{}\",", json::escape(&self.title));
        out.push_str("  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": \"{}\"", json::escape(k), json::escape(v));
        }
        out.push_str("},\n");
        let _ = writeln!(
            out,
            "  \"virtual_time_s\": {},\n  \"wall_time_s\": {},",
            json::num(self.virtual_time_s),
            json::num(self.wall_time_s)
        );
        let _ = writeln!(
            out,
            "  \"critical_path_s\": {},\n  \"critical_path_stage\": \"{}\",",
            json::num(critical),
            json::escape(self.critical_path_stage().unwrap_or(""))
        );
        let _ = writeln!(
            out,
            "  \"max_imbalance_pct\": {},",
            json::num(self.max_imbalance_pct())
        );
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {}{}",
                s.to_json(critical),
                if i + 1 < self.stages.len() { "," } else { "" }
            );
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"comm\": {{\"messages\": {}, \"bytes\": {}}},",
            self.comm.messages, self.comm.bytes
        );
        out.push_str("  \"queries\": [\n");
        for (i, q) in self.queries.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {}{}",
                q.to_json(),
                if i + 1 < self.queries.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON document to `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Pretty table for stderr.
    pub fn render_table(&self) -> String {
        let critical = self.critical_path_s();
        let mut out = String::new();
        let _ = writeln!(out, "=== run report: {} ===", self.title);
        for (k, v) in &self.meta {
            let _ = writeln!(out, "  {k}: {v}");
        }
        let _ = writeln!(
            out,
            "  virtual time: {:.6}s   wall time: {:.3}s   critical path: {:.6}s",
            self.virtual_time_s, self.wall_time_s, critical
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8}",
            "stage",
            "virt max(s)",
            "busy max(s)",
            "wall max(s)",
            "wait max(s)",
            "imbal%",
            "wait%",
            "crit%"
        );
        for s in &self.stages {
            let crit_pct = if critical > 0.0 {
                100.0 * s.virt_max_s / critical
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:<12} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>8.1} {:>8.1} {:>8.1}",
                s.name,
                s.virt_max_s,
                s.busy_max_s,
                s.wall_max_s,
                s.wait_max_s,
                s.imbalance_pct(),
                s.wait_share_pct(),
                crit_pct
            );
        }
        let _ = writeln!(
            out,
            "  comm: {} messages, {} bytes",
            self.comm.messages, self.comm.bytes
        );
        if !self.queries.is_empty() {
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>10} {:>10} {:>10}",
                "query", "count", "p50", "p95", "p99"
            );
            for q in &self.queries {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>8} {:>10} {:>10} {:>10}",
                    q.name,
                    q.count,
                    fmt_ns(q.p50_ns as f64),
                    fmt_ns(q.p95_ns as f64),
                    fmt_ns(q.p99_ns as f64)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            title: "pipeline".into(),
            meta: vec![("nprocs".into(), "4".into()), ("docs".into(), "100".into())],
            virtual_time_s: 2.5,
            wall_time_s: 0.8,
            stages: vec![
                StageRow {
                    name: "scan".into(),
                    virt_max_s: 1.0,
                    virt_min_s: 1.0,
                    virt_sum_s: 4.0,
                    busy_max_s: 0.75,
                    busy_min_s: 0.375,
                    wall_max_s: 0.3,
                    wait_max_s: 0.25,
                    wait_sum_s: 0.6,
                },
                StageRow {
                    name: "cluster".into(),
                    virt_max_s: 1.5,
                    virt_min_s: 1.5,
                    virt_sum_s: 6.0,
                    busy_max_s: 1.5,
                    busy_min_s: 1.5,
                    wall_max_s: 0.5,
                    wait_max_s: 0.0,
                    wait_sum_s: 0.0,
                },
            ],
            comm: CommTotals {
                messages: 42,
                bytes: 4096,
            },
            queries: vec![],
        }
    }

    #[test]
    fn imbalance_and_shares() {
        let r = sample();
        assert!((r.stages[0].imbalance_pct() - 50.0).abs() < 1e-9);
        assert!((r.stages[1].imbalance_pct() - 0.0).abs() < 1e-9);
        assert!((r.stages[0].wait_share_pct() - 25.0).abs() < 1e-9);
        assert!((r.critical_path_s() - 2.5).abs() < 1e-9);
        assert_eq!(r.critical_path_stage(), Some("cluster"));
        assert!((r.max_imbalance_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn json_parses_with_required_keys() {
        let r = sample();
        let doc = crate::json::parse(&r.to_json()).expect("report JSON parses");
        for key in [
            "title",
            "meta",
            "virtual_time_s",
            "wall_time_s",
            "critical_path_s",
            "critical_path_stage",
            "max_imbalance_pct",
            "stages",
            "comm",
            "queries",
        ] {
            assert!(doc.get(key).is_some(), "missing key {key}");
        }
        let stages = doc.get("stages").unwrap().as_arr().unwrap();
        assert_eq!(stages.len(), 2);
        for row in stages {
            for key in [
                "name",
                "virt_max_s",
                "busy_max_s",
                "wait_max_s",
                "imbalance_pct",
                "wait_share_pct",
                "critical_share_pct",
            ] {
                assert!(row.get(key).is_some(), "stage row missing {key}");
            }
        }
        let shares: f64 = stages
            .iter()
            .map(|s| s.get("critical_share_pct").unwrap().as_f64().unwrap())
            .sum();
        assert!((shares - 100.0).abs() < 1e-6);
    }

    #[test]
    fn table_mentions_every_stage() {
        let r = sample();
        let t = r.render_table();
        assert!(t.contains("scan"));
        assert!(t.contains("cluster"));
        assert!(t.contains("critical path"));
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport::default();
        assert_eq!(r.critical_path_stage(), None);
        assert_eq!(r.max_imbalance_pct(), 0.0);
        crate::json::parse(&r.to_json()).expect("empty report JSON parses");
        let _ = r.render_table();
    }
}
