//! Minimal JSON support shared by the exporters: string escaping for the
//! writers and a small recursive-descent parser used to validate emitted
//! artifacts (tests and CI re-parse every trace and report through this).
//!
//! This is deliberately not a general-purpose JSON library: it parses
//! the strict subset this workspace emits (UTF-8 text, `\uXXXX` escapes
//! decoded to the replacement character outside the BMP pair logic, no
//! tolerance for trailing garbage).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escape `s` as the *contents* of a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 the way our writers do: finite numbers only (NaN and
/// infinities become `null`, which JSON cannot represent).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.at,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.at
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.at += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.at + 5 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.at + 1..self.at + 5])
                                .map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(out));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.at,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(out));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.at,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, []], "c": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(a[2].as_arr().unwrap().len(), 0);
        assert!(matches!(v.get("c"), Some(Value::Obj(m)) if m.is_empty()));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Value::Str(nasty.into()));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""A""#).unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(1.5), "1.5");
    }
}
