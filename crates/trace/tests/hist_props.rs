//! Property-based tests for the log-bucketed latency histogram: merging
//! per-shard histograms must behave like one histogram over the union,
//! and quantile estimates must bound the true order statistics within
//! the bucketing's relative-error guarantee.

use inspire_trace::Histogram;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// A merged histogram's quantile lies between the smallest and
    /// largest per-shard quantile at the same rank fraction, up to one
    /// sub-bucket (12.5 %) above the largest: per-shard estimates are
    /// clamped to their own observed max, while the merged histogram
    /// only clamps to the merged max.
    #[test]
    fn merged_quantiles_bracket_shards(
        shards in prop::collection::vec(
            prop::collection::vec(1u64..1_000_000, 1..50),
            1..6,
        ),
    ) {
        let hists: Vec<Histogram> = shards.iter().map(|s| hist_of(s)).collect();
        let mut merged = Histogram::new();
        for h in &hists {
            merged.merge(h);
        }
        let total: u64 = shards.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(merged.count(), total);
        prop_assert_eq!(merged.min(), hists.iter().map(Histogram::min).min().unwrap());
        prop_assert_eq!(merged.max(), hists.iter().map(Histogram::max).max().unwrap());
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let m = merged.quantile(q);
            let lo = hists.iter().map(|h| h.quantile(q)).min().unwrap();
            let hi = hists.iter().map(|h| h.quantile(q)).max().unwrap();
            prop_assert!(
                lo <= m && m as f64 <= hi as f64 * 1.125,
                "q={q}: merged {m} outside [{lo}, {hi}·1.125]"
            );
        }
    }

    /// Merging is equivalent to recording the union of the values.
    #[test]
    fn merge_equals_union(
        a in prop::collection::vec(1u64..1_000_000, 0..50),
        b in prop::collection::vec(1u64..1_000_000, 0..50),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let union: Vec<u64> = a.iter().chain(&b).copied().collect();
        let direct = hist_of(&union);
        prop_assert_eq!(merged, direct);
    }

    /// The estimate never undershoots the true order statistic, and
    /// overshoots by at most one sub-bucket (≤ 12.5 % relative error).
    #[test]
    fn quantile_bounds_true_rank_value(
        values in prop::collection::vec(1u64..1_000_000, 1..200),
        qi in 0usize..5,
    ) {
        let q = [0.05, 0.25, 0.5, 0.95, 1.0][qi];
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let actual = sorted[rank - 1];
        let est = h.quantile(q);
        prop_assert!(est >= actual, "q={q}: estimate {est} < actual {actual}");
        prop_assert!(
            est as f64 <= actual as f64 * 1.125,
            "q={q}: estimate {est} overshoots actual {actual} by more than 12.5%"
        );
    }

    /// A single recorded value is reported exactly at every fraction.
    #[test]
    fn single_value_is_exact(v in 1u64..10_000_000, q in 0.0f64..1.0) {
        let h = hist_of(&[v]);
        prop_assert_eq!(h.quantile(q), v);
        prop_assert_eq!(h.quantile(1.0), v);
    }
}
