//! # intern — allocation-free term interning
//!
//! The engine's scan/remap hot path performs one vocabulary lookup per
//! token. Backing those lookups with `HashMap<String, _>` costs a heap
//! allocation per distinct term (the owned key), a SipHash pass per
//! probe, and pointer-chasing per string. This crate removes all three:
//!
//! * [`TermInterner`] — terms live contiguously in one byte **arena**;
//!   the map is a span-keyed open-addressing table hashed with a
//!   hand-rolled FxHash-style multiply-xor hasher. Interning an
//!   already-seen term is one hash pass and zero allocations; a new term
//!   appends its bytes to the arena (amortized, no per-term allocation).
//!   Ids are dense `0..len` in first-insertion order.
//! * [`TermTable`] — an immutable, lexicographically sorted term list in
//!   one arena with `O(log n)` string→id search and `O(1)` id→string
//!   access. This replaces `Vec<String>` vocabulary tables.
//!
//! Both structures are deterministic: no random hash seeds, iteration in
//! insertion (respectively sorted) order.

/// Multiplier of the FxHash-style hasher (the Firefox/rustc hash): a
/// single odd constant with good bit dispersion under wrapping multiply.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hash `bytes` by folding 8-byte words: `h = (rotl(h, 5) ^ w) * SEED`.
/// One multiply per word instead of SipHash's per-byte rounds; not
/// DoS-hardened, which is fine for trusted corpus-derived terms.
#[inline]
pub fn fxhash(bytes: &[u8]) -> u64 {
    #[inline]
    fn mix(h: u64, w: u64) -> u64 {
        (h.rotate_left(5) ^ w).wrapping_mul(FX_SEED)
    }
    let mut h = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        h = mix(h, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut w = 0u64;
        for (i, &b) in rest.iter().enumerate() {
            w |= (b as u64) << (8 * i);
        }
        // Fold the length in so "ab" and "ab\0" (as a padded word) differ.
        h = mix(h, w ^ ((bytes.len() as u64) << 56));
    } else {
        h = mix(h, bytes.len() as u64);
    }
    h
}

/// (arena offset, length) of one interned term.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: u32,
    len: u32,
}

/// A deterministic string interner: dense `u32` ids in insertion order,
/// term bytes in a single arena, lookups via span-keyed open addressing.
#[derive(Debug, Clone, Default)]
pub struct TermInterner {
    arena: Vec<u8>,
    spans: Vec<Span>,
    /// Open-addressing table of `id + 1` (0 = empty). Power-of-two size.
    table: Vec<u32>,
}

impl TermInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size for about `terms` distinct terms of `avg_len` bytes.
    pub fn with_capacity(terms: usize, avg_len: usize) -> Self {
        let mut s = TermInterner {
            arena: Vec::with_capacity(terms * avg_len),
            spans: Vec::with_capacity(terms),
            table: Vec::new(),
        };
        s.rebuild_table(terms);
        s
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The bytes of term `id`.
    #[inline]
    pub fn bytes(&self, id: u32) -> &[u8] {
        let s = self.spans[id as usize];
        &self.arena[s.start as usize..(s.start + s.len) as usize]
    }

    /// The term `id` as `&str` (terms are interned from `&str`, so the
    /// arena holds valid UTF-8).
    #[inline]
    pub fn get(&self, id: u32) -> &str {
        std::str::from_utf8(self.bytes(id)).expect("interner arena holds UTF-8")
    }

    /// Terms in insertion (id) order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.spans.len() as u32).map(|id| self.get(id))
    }

    #[inline]
    fn mask(&self) -> usize {
        self.table.len() - 1
    }

    /// Grow (or create) the table for at least `want` entries and rehash
    /// every span. Capacity stays a power of two at < 50% load.
    fn rebuild_table(&mut self, want: usize) {
        let cap = (want.max(8) * 2).next_power_of_two();
        self.table = vec![0u32; cap];
        let mask = cap - 1;
        for (i, s) in self.spans.iter().enumerate() {
            let bytes = &self.arena[s.start as usize..(s.start + s.len) as usize];
            let mut at = (fxhash(bytes) as usize) & mask;
            while self.table[at] != 0 {
                at = (at + 1) & mask;
            }
            self.table[at] = i as u32 + 1;
        }
    }

    /// Intern `term`: returns `(id, newly_inserted)`. Exactly one hash
    /// pass; an existing term allocates nothing.
    pub fn intern(&mut self, term: &str) -> (u32, bool) {
        self.intern_hashed(term, fxhash(term.as_bytes()))
    }

    /// [`TermInterner::intern`] with the caller supplying
    /// `fxhash(term.as_bytes())` — for hot paths that probe several
    /// interner-backed sets with one hash computation (the single-pass
    /// tokenizer shares one hash between the stopword set and the
    /// vocabulary).
    #[inline]
    pub fn intern_hashed(&mut self, term: &str, hash: u64) -> (u32, bool) {
        debug_assert_eq!(hash, fxhash(term.as_bytes()), "caller-supplied hash");
        if self.table.is_empty() || self.spans.len() * 2 >= self.table.len() {
            self.rebuild_table(self.spans.len() + 1);
        }
        let bytes = term.as_bytes();
        let mask = self.mask();
        let mut at = (hash as usize) & mask;
        loop {
            match self.table[at] {
                0 => break,
                slot => {
                    if self.bytes(slot - 1) == bytes {
                        return (slot - 1, false);
                    }
                    at = (at + 1) & mask;
                }
            }
        }
        let id = self.spans.len() as u32;
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(bytes);
        self.spans.push(Span {
            start,
            len: bytes.len() as u32,
        });
        self.table[at] = id + 1;
        (id, true)
    }

    /// Id of `term` if present; one hash pass, zero allocations.
    #[inline]
    pub fn lookup(&self, term: &str) -> Option<u32> {
        self.lookup_bytes(term.as_bytes())
    }

    /// Byte-keyed variant of [`TermInterner::lookup`].
    #[inline]
    pub fn lookup_bytes(&self, bytes: &[u8]) -> Option<u32> {
        self.lookup_bytes_hashed(bytes, fxhash(bytes))
    }

    /// [`TermInterner::lookup_bytes`] with the caller supplying
    /// `fxhash(bytes)` (see [`TermInterner::intern_hashed`]).
    #[inline]
    pub fn lookup_bytes_hashed(&self, bytes: &[u8], hash: u64) -> Option<u32> {
        debug_assert_eq!(hash, fxhash(bytes), "caller-supplied hash");
        if self.table.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut at = (hash as usize) & mask;
        loop {
            match self.table[at] {
                0 => return None,
                slot => {
                    if self.bytes(slot - 1) == bytes {
                        return Some(slot - 1);
                    }
                    at = (at + 1) & mask;
                }
            }
        }
    }
}

/// An immutable, lexicographically sorted term list: one byte arena plus
/// an offset table. `table[i]` is the term with canonical id `i`;
/// [`TermTable::position`] finds a term's id by binary search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TermTable {
    arena: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` spans term `i`; length `len + 1`.
    offsets: Vec<u32>,
}

impl TermTable {
    /// Build from terms already in ascending order (callers sort; the
    /// engine's canonical vocabulary is sorted collectively).
    pub fn from_sorted<'a>(terms: impl IntoIterator<Item = &'a str>) -> Self {
        let mut arena = Vec::new();
        let mut offsets = vec![0u32];
        for t in terms {
            arena.extend_from_slice(t.as_bytes());
            offsets.push(arena.len() as u32);
        }
        debug_assert!(
            (1..offsets.len().saturating_sub(1)).all(|i| {
                let a = &arena[offsets[i - 1] as usize..offsets[i] as usize];
                let b = &arena[offsets[i] as usize..offsets[i + 1] as usize];
                a <= b
            }),
            "TermTable input must be sorted"
        );
        TermTable { arena, offsets }
    }

    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The term with canonical id `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        std::str::from_utf8(&self.arena[lo..hi]).expect("term table arena holds UTF-8")
    }

    /// Canonical id of `term`, if present (binary search).
    pub fn position(&self, term: &str) -> Option<usize> {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.get(mid).cmp(term) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Terms in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The raw term arena, for serialization. Together with
    /// [`TermTable::offsets`] this is the table's entire state.
    pub fn arena_bytes(&self) -> &[u8] {
        &self.arena
    }

    /// The offset table (`len + 1` entries, `offsets[i]..offsets[i+1]`
    /// spans term `i`), for serialization.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Rebuild a table from a serialized arena and offset table,
    /// validating every invariant [`TermTable::from_sorted`] guarantees:
    /// offsets start at 0, end at the arena length, are non-decreasing,
    /// every span is valid UTF-8, and terms are strictly ascending.
    pub fn from_parts(arena: Vec<u8>, offsets: Vec<u32>) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("offset table is empty (needs at least [0])".into());
        }
        if offsets[0] != 0 {
            return Err(format!("offset table starts at {}, not 0", offsets[0]));
        }
        if *offsets.last().unwrap() as usize != arena.len() {
            return Err(format!(
                "offset table ends at {} but the arena has {} bytes",
                offsets.last().unwrap(),
                arena.len()
            ));
        }
        for (i, w) in offsets.windows(2).enumerate() {
            if w[0] > w[1] {
                return Err(format!("offsets decrease at term {i}: {} > {}", w[0], w[1]));
            }
            if std::str::from_utf8(&arena[w[0] as usize..w[1] as usize]).is_err() {
                return Err(format!("term {i} is not valid UTF-8"));
            }
        }
        let t = TermTable { arena, offsets };
        for i in 1..t.len() {
            if t.get(i - 1) >= t.get(i) {
                return Err(format!(
                    "terms not strictly ascending at {i}: `{}` >= `{}`",
                    t.get(i - 1),
                    t.get(i)
                ));
            }
        }
        Ok(t)
    }
}

impl std::ops::Index<usize> for TermTable {
    type Output = str;
    fn index(&self, i: usize) -> &str {
        self.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dense_ids_in_insertion_order() {
        let mut it = TermInterner::new();
        assert_eq!(it.intern("protein"), (0, true));
        assert_eq!(it.intern("kinase"), (1, true));
        assert_eq!(it.intern("protein"), (0, false));
        assert_eq!(it.len(), 2);
        assert_eq!(it.get(0), "protein");
        assert_eq!(it.get(1), "kinase");
        assert_eq!(it.iter().collect::<Vec<_>>(), vec!["protein", "kinase"]);
    }

    #[test]
    fn lookup_without_insert() {
        let mut it = TermInterner::new();
        assert_eq!(it.lookup("x"), None);
        it.intern("x");
        assert_eq!(it.lookup("x"), Some(0));
        assert_eq!(it.lookup("y"), None);
    }

    #[test]
    fn survives_growth_and_collisions() {
        let mut it = TermInterner::new();
        let words: Vec<String> = (0..5000).map(|i| format!("term{i}")).collect();
        for (i, w) in words.iter().enumerate() {
            assert_eq!(it.intern(w), (i as u32, true));
        }
        // Every term still resolves after many table rebuilds.
        for (i, w) in words.iter().enumerate() {
            assert_eq!(it.lookup(w), Some(i as u32), "{w}");
            assert_eq!(it.get(i as u32), w);
        }
        assert_eq!(it.len(), 5000);
    }

    #[test]
    fn empty_and_embedded_terms_distinct() {
        let mut it = TermInterner::new();
        let (a, _) = it.intern("ab");
        let (b, _) = it.intern("abc");
        let (c, _) = it.intern("");
        assert!(a != b && b != c && a != c);
        assert_eq!(it.lookup(""), Some(c));
        assert_eq!(it.get(c), "");
    }

    #[test]
    fn fxhash_is_stable_and_length_sensitive() {
        // Pin values so shard placement / table layouts never change
        // silently across toolchains.
        assert_eq!(fxhash(b"protein"), fxhash(b"protein"));
        assert_ne!(fxhash(b"abc"), fxhash(b"acb"));
        assert_ne!(fxhash(b"a"), fxhash(b"a\0"));
        assert_ne!(fxhash(b""), fxhash(b"\0"));
        assert_ne!(fxhash(b"12345678"), fxhash(b"123456780"));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = TermInterner::new();
        let mut b = TermInterner::with_capacity(100, 8);
        for w in ["alpha", "beta", "alpha", "gamma"] {
            assert_eq!(a.intern(w), b.intern(w));
        }
    }

    #[test]
    fn clone_is_independent() {
        let mut a = TermInterner::new();
        a.intern("one");
        let mut b = a.clone();
        b.intern("two");
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(a.lookup("two"), None);
    }

    #[test]
    fn table_roundtrip_and_search() {
        let mut terms: Vec<String> = (0..500).map(|i| format!("w{i:04}")).collect();
        terms.sort();
        let t = TermTable::from_sorted(terms.iter().map(|s| s.as_str()));
        assert_eq!(t.len(), 500);
        for (i, w) in terms.iter().enumerate() {
            assert_eq!(t.get(i), w);
            assert_eq!(&t[i], w.as_str());
            assert_eq!(t.position(w), Some(i));
        }
        assert_eq!(t.position("zzz"), None);
        assert_eq!(t.position(""), None);
    }

    #[test]
    fn table_empty() {
        let t = TermTable::from_sorted(std::iter::empty());
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.position("x"), None);
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn table_parts_roundtrip() {
        let t = TermTable::from_sorted(["apple", "banana", "cherry"]);
        let back = TermTable::from_parts(t.arena_bytes().to_vec(), t.offsets().to_vec()).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.position("banana"), Some(1));

        let empty = TermTable::from_sorted(std::iter::empty());
        let back =
            TermTable::from_parts(empty.arena_bytes().to_vec(), empty.offsets().to_vec()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn from_parts_rejects_malformed_input() {
        // Empty offset table.
        assert!(TermTable::from_parts(vec![], vec![]).is_err());
        // First offset not zero.
        assert!(TermTable::from_parts(b"ab".to_vec(), vec![1, 2]).is_err());
        // Last offset disagrees with arena length.
        assert!(TermTable::from_parts(b"ab".to_vec(), vec![0, 1]).is_err());
        // Decreasing offsets.
        assert!(TermTable::from_parts(b"ab".to_vec(), vec![0, 2, 1, 2]).is_err());
        // Invalid UTF-8 span.
        assert!(TermTable::from_parts(vec![0xFF, 0xFE], vec![0, 2]).is_err());
        // Unsorted terms.
        assert!(TermTable::from_parts(b"ba".to_vec(), vec![0, 1, 2]).is_err());
        // Duplicate terms (must be strictly ascending).
        assert!(TermTable::from_parts(b"aa".to_vec(), vec![0, 1, 2]).is_err());
    }

    #[test]
    fn table_iter_sorted() {
        let t = TermTable::from_sorted(["apple", "banana", "cherry"]);
        let v: Vec<&str> = t.iter().collect();
        assert_eq!(v, vec!["apple", "banana", "cherry"]);
        for w in v.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
