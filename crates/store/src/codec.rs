//! Block-compressed sorted-pair lists: varint/delta encoding with
//! block-aligned skip pointers.
//!
//! A *list* is a sequence of `(key, val)` pairs with non-decreasing
//! `u32` keys (the engine stores postings as `(doc_id, freq·8+field)`).
//! The encoder splits it into blocks of [`BLOCK_LEN`] pairs; each block
//! stores the key *gaps* (first gap relative to the previous block's
//! last key, or to 0 for the first block) as LEB128 varints, followed by
//! the values as varints. Sorted keys make gaps small, so a typical
//! posting costs 2–3 bytes instead of the fixed-width 8.
//!
//! One [`skip entry`](skip_entry) per block packs the block's last key
//! and the byte offset one past the block's end (both relative to the
//! list): `last_key | end_off << 32`. [`seek_block`] binary-searches
//! them, so an intersection can jump straight to the first block that
//! can contain a doc id ≥ some bound and decode only from there, and
//! any block can be decoded independently — its starting byte offset
//! and base key are the previous entry's `end_off` and `last_key`.
//!
//! Decoding batches through [`read_varints_u32`], whose fast path
//! notices eight consecutive one-byte varints with a single `u64` load
//! and mask — the common case for gap streams — and decodes them
//! without per-byte branching.

use std::io;

/// Pairs per block; also the skip-pointer granularity.
pub const BLOCK_LEN: usize = 128;

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------------
// Varints (LEB128)
// ---------------------------------------------------------------------------

/// Append a `u32` as an LEB128 varint (1–5 bytes).
pub fn write_u32(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Append a `u64` as an LEB128 varint (1–10 bytes).
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read one `u32` varint at `*at`, advancing it.
pub fn read_u32(bytes: &[u8], at: &mut usize) -> io::Result<u32> {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*at)
            .ok_or_else(|| bad(format!("varint truncated at byte {}", *at)))?;
        *at += 1;
        let low = (b & 0x7F) as u32;
        if shift == 28 && (b & 0x7F) > 0x0F {
            return Err(bad(format!("varint overflows u32 at byte {}", *at - 1)));
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 28 {
            return Err(bad(format!("varint longer than 5 bytes at byte {}", *at)));
        }
    }
}

/// Read one `u64` varint at `*at`, advancing it.
pub fn read_u64(bytes: &[u8], at: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*at)
            .ok_or_else(|| bad(format!("varint truncated at byte {}", *at)))?;
        *at += 1;
        let low = (b & 0x7F) as u64;
        if shift == 63 && (b & 0x7F) > 1 {
            return Err(bad(format!("varint overflows u64 at byte {}", *at - 1)));
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(bad(format!("varint longer than 10 bytes at byte {}", *at)));
        }
    }
}

/// Decode `n` `u32` varints into `out`, advancing `*at`.
///
/// Fast path: when at least eight values remain and the next eight
/// bytes all have the continuation bit clear (one `u64` load + mask),
/// they are eight complete varints — decoded branch-free. Gap streams
/// of dense posting lists hit this almost every iteration.
pub fn read_varints_u32(
    bytes: &[u8],
    at: &mut usize,
    n: usize,
    out: &mut Vec<u32>,
) -> io::Result<()> {
    out.reserve(n);
    let mut i = 0;
    while i < n {
        if i + 8 <= n && *at + 8 <= bytes.len() {
            let w = u64::from_le_bytes(bytes[*at..*at + 8].try_into().unwrap());
            if w & 0x8080_8080_8080_8080 == 0 {
                out.push((w & 0x7F) as u32);
                out.push((w >> 8 & 0x7F) as u32);
                out.push((w >> 16 & 0x7F) as u32);
                out.push((w >> 24 & 0x7F) as u32);
                out.push((w >> 32 & 0x7F) as u32);
                out.push((w >> 40 & 0x7F) as u32);
                out.push((w >> 48 & 0x7F) as u32);
                out.push((w >> 56 & 0x7F) as u32);
                *at += 8;
                i += 8;
                continue;
            }
            // Mixed window: decode the next eight values scalar before
            // probing again, so a stream of multi-byte varints pays one
            // failed probe per eight values, not one per value.
            for _ in 0..8 {
                out.push(read_u32(bytes, at)?);
            }
            i += 8;
            continue;
        }
        out.push(read_u32(bytes, at)?);
        i += 1;
    }
    Ok(())
}

/// Decode `n` `u32` varints one at a time — the reference decoder the
/// unrolled path is benchmarked and property-tested against.
pub fn read_varints_u32_scalar(
    bytes: &[u8],
    at: &mut usize,
    n: usize,
    out: &mut Vec<u32>,
) -> io::Result<()> {
    out.reserve(n);
    for _ in 0..n {
        out.push(read_u32(bytes, at)?);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Skip entries
// ---------------------------------------------------------------------------

/// Pack a skip entry: the block's last key and the byte offset one past
/// the block's end, both relative to the start of the list.
pub fn skip_entry(last_key: u32, end_off: u32) -> u64 {
    last_key as u64 | (end_off as u64) << 32
}

/// The block's last (maximum) key.
pub fn skip_last_key(entry: u64) -> u32 {
    entry as u32
}

/// Byte offset one past the block's end, relative to the list start.
pub fn skip_end_off(entry: u64) -> u32 {
    (entry >> 32) as u32
}

/// Index of the first block whose last key is ≥ `min_key` — the first
/// block that can contain a pair with `key ≥ min_key`. Returns
/// `skips.len()` when every key in the list is smaller.
pub fn seek_block(skips: &[u64], min_key: u32) -> usize {
    skips.partition_point(|&e| skip_last_key(e) < min_key)
}

// ---------------------------------------------------------------------------
// List encode / decode
// ---------------------------------------------------------------------------

/// Encode `pairs` (keys non-decreasing) onto `out`, appending one skip
/// entry per block to `skips`. Skip offsets are relative to the list
/// start (`out.len()` at entry), so lists can be concatenated.
/// Returns the encoded byte length of this list.
pub fn encode_list(pairs: &[(u32, u32)], out: &mut Vec<u8>, skips: &mut Vec<u64>) -> usize {
    debug_assert!(
        pairs.windows(2).all(|w| w[0].0 <= w[1].0),
        "keys must be non-decreasing"
    );
    let base = out.len();
    let mut prev = 0u32;
    for block in pairs.chunks(BLOCK_LEN) {
        for &(k, _) in block {
            write_u32(out, k - prev);
            prev = k;
        }
        for &(_, v) in block {
            write_u32(out, v);
        }
        skips.push(skip_entry(prev, (out.len() - base) as u32));
    }
    out.len() - base
}

/// Decode one block of `count` pairs from `bytes[*at..]`, gaps based at
/// `prev_key`, appending to `out`. Advances `*at`.
pub fn decode_block(
    bytes: &[u8],
    at: &mut usize,
    count: usize,
    prev_key: u32,
    out: &mut Vec<(u32, u32)>,
) -> io::Result<()> {
    let mut gaps = Vec::with_capacity(count);
    read_varints_u32(bytes, at, count, &mut gaps)?;
    let mut vals = Vec::with_capacity(count);
    read_varints_u32(bytes, at, count, &mut vals)?;
    let mut key = prev_key;
    for (g, v) in gaps.into_iter().zip(vals) {
        key = key
            .checked_add(g)
            .ok_or_else(|| bad("key gap overflows u32".into()))?;
        out.push((key, v));
    }
    Ok(())
}

/// Decode a whole list of `n` pairs from `bytes`, appending to `out`.
/// Fails (without panicking) on truncated or malformed input; the store
/// CRCs make that unreachable for sections that validated at open.
pub fn decode_list(bytes: &[u8], n: usize, out: &mut Vec<(u32, u32)>) -> io::Result<()> {
    let mut at = 0usize;
    let mut prev = 0u32;
    let mut done = 0usize;
    out.reserve(n);
    while done < n {
        let count = (n - done).min(BLOCK_LEN);
        let before = out.len();
        decode_block(bytes, &mut at, count, prev, out)?;
        prev = out.last().map(|&(k, _)| k).unwrap_or(prev);
        debug_assert_eq!(out.len() - before, count);
        done += count;
    }
    if at != bytes.len() {
        return Err(bad(format!(
            "list has {} trailing bytes after {n} pairs",
            bytes.len() - at
        )));
    }
    Ok(())
}

/// Decode only the pairs with `key ≥ min_key`, using `skips` to jump
/// over whole blocks (`skips` must be the entries [`encode_list`]
/// produced for this list, or empty for a single-block list). Appends
/// to `out`; pairs from the first decoded block with smaller keys are
/// filtered out, so the result is exactly the tail of the full list.
pub fn decode_from(
    bytes: &[u8],
    n: usize,
    skips: &[u64],
    min_key: u32,
    out: &mut Vec<(u32, u32)>,
) -> io::Result<()> {
    if skips.is_empty() {
        // Single block (or the caller stored no skips): decode and trim.
        let from = out.len();
        decode_list(bytes, n, out)?;
        retain_from(out, from, min_key);
        return Ok(());
    }
    debug_assert_eq!(skips.len(), n.div_ceil(BLOCK_LEN));
    let first = seek_block(skips, min_key);
    if first >= skips.len() {
        return Ok(());
    }
    let mut at = if first == 0 {
        0
    } else {
        skip_end_off(skips[first - 1]) as usize
    };
    let mut prev = if first == 0 {
        0
    } else {
        skip_last_key(skips[first - 1])
    };
    let from = out.len();
    for (b, &entry) in skips.iter().enumerate().skip(first) {
        let count = (n - b * BLOCK_LEN).min(BLOCK_LEN);
        decode_block(bytes, &mut at, count, prev, out)?;
        prev = skip_last_key(entry);
    }
    retain_from(out, from, min_key);
    Ok(())
}

/// Drop pairs with `key < min_key` from `v[from..]` — they can only be
/// a prefix of that range because keys are sorted.
fn retain_from(v: &mut Vec<(u32, u32)>, from: usize, min_key: u32) {
    let skip = v[from..].partition_point(|&(k, _)| k < min_key);
    if skip > 0 {
        v.drain(from..from + skip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: usize, gap_stride: u32) -> Vec<(u32, u32)> {
        let mut key = 0u32;
        (0..n)
            .map(|i| {
                key += (i as u32 * 7 + 1) % gap_stride + 1;
                (key, (i as u32 * 13) % 300)
            })
            .collect()
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        let mut buf = Vec::new();
        let vals = [0u32, 1, 0x7F, 0x80, 0x3FFF, 0x4000, 0x1F_FFFF, u32::MAX];
        for &v in &vals {
            write_u32(&mut buf, v);
        }
        let mut at = 0;
        for &v in &vals {
            assert_eq!(read_u32(&buf, &mut at).unwrap(), v);
        }
        assert_eq!(at, buf.len());

        let mut buf = Vec::new();
        let vals64 = [0u64, 0x7F, 0x80, u32::MAX as u64, u64::MAX];
        for &v in &vals64 {
            write_u64(&mut buf, v);
        }
        let mut at = 0;
        for &v in &vals64 {
            assert_eq!(read_u64(&buf, &mut at).unwrap(), v);
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        assert!(read_u32(&[0x80], &mut 0).is_err());
        assert!(read_u32(&[], &mut 0).is_err());
        // 6-byte varint: too long for u32.
        assert!(read_u32(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut 0).is_err());
        // 5 bytes whose top bits overflow 32.
        assert!(read_u32(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F], &mut 0).is_err());
        // u64: 10 bytes with payload past bit 63.
        assert!(read_u64(
            &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F],
            &mut 0
        )
        .is_err());
    }

    #[test]
    fn unrolled_matches_scalar() {
        // Mix of one-byte and multi-byte varints at every phase offset.
        for n in [0usize, 1, 7, 8, 9, 16, 100, 1000] {
            let vals: Vec<u32> = (0..n as u32).map(|i| i * 37 % 50_000).collect();
            let mut buf = Vec::new();
            for &v in &vals {
                write_u32(&mut buf, v);
            }
            let (mut a, mut b) = (Vec::new(), Vec::new());
            let (mut at_a, mut at_b) = (0usize, 0usize);
            read_varints_u32(&buf, &mut at_a, n, &mut a).unwrap();
            read_varints_u32_scalar(&buf, &mut at_b, n, &mut b).unwrap();
            assert_eq!(a, vals);
            assert_eq!(b, vals);
            assert_eq!(at_a, at_b);
        }
    }

    #[test]
    fn list_roundtrip_and_blocks() {
        for n in [0usize, 1, BLOCK_LEN - 1, BLOCK_LEN, BLOCK_LEN + 1, 1000] {
            let want = pairs(n, 9);
            let mut buf = Vec::new();
            let mut skips = Vec::new();
            let len = encode_list(&want, &mut buf, &mut skips);
            assert_eq!(len, buf.len());
            assert_eq!(skips.len(), n.div_ceil(BLOCK_LEN));
            let mut got = Vec::new();
            decode_list(&buf, n, &mut got).unwrap();
            assert_eq!(got, want);
            if let Some(&last) = skips.last() {
                assert_eq!(skip_last_key(last), want.last().unwrap().0);
                assert_eq!(skip_end_off(last) as usize, buf.len());
            }
        }
    }

    #[test]
    fn duplicate_keys_roundtrip() {
        // Postings may repeat a doc id across fields: gap 0 is legal.
        let want = vec![(5, 1), (5, 2), (5, 3), (9, 1), (9, 9)];
        let mut buf = Vec::new();
        let mut skips = Vec::new();
        encode_list(&want, &mut buf, &mut skips);
        let mut got = Vec::new();
        decode_list(&buf, want.len(), &mut got).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn seek_matches_linear_scan() {
        let want = pairs(1000, 5);
        let mut buf = Vec::new();
        let mut skips = Vec::new();
        encode_list(&want, &mut buf, &mut skips);
        for min in [0, 1, 17, 500, want[499].0, want[999].0, u32::MAX] {
            let mut got = Vec::new();
            decode_from(&buf, want.len(), &skips, min, &mut got).unwrap();
            let linear: Vec<_> = want.iter().copied().filter(|&(k, _)| k >= min).collect();
            assert_eq!(got, linear, "min_key {min}");
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        let want = pairs(300, 9);
        let mut buf = Vec::new();
        let mut skips = Vec::new();
        encode_list(&want, &mut buf, &mut skips);
        let mut out = Vec::new();
        // Truncated.
        assert!(decode_list(&buf[..buf.len() - 1], 300, &mut out).is_err());
        // Trailing bytes.
        let mut extended = buf.clone();
        extended.push(0);
        out.clear();
        assert!(decode_list(&extended, 300, &mut out).is_err());
        // Wrong count: either truncation or trailing bytes.
        out.clear();
        assert!(decode_list(&buf, 301, &mut out).is_err());
        out.clear();
        assert!(decode_list(&buf, 299, &mut out).is_err());
    }
}
