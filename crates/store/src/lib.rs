//! # inspire-store — single-file versioned snapshot container
//!
//! The engine's persistent products (vocabulary, postings, statistics,
//! signatures, coordinates, …) are stored in one self-describing file so
//! that query serving and checkpoint/resume load in milliseconds instead
//! of re-running the pipeline. The container is deliberately dumb: it
//! knows nothing about the engine, only about **named, typed, checksummed
//! byte sections**.
//!
//! ## File layout (all integers little-endian)
//!
//! ```text
//! [0 ..  8)  magic  "INSPSNP1"
//! [8 .. 12)  format version (u32, currently 2)
//! [12.. 16)  section count (u32)
//! [16.. 24)  section table offset (u64, 64-byte aligned)
//! [24.. 32)  total file size (u64)
//! [32.. 36)  header CRC32 over bytes [0..32)
//! [36.. 64)  reserved, must be zero
//! -- sections, contiguous, each starting at a 64-byte-aligned offset --
//! [u64 payload length][payload bytes][zero padding to the next 64-byte
//! boundary]; the section CRC covers this whole padded extent.
//! -- section table at the table offset --
//! per section, 32 bytes: name (8 bytes, NUL-padded ASCII), offset (u64),
//! payload length (u64), element kind (u32), CRC32 (u32)
//! -- trailing u32: CRC32 over the table bytes --
//! ```
//!
//! Every byte of the file is covered by exactly one checksum (header CRC,
//! a section CRC, or the table CRC), and the header records the total
//! size, so **any** single bit flip, truncation, or appended garbage is
//! rejected at open time — there is no silent partial load.
//!
//! ## Version-bump rules
//!
//! * Adding a new section, or new meaning for unused bytes of an existing
//!   section, does **not** bump the format version — readers ignore
//!   sections they don't know.
//! * Changing the header, table entry layout, alignment, or the encoding
//!   of an existing section **bumps** `FORMAT_VERSION`; readers reject
//!   versions they don't understand rather than guessing.
//! * Version 2 added the [`SectionKind::Packed`] and [`SectionKind::Skip`]
//!   element kinds (block-compressed lists, see [`codec`]). A version-1
//!   reader rejects a version-2 file twice over — by the version number
//!   and by the unknown kinds — while this reader accepts any version in
//!   `MIN_FORMAT_VERSION..=FORMAT_VERSION`, so pre-bump fixed-width
//!   files stay loadable.
//!
//! ## Zero-copy typed views
//!
//! The reader loads the file into an 8-byte-aligned buffer; because every
//! payload starts 8 bytes past a 64-byte boundary, `u32`/`u64`/`i64`/
//! `f64` views are reinterpretations of the section bytes — no per-row
//! parsing on load.

pub mod codec;

use std::fmt;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes identifying a snapshot container.
pub const MAGIC: &[u8; 8] = b"INSPSNP1";

/// Current container format version (see the version-bump rules above).
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version this reader still accepts.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Section alignment: payloads start 8 bytes past these boundaries.
pub const ALIGN: u64 = 64;

const HEADER_LEN: u64 = 64;
const TABLE_ENTRY_LEN: u64 = 32;
const MAX_NAME: usize = 8;

// Typed views reinterpret little-endian file bytes in place; a big-endian
// host would need byte-swapping copies this crate does not implement.
#[cfg(target_endian = "big")]
compile_error!("inspire-store's zero-copy views require a little-endian host");

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

// Slicing-by-8 tables: table 0 is the classic Sarwate byte table, table
// j extends it by one byte of zero-padding, so eight lookups advance the
// register over eight input bytes at once.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = t[0][(t[j - 1][i] & 0xFF) as usize] ^ (t[j - 1][i] >> 8);
            i += 1;
        }
        j += 1;
    }
    t
};

/// Streaming CRC32 accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
            let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
            c = CRC_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[4][(lo >> 24) as usize]
                ^ CRC_TABLES[3][(hi & 0xFF) as usize]
                ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC32 of a whole byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// Section kinds
// ---------------------------------------------------------------------------

/// Element type of a section, recorded in the table so a reader can
/// validate a typed view request against what the writer stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionKind {
    /// Raw bytes.
    Bytes = 1,
    /// Little-endian `u32` elements.
    U32 = 2,
    /// Little-endian `u64` elements.
    U64 = 3,
    /// Little-endian `i64` elements.
    I64 = 4,
    /// Little-endian IEEE-754 `f64` elements.
    F64 = 5,
    /// UTF-8 text.
    Str = 6,
    /// Block-compressed varint stream (see [`codec`]); opaque bytes to
    /// the container, but tagged so readers know a raw-bytes view is
    /// *encoded* data, not a plain blob. Format version ≥ 2.
    Packed = 7,
    /// Skip-pointer entries (`u64`, [`codec::skip_entry`] layout) for a
    /// `Packed` section. Format version ≥ 2.
    Skip = 8,
    /// Scalar-quantized vector codes: fixed-width records of `u8`
    /// components, one record per vector. The record width is engine
    /// metadata, not container metadata, so readers validate it with
    /// [`SectionView::as_records`]. Format version ≥ 2.
    Quant = 9,
}

impl SectionKind {
    fn from_u32(v: u32) -> Option<SectionKind> {
        match v {
            1 => Some(SectionKind::Bytes),
            2 => Some(SectionKind::U32),
            3 => Some(SectionKind::U64),
            4 => Some(SectionKind::I64),
            5 => Some(SectionKind::F64),
            6 => Some(SectionKind::Str),
            7 => Some(SectionKind::Packed),
            8 => Some(SectionKind::Skip),
            9 => Some(SectionKind::Quant),
            _ => None,
        }
    }

    /// Element size in bytes (1 for `Bytes`/`Str`/`Packed`).
    pub fn elem_size(self) -> usize {
        match self {
            SectionKind::Bytes | SectionKind::Str | SectionKind::Packed | SectionKind::Quant => 1,
            SectionKind::U32 => 4,
            SectionKind::U64 | SectionKind::I64 | SectionKind::F64 | SectionKind::Skip => 8,
        }
    }

    /// Smallest format version whose readers understand this kind.
    pub fn min_version(self) -> u32 {
        match self {
            SectionKind::Packed | SectionKind::Skip | SectionKind::Quant => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SectionKind::Bytes => "bytes",
            SectionKind::U32 => "u32",
            SectionKind::U64 => "u64",
            SectionKind::I64 => "i64",
            SectionKind::F64 => "f64",
            SectionKind::Str => "str",
            SectionKind::Packed => "packed",
            SectionKind::Skip => "skip",
            SectionKind::Quant => "quant",
        };
        f.write_str(s)
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Padded on-disk extent of a payload of `len` bytes (length prefix +
/// payload, rounded up to the alignment).
fn extent(len: u64) -> u64 {
    (8 + len).div_ceil(ALIGN) * ALIGN
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Entry {
    name: [u8; MAX_NAME],
    offset: u64,
    len: u64,
    kind: SectionKind,
    crc: u32,
}

impl Entry {
    fn name_str(&self) -> &str {
        let end = self.name.iter().position(|&b| b == 0).unwrap_or(MAX_NAME);
        // Names are validated ASCII on both the write and read paths.
        std::str::from_utf8(&self.name[..end]).expect("section name is ASCII")
    }
}

/// Per-section byte counts reported by [`SnapshotWriter::finish`].
#[derive(Debug, Clone)]
pub struct SnapshotStats {
    /// Total file size in bytes, including header, padding, and table.
    pub total_bytes: u64,
    /// `(section name, payload bytes)` in write order.
    pub sections: Vec<(String, u64)>,
}

/// Streams checksummed sections into a snapshot file. Sections are
/// written (and flushed) as they are added; [`SnapshotWriter::finish`]
/// appends the section table and patches the header. A file that was not
/// `finish`ed has a zeroed header and is rejected by [`Snapshot::open`],
/// so an interrupted write can never be mistaken for a snapshot.
pub struct SnapshotWriter {
    file: io::BufWriter<std::fs::File>,
    pos: u64,
    entries: Vec<Entry>,
}

impl SnapshotWriter {
    /// Create (truncate) `path` and reserve the header.
    pub fn create(path: &Path) -> io::Result<SnapshotWriter> {
        let file = std::fs::File::create(path)?;
        let mut w = SnapshotWriter {
            file: io::BufWriter::new(file),
            pos: 0,
            entries: Vec::new(),
        };
        w.write_all(&[0u8; HEADER_LEN as usize])?;
        Ok(w)
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    fn encode_name(name: &str) -> io::Result<[u8; MAX_NAME]> {
        let b = name.as_bytes();
        if b.is_empty() || b.len() > MAX_NAME {
            return Err(bad(format!(
                "section name `{name}` must be 1..={MAX_NAME} bytes"
            )));
        }
        if !b.iter().all(|&c| c.is_ascii_graphic()) {
            return Err(bad(format!(
                "section name `{name}` must be printable ASCII"
            )));
        }
        let mut out = [0u8; MAX_NAME];
        out[..b.len()].copy_from_slice(b);
        Ok(out)
    }

    /// Append one section. The payload is length-prefixed, padded to the
    /// 64-byte alignment, and CRC-checksummed over the padded extent.
    pub fn add_section(&mut self, name: &str, kind: SectionKind, payload: &[u8]) -> io::Result<()> {
        let name_bytes = Self::encode_name(name)?;
        if self.entries.iter().any(|e| e.name == name_bytes) {
            return Err(bad(format!("duplicate section name `{name}`")));
        }
        debug_assert_eq!(self.pos % ALIGN, 0, "sections start aligned");
        let offset = self.pos;
        let len = payload.len() as u64;
        let mut crc = Crc32::new();
        let prefix = len.to_le_bytes();
        crc.update(&prefix);
        self.write_all(&prefix)?;
        crc.update(payload);
        self.write_all(payload)?;
        let pad = (extent(len) - 8 - len) as usize;
        let zeros = [0u8; ALIGN as usize];
        crc.update(&zeros[..pad]);
        self.write_all(&zeros[..pad])?;
        self.entries.push(Entry {
            name: name_bytes,
            offset,
            len,
            kind,
            crc: crc.finish(),
        });
        Ok(())
    }

    /// Append a raw-bytes section.
    pub fn add_bytes(&mut self, name: &str, payload: &[u8]) -> io::Result<()> {
        self.add_section(name, SectionKind::Bytes, payload)
    }

    /// Append a UTF-8 text section.
    pub fn add_str(&mut self, name: &str, text: &str) -> io::Result<()> {
        self.add_section(name, SectionKind::Str, text.as_bytes())
    }

    /// Append a `u32` section.
    pub fn add_u32s(&mut self, name: &str, data: &[u32]) -> io::Result<()> {
        self.add_section(name, SectionKind::U32, &le_bytes(data, |v| v.to_le_bytes()))
    }

    /// Append a `u64` section.
    pub fn add_u64s(&mut self, name: &str, data: &[u64]) -> io::Result<()> {
        self.add_section(name, SectionKind::U64, &le_bytes(data, |v| v.to_le_bytes()))
    }

    /// Append an `i64` section.
    pub fn add_i64s(&mut self, name: &str, data: &[i64]) -> io::Result<()> {
        self.add_section(name, SectionKind::I64, &le_bytes(data, |v| v.to_le_bytes()))
    }

    /// Append an `f64` section.
    pub fn add_f64s(&mut self, name: &str, data: &[f64]) -> io::Result<()> {
        self.add_section(name, SectionKind::F64, &le_bytes(data, |v| v.to_le_bytes()))
    }

    /// Append a block-compressed ([`codec`]) byte stream.
    pub fn add_packed(&mut self, name: &str, payload: &[u8]) -> io::Result<()> {
        self.add_section(name, SectionKind::Packed, payload)
    }

    /// Append scalar-quantized vector codes: `records` fixed-width rows
    /// of `record` `u8` components each. Rejects payloads whose length
    /// is not `records * record`, so a malformed section can never be
    /// written in the first place.
    pub fn add_quant(
        &mut self,
        name: &str,
        payload: &[u8],
        records: usize,
        record: usize,
    ) -> io::Result<()> {
        if payload.len() != records.saturating_mul(record) {
            return Err(bad(format!(
                "quant section `{name}` has {} bytes, expected {records} records × {record} bytes",
                payload.len()
            )));
        }
        self.add_section(name, SectionKind::Quant, payload)
    }

    /// Append skip-pointer entries for a `Packed` section.
    pub fn add_skips(&mut self, name: &str, data: &[u64]) -> io::Result<()> {
        self.add_section(
            name,
            SectionKind::Skip,
            &le_bytes(data, |v| v.to_le_bytes()),
        )
    }

    /// Write the section table, patch the header, and flush.
    pub fn finish(mut self) -> io::Result<SnapshotStats> {
        let table_offset = self.pos;
        debug_assert_eq!(table_offset % ALIGN, 0);
        let mut table = Vec::with_capacity(self.entries.len() * TABLE_ENTRY_LEN as usize);
        for e in &self.entries {
            table.extend_from_slice(&e.name);
            table.extend_from_slice(&e.offset.to_le_bytes());
            table.extend_from_slice(&e.len.to_le_bytes());
            table.extend_from_slice(&(e.kind as u32).to_le_bytes());
            table.extend_from_slice(&e.crc.to_le_bytes());
        }
        let table_crc = crc32(&table);
        self.write_all(&table.clone())?;
        self.write_all(&table_crc.to_le_bytes())?;
        let total = self.pos;

        let mut header = [0u8; HEADER_LEN as usize];
        header[0..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(self.entries.len() as u32).to_le_bytes());
        header[16..24].copy_from_slice(&table_offset.to_le_bytes());
        header[24..32].copy_from_slice(&total.to_le_bytes());
        let hcrc = crc32(&header[0..32]);
        header[32..36].copy_from_slice(&hcrc.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.flush()?;

        Ok(SnapshotStats {
            total_bytes: total,
            sections: self
                .entries
                .iter()
                .map(|e| (e.name_str().to_string(), e.len))
                .collect(),
        })
    }
}

fn le_bytes<T: Copy, const N: usize>(data: &[T], f: impl Fn(T) -> [u8; N]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * N);
    for &v in data {
        out.extend_from_slice(&f(v));
    }
    out
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A validated, loaded snapshot. Every checksum is verified at open time;
/// section accessors hand out zero-copy views over the loaded bytes.
pub struct Snapshot {
    /// 8-byte-aligned backing buffer holding the whole file.
    buf: Vec<u64>,
    /// File length in bytes (the buffer may be padded past it).
    len: usize,
    entries: Vec<Entry>,
    version: u32,
    source: String,
}

impl Snapshot {
    /// Open and fully validate a snapshot file.
    pub fn open(path: &Path) -> io::Result<Snapshot> {
        let mut f = std::fs::File::open(path)?;
        let file_len = f.metadata()?.len() as usize;
        let mut buf = vec![0u64; file_len.div_ceil(8)];
        f.read_exact(&mut as_bytes_mut(&mut buf)[..file_len])?;
        if f.read(&mut [0u8; 1])? != 0 {
            return Err(bad(format!("{}: file grew while reading", path.display())));
        }
        Self::validate(buf, file_len, path.display().to_string())
    }

    /// Validate a snapshot already held in memory (the bytes of a whole
    /// file); `label` names the source in error messages.
    pub fn from_bytes(bytes: &[u8], label: &str) -> io::Result<Snapshot> {
        let mut buf = vec![0u64; bytes.len().div_ceil(8)];
        as_bytes_mut(&mut buf)[..bytes.len()].copy_from_slice(bytes);
        Self::validate(buf, bytes.len(), label.to_string())
    }

    fn validate(buf: Vec<u64>, len: usize, source: String) -> io::Result<Snapshot> {
        let whole = &as_bytes(&buf)[..len];
        let e = |msg: String| bad(format!("{source}: {msg}"));
        if len < HEADER_LEN as usize {
            return Err(e(format!("truncated header ({len} bytes)")));
        }
        if &whole[0..8] != MAGIC {
            return Err(e("not a snapshot container (bad magic)".into()));
        }
        let version = u32::from_le_bytes(whole[8..12].try_into().unwrap());
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(e(format!(
                "unsupported format version {version} \
                 (reader understands {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
            )));
        }
        let stored_hcrc = u32::from_le_bytes(whole[32..36].try_into().unwrap());
        if crc32(&whole[0..32]) != stored_hcrc {
            return Err(e("header checksum mismatch".into()));
        }
        if whole[36..64].iter().any(|&b| b != 0) {
            return Err(e("reserved header bytes are not zero".into()));
        }
        let count = u32::from_le_bytes(whole[12..16].try_into().unwrap()) as u64;
        let table_offset = u64::from_le_bytes(whole[16..24].try_into().unwrap());
        let total = u64::from_le_bytes(whole[24..32].try_into().unwrap());
        if total != len as u64 {
            return Err(e(format!(
                "size mismatch: header says {total} bytes, file has {len} (truncated or extended)"
            )));
        }
        if table_offset % ALIGN != 0 {
            return Err(e(format!("section table offset {table_offset} unaligned")));
        }
        let table_len = count
            .checked_mul(TABLE_ENTRY_LEN)
            .ok_or_else(|| e("section count overflow".into()))?;
        let table_end = table_offset
            .checked_add(table_len)
            .and_then(|v| v.checked_add(4))
            .ok_or_else(|| e("section table extends past u64".into()))?;
        if table_end != len as u64 {
            return Err(e(format!(
                "section table at {table_offset}+{table_len} does not end the file"
            )));
        }
        let table = &whole[table_offset as usize..(table_offset + table_len) as usize];
        let stored_tcrc = u32::from_le_bytes(whole[(table_end - 4) as usize..].try_into().unwrap());
        if crc32(table) != stored_tcrc {
            return Err(e("section table checksum mismatch".into()));
        }

        let mut entries = Vec::with_capacity(count as usize);
        let mut expect_offset = HEADER_LEN;
        for i in 0..count as usize {
            let row = &table[i * TABLE_ENTRY_LEN as usize..(i + 1) * TABLE_ENTRY_LEN as usize];
            let mut name = [0u8; MAX_NAME];
            name.copy_from_slice(&row[0..8]);
            let name_end = name.iter().position(|&b| b == 0).unwrap_or(MAX_NAME);
            if name_end == 0
                || !name[..name_end].iter().all(|&c| c.is_ascii_graphic())
                || name[name_end..].iter().any(|&b| b != 0)
            {
                return Err(e(format!("section {i}: malformed name")));
            }
            // Name every later complaint: with a base snapshot plus N
            // ingest segments open at once, "section 3" alone does not
            // say which list of which file went bad.
            let label = String::from_utf8_lossy(&name[..name_end]).into_owned();
            let offset = u64::from_le_bytes(row[8..16].try_into().unwrap());
            let slen = u64::from_le_bytes(row[16..24].try_into().unwrap());
            let kind =
                SectionKind::from_u32(u32::from_le_bytes(row[24..28].try_into().unwrap()))
                    .ok_or_else(|| e(format!("section {i} (`{label}`): unknown element kind")))?;
            if kind.min_version() > version {
                return Err(e(format!(
                    "section {i} (`{label}`): {kind} elements need format version {}, file says {version}",
                    kind.min_version()
                )));
            }
            let crc = u32::from_le_bytes(row[28..32].try_into().unwrap());
            if offset != expect_offset {
                return Err(e(format!(
                    "section {i} (`{label}`) at offset {offset}, expected {expect_offset} (sections must be contiguous)"
                )));
            }
            let ext = extent(slen);
            if offset + ext > table_offset {
                return Err(e(format!(
                    "section {i} (`{label}`) extent [{offset}, {}) overlaps the table",
                    offset + ext
                )));
            }
            let body = &whole[offset as usize..(offset + ext) as usize];
            if crc32(body) != crc {
                return Err(e(format!(
                    "section `{}` checksum mismatch at offset {offset}",
                    String::from_utf8_lossy(&name[..name_end])
                )));
            }
            let prefixed = u64::from_le_bytes(body[0..8].try_into().unwrap());
            if prefixed != slen {
                return Err(e(format!(
                    "section {i} (`{label}`): length prefix {prefixed} disagrees with table length {slen}"
                )));
            }
            if slen % kind.elem_size() as u64 != 0 {
                return Err(e(format!(
                    "section {i} (`{label}`): {slen} bytes is not a multiple of the {kind} element size"
                )));
            }
            if entries.iter().any(|p: &Entry| p.name == name) {
                return Err(e(format!("duplicate section name `{label}` at entry {i}")));
            }
            entries.push(Entry {
                name,
                offset,
                len: slen,
                kind,
                crc,
            });
            expect_offset = offset + ext;
        }
        if expect_offset != table_offset {
            return Err(e(format!(
                "gap between last section end {expect_offset} and table offset {table_offset}"
            )));
        }
        Ok(Snapshot {
            buf,
            len,
            entries,
            version,
            source,
        })
    }

    /// The container format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Path or label the snapshot was loaded from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// `(name, kind, payload bytes)` of every section, in file order.
    pub fn sections(&self) -> impl Iterator<Item = (&str, SectionKind, u64)> + '_ {
        self.entries.iter().map(|e| (e.name_str(), e.kind, e.len))
    }

    /// Whether a section exists.
    pub fn has(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name_str() == name)
    }

    /// A view over the named section, if present.
    pub fn section(&self, name: &str) -> Option<SectionView<'_>> {
        let e = self.entries.iter().find(|e| e.name_str() == name)?;
        let start = e.offset as usize + 8;
        Some(SectionView {
            name: e.name_str().to_string(),
            kind: e.kind,
            bytes: &as_bytes(&self.buf)[start..start + e.len as usize],
            source: &self.source,
        })
    }

    /// A view over the named section, or an error naming the source.
    pub fn require(&self, name: &str) -> io::Result<SectionView<'_>> {
        self.section(name)
            .ok_or_else(|| bad(format!("{}: missing section `{name}`", self.source)))
    }

    /// Total file size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.len as u64
    }
}

/// A zero-copy view of one section's payload.
pub struct SectionView<'a> {
    name: String,
    kind: SectionKind,
    bytes: &'a [u8],
    source: &'a str,
}

impl<'a> SectionView<'a> {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn kind(&self) -> SectionKind {
        self.kind
    }

    /// The raw payload bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    fn expect_kind(&self, want: SectionKind) -> io::Result<()> {
        if self.kind != want {
            return Err(bad(format!(
                "{}: section `{}` holds {} elements, requested {want}",
                self.source, self.name, self.kind
            )));
        }
        Ok(())
    }

    /// Reinterpret the payload as `T` elements. Sound for the plain-old-
    /// data element types this module stores (`u32`/`u64`/`i64`/`f64`):
    /// every bit pattern is a valid value, and payloads start 8 bytes
    /// past a 64-byte boundary of an 8-byte-aligned buffer, so `align_to`
    /// never produces a prefix or suffix.
    fn typed<T>(&self, want: SectionKind) -> io::Result<&'a [T]> {
        self.expect_kind(want)?;
        // SAFETY: T is restricted by the callers to POD integer/float
        // types for which any bit pattern is valid; alignment is
        // guaranteed by the container layout (checked below).
        let (prefix, mid, suffix) = unsafe { self.bytes.align_to::<T>() };
        if !prefix.is_empty() || !suffix.is_empty() {
            return Err(bad(format!(
                "{}: section `{}` is not aligned for {want} elements",
                self.source, self.name
            )));
        }
        Ok(mid)
    }

    /// The payload as little-endian `u32` elements.
    pub fn as_u32s(&self) -> io::Result<&'a [u32]> {
        self.typed::<u32>(SectionKind::U32)
    }

    /// The payload as little-endian `u64` elements.
    pub fn as_u64s(&self) -> io::Result<&'a [u64]> {
        self.typed::<u64>(SectionKind::U64)
    }

    /// The payload as little-endian `i64` elements.
    pub fn as_i64s(&self) -> io::Result<&'a [i64]> {
        self.typed::<i64>(SectionKind::I64)
    }

    /// The payload as little-endian `f64` elements.
    pub fn as_f64s(&self) -> io::Result<&'a [f64]> {
        self.typed::<f64>(SectionKind::F64)
    }

    /// The payload of a block-compressed section (decode via [`codec`]).
    pub fn as_packed(&self) -> io::Result<&'a [u8]> {
        self.expect_kind(SectionKind::Packed)?;
        Ok(self.bytes)
    }

    /// The payload as skip-pointer entries ([`codec::skip_entry`] layout).
    pub fn as_skips(&self) -> io::Result<&'a [u64]> {
        self.typed::<u64>(SectionKind::Skip)
    }

    /// The payload of a quantized-vector section as fixed-width records
    /// of `record` bytes each. A length that is not a whole number of
    /// records is a corrupt or truncated section and is rejected here,
    /// by name, instead of panicking on a short slice downstream.
    pub fn as_records(&self, record: usize) -> io::Result<&'a [u8]> {
        self.expect_kind(SectionKind::Quant)?;
        if record == 0 {
            return Err(bad(format!(
                "{}: section `{}` record size must be nonzero",
                self.source, self.name
            )));
        }
        if !self.bytes.len().is_multiple_of(record) {
            return Err(bad(format!(
                "{}: quant section `{}` has {} bytes, not a multiple of the {record}-byte per-doc record size",
                self.source,
                self.name,
                self.bytes.len()
            )));
        }
        Ok(self.bytes)
    }

    /// The payload as UTF-8 text.
    pub fn as_str(&self) -> io::Result<&'a str> {
        self.expect_kind(SectionKind::Str)?;
        std::str::from_utf8(self.bytes).map_err(|e| {
            bad(format!(
                "{}: section `{}` is not UTF-8 at byte {}",
                self.source,
                self.name,
                e.valid_up_to()
            ))
        })
    }
}

fn as_bytes(buf: &[u64]) -> &[u8] {
    // SAFETY: u8 has no alignment requirement and any byte is valid.
    unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, buf.len() * 8) }
}

fn as_bytes_mut(buf: &mut [u64]) -> &mut [u8] {
    // SAFETY: as above, and the borrow is exclusive.
    unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, buf.len() * 8) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("inspire-store-test-{}-{name}", std::process::id()));
        p
    }

    fn sample(path: &Path) -> SnapshotStats {
        let mut w = SnapshotWriter::create(path).unwrap();
        w.add_u32s("ids", &[1, 2, 3, 0xFFFF_FFFF]).unwrap();
        w.add_f64s("vals", &[0.5, -1.25, f64::MAX, 0.0]).unwrap();
        w.add_u64s("big", &[u64::MAX, 7]).unwrap();
        w.add_i64s("off", &[-1, 0, i64::MAX]).unwrap();
        w.add_bytes("blob", b"arbitrary \x00 bytes").unwrap();
        w.add_str("text", "hello snapshot").unwrap();
        w.add_bytes("empty", b"").unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_all_kinds() {
        let path = tmp("roundtrip.snap");
        let stats = sample(&path);
        assert_eq!(stats.sections.len(), 7);
        let s = Snapshot::open(&path).unwrap();
        assert_eq!(s.version(), FORMAT_VERSION);
        assert_eq!(
            s.require("ids").unwrap().as_u32s().unwrap(),
            &[1, 2, 3, 0xFFFF_FFFF]
        );
        assert_eq!(
            s.require("vals").unwrap().as_f64s().unwrap(),
            &[0.5, -1.25, f64::MAX, 0.0]
        );
        assert_eq!(s.require("big").unwrap().as_u64s().unwrap(), &[u64::MAX, 7]);
        assert_eq!(
            s.require("off").unwrap().as_i64s().unwrap(),
            &[-1, 0, i64::MAX]
        );
        assert_eq!(s.require("blob").unwrap().bytes(), b"arbitrary \x00 bytes");
        assert_eq!(
            s.require("text").unwrap().as_str().unwrap(),
            "hello snapshot"
        );
        assert_eq!(s.require("empty").unwrap().bytes(), b"");
        assert!(!s.has("nope"));
        assert!(s.require("nope").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_bytes_matches_open() {
        let path = tmp("frombytes.snap");
        sample(&path);
        let bytes = std::fs::read(&path).unwrap();
        let s = Snapshot::from_bytes(&bytes, "mem").unwrap();
        assert_eq!(s.require("big").unwrap().as_u64s().unwrap(), &[u64::MAX, 7]);
        assert_eq!(s.source(), "mem");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let path = tmp("kind.snap");
        sample(&path);
        let s = Snapshot::open(&path).unwrap();
        assert!(s.require("ids").unwrap().as_f64s().is_err());
        assert!(s.require("vals").unwrap().as_u32s().is_err());
        assert!(s.require("blob").unwrap().as_str().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_rejects_bad_names() {
        let path = tmp("names.snap");
        let mut w = SnapshotWriter::create(&path).unwrap();
        assert!(w.add_bytes("", b"x").is_err());
        assert!(w.add_bytes("waytoolong", b"x").is_err());
        assert!(w.add_bytes("has space", b"x").is_err());
        w.add_bytes("ok", b"x").unwrap();
        assert!(w.add_bytes("ok", b"y").is_err(), "duplicate must fail");
        w.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unfinished_file_is_rejected() {
        let path = tmp("unfinished.snap");
        {
            let mut w = SnapshotWriter::create(&path).unwrap();
            w.add_u32s("ids", &[1, 2, 3]).unwrap();
            // Dropped without finish(): header stays zeroed.
        }
        assert!(Snapshot::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_and_empty_rejected() {
        let path = tmp("garbage.snap");
        std::fs::write(&path, b"this is not a snapshot at all").unwrap();
        assert!(Snapshot::open(&path).is_err());
        std::fs::write(&path, b"").unwrap();
        assert!(Snapshot::open(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert!(Snapshot::from_bytes(&[], "empty").is_err());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let path = tmp("trunc.snap");
        sample(&path);
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            assert!(
                Snapshot::from_bytes(&full[..cut], "cut").is_err(),
                "truncation to {cut} bytes accepted"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let path = tmp("trail.snap");
        sample(&path);
        let mut full = std::fs::read(&path).unwrap();
        full.push(0);
        assert!(Snapshot::from_bytes(&full, "ext").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sample_bit_flips_are_rejected() {
        let path = tmp("flip.snap");
        sample(&path);
        let full = std::fs::read(&path).unwrap();
        // The exhaustive sweep lives in the workspace proptest suite;
        // here, hit every region: header, magic, payload, padding, table.
        for &pos in &[0usize, 9, 70, 100, full.len() - 5, full.len() - 40] {
            for bit in 0..8 {
                let mut corrupt = full.clone();
                corrupt[pos] ^= 1 << bit;
                assert!(
                    Snapshot::from_bytes(&corrupt, "flip").is_err(),
                    "bit {bit} of byte {pos} accepted"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let path = tmp("empty.snap");
        let w = SnapshotWriter::create(&path).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.sections.len(), 0);
        let s = Snapshot::open(&path).unwrap();
        assert_eq!(s.sections().count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn packed_and_skip_sections_roundtrip() {
        let path = tmp("packed.snap");
        let pairs: Vec<(u32, u32)> = (0..300).map(|i| (i * 3, i % 7)).collect();
        let mut blob = Vec::new();
        let mut skips = Vec::new();
        codec::encode_list(&pairs, &mut blob, &mut skips);
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.add_packed("plist", &blob).unwrap();
        w.add_skips("pskip", &skips).unwrap();
        w.finish().unwrap();

        let s = Snapshot::open(&path).unwrap();
        assert_eq!(s.version(), FORMAT_VERSION);
        let view = s.require("plist").unwrap();
        assert_eq!(view.kind(), SectionKind::Packed);
        assert_eq!(view.as_packed().unwrap(), &blob[..]);
        assert!(view.as_u32s().is_err(), "packed is not a u32 view");
        let sv = s.require("pskip").unwrap();
        assert_eq!(sv.as_skips().unwrap(), &skips[..]);
        assert!(sv.as_u64s().is_err(), "skip is not a plain u64 view");
        let mut got = Vec::new();
        codec::decode_list(view.as_packed().unwrap(), pairs.len(), &mut got).unwrap();
        assert_eq!(got, pairs);
        std::fs::remove_file(&path).ok();
    }

    /// Rewrite a finished file's header version field (recomputing the
    /// header CRC), mimicking files written by other format versions.
    fn with_version(path: &Path, version: u32) -> Vec<u8> {
        let mut bytes = std::fs::read(path).unwrap();
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        let hcrc = crc32(&bytes[0..32]);
        bytes[32..36].copy_from_slice(&hcrc.to_le_bytes());
        bytes
    }

    #[test]
    fn version_range_is_enforced() {
        let path = tmp("versions.snap");
        sample(&path); // legacy kinds only — valid under either version
        let v1 = with_version(&path, 1);
        let s = Snapshot::from_bytes(&v1, "v1").unwrap();
        assert_eq!(s.version(), 1);
        assert_eq!(
            s.require("ids").unwrap().as_u32s().unwrap(),
            &[1, 2, 3, 0xFFFF_FFFF]
        );
        assert!(Snapshot::from_bytes(&with_version(&path, 0), "v0").is_err());
        assert!(
            Snapshot::from_bytes(&with_version(&path, FORMAT_VERSION + 1), "vN").is_err(),
            "future versions must be rejected, not guessed at"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_file_with_v2_kinds_is_rejected() {
        let path = tmp("v1kinds.snap");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.add_packed("plist", &[0, 1, 2]).unwrap();
        w.finish().unwrap();
        // Claiming version 1 while carrying a Packed section is malformed.
        assert!(Snapshot::from_bytes(&with_version(&path, 1), "v1bad").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quant_sections_roundtrip_and_validate_record_size() {
        let path = tmp("quant.snap");
        let codes: Vec<u8> = (0..5 * 7).map(|i| (i * 11 % 251) as u8).collect();
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.add_quant("qsig", &codes, 5, 7).unwrap();
        assert!(
            w.add_quant("qbad", &codes, 5, 8).is_err(),
            "writer must reject a payload that is not records × record bytes"
        );
        w.finish().unwrap();

        let s = Snapshot::open(&path).unwrap();
        let view = s.require("qsig").unwrap();
        assert_eq!(view.kind(), SectionKind::Quant);
        assert_eq!(view.as_records(7).unwrap(), &codes[..]);
        assert!(view.as_u32s().is_err(), "quant is not a u32 view");
        // A reader expecting a different per-doc record size gets a
        // descriptive error naming the section, not a panic downstream.
        let err = view.as_records(8).unwrap_err().to_string();
        assert!(err.contains("qsig") && err.contains("8-byte"), "{err}");
        assert!(view.as_records(0).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_file_with_quant_kind_is_rejected() {
        let path = tmp("v1quant.snap");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.add_quant("qsig", &[1, 2, 3, 4], 2, 2).unwrap();
        w.finish().unwrap();
        assert!(Snapshot::from_bytes(&with_version(&path, 1), "v1q").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_sliced_path_matches_bytewise_reference() {
        // Exercise the 8-byte fast path against a one-byte-at-a-time
        // reference, across lengths that hit every remainder size and
        // streaming splits that land mid-chunk.
        let data: Vec<u8> = (0..1021u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 1021] {
            let slice = &data[..len];
            let mut reference = 0xFFFF_FFFFu32;
            for &b in slice {
                reference =
                    CRC_TABLES[0][((reference ^ b as u32) & 0xFF) as usize] ^ (reference >> 8);
            }
            assert_eq!(crc32(slice), reference ^ 0xFFFF_FFFF, "len {len}");
            let mut streamed = Crc32::new();
            let split = len / 3;
            streamed.update(&slice[..split]);
            streamed.update(&slice[split..]);
            assert_eq!(streamed.finish(), crc32(slice), "split at {split} of {len}");
        }
    }

    #[test]
    fn stats_report_payload_bytes() {
        let path = tmp("stats.snap");
        let stats = sample(&path);
        let ids = stats.sections.iter().find(|(n, _)| n == "ids").unwrap();
        assert_eq!(ids.1, 16);
        let s = Snapshot::open(&path).unwrap();
        assert_eq!(s.total_bytes(), stats.total_bytes);
        std::fs::remove_file(&path).ok();
    }
}
