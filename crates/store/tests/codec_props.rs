//! Property tests for the block-compressed postings codec and its
//! interaction with the container's CRC protection.
//!
//! Three of the PR's correctness claims live here: encode→decode is
//! bit-identical for arbitrary gap distributions and value ranges
//! (including the 24-bit freq saturation boundary, which packs into the
//! top of the 27-bit value varint), skip-pointer seeks land on exactly
//! the block a linear scan would, and any corruption of a compressed
//! section is still rejected by the store CRCs before a decoder sees it.

use inspire_store::codec::{
    decode_from, decode_list, encode_list, read_varints_u32, read_varints_u32_scalar, seek_block,
    skip_last_key, write_u32, BLOCK_LEN,
};
use inspire_store::{Snapshot, SnapshotWriter};
use proptest::prelude::*;

/// Build a sorted key sequence from a base and gaps (gap 0 is legal:
/// one document can repeat a key across fields).
fn keys_from_gaps(base: u32, gaps: &[u32]) -> Vec<u32> {
    let mut keys = Vec::with_capacity(gaps.len());
    let mut k = base;
    for &g in gaps {
        k = k.saturating_add(g);
        keys.push(k);
    }
    keys
}

/// The 27-bit value boundary: a saturated 24-bit freq with the largest
/// field id. Values are folded toward it so every run crosses the
/// boundary region, not just the low varint bytes.
const VAL_CEIL: u32 = (0xFF_FFFF << 3) | 0x7;

proptest! {
    /// Round-trip: decode(encode(pairs)) == pairs, bit for bit, for any
    /// gap distribution (dense, sparse, duplicate) and any value up to
    /// the saturation ceiling.
    #[test]
    fn encode_decode_roundtrip(
        base in 0u32..1_000_000,
        gaps in prop::collection::vec(0u32..200_000, 0..600),
        raw_vals in prop::collection::vec(0u32..=u32::MAX, 0..600),
    ) {
        let keys = keys_from_gaps(base, &gaps);
        let pairs: Vec<(u32, u32)> = keys
            .iter()
            .zip(raw_vals.iter().cycle())
            .map(|(&k, &v)| (k, v % (VAL_CEIL + 1)))
            .collect();
        let mut bytes = Vec::new();
        let mut skips = Vec::new();
        let len = encode_list(&pairs, &mut bytes, &mut skips);
        prop_assert_eq!(len, bytes.len());
        prop_assert_eq!(skips.len(), pairs.len().div_ceil(BLOCK_LEN));
        let mut back = Vec::new();
        decode_list(&bytes, pairs.len(), &mut back).expect("decode");
        prop_assert_eq!(back, pairs);
    }

    /// The saturation boundary exactly: values pinned to the top of the
    /// 24-bit freq budget survive encode→decode unchanged.
    #[test]
    fn saturation_boundary_roundtrip(
        gaps in prop::collection::vec(0u32..50, 1..200),
        off in 0u32..16,
    ) {
        let keys = keys_from_gaps(0, &gaps);
        let pairs: Vec<(u32, u32)> = keys
            .iter()
            .map(|&k| (k, VAL_CEIL - (off.min(VAL_CEIL))))
            .collect();
        let mut bytes = Vec::new();
        let mut skips = Vec::new();
        encode_list(&pairs, &mut bytes, &mut skips);
        let mut back = Vec::new();
        decode_list(&bytes, pairs.len(), &mut back).expect("decode");
        prop_assert_eq!(back, pairs);
    }

    /// The unrolled 8-wide varint decoder reads exactly what the scalar
    /// reference does, byte stream by byte stream.
    #[test]
    fn unrolled_decoder_matches_scalar(
        vals in prop::collection::vec(0u32..=u32::MAX, 0..600),
    ) {
        let mut bytes = Vec::new();
        for &v in &vals {
            write_u32(&mut bytes, v);
        }
        let mut fast = Vec::new();
        let mut fast_at = 0usize;
        read_varints_u32(&bytes, &mut fast_at, vals.len(), &mut fast).expect("fast");
        let mut slow = Vec::new();
        let mut slow_at = 0usize;
        read_varints_u32_scalar(&bytes, &mut slow_at, vals.len(), &mut slow).expect("slow");
        prop_assert_eq!(fast_at, slow_at);
        prop_assert_eq!(&fast, &vals);
        prop_assert_eq!(fast, slow);
    }

    /// Skip-pointer seek lands on the same block a linear scan finds,
    /// and the seeked decode equals the linearly filtered tail.
    #[test]
    fn seek_matches_linear_scan(
        base in 0u32..10_000,
        gaps in prop::collection::vec(0u32..300, 1..900),
        probe in 0u32..400_000,
    ) {
        let keys = keys_from_gaps(base, &gaps);
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k ^ 0x5A)).collect();
        let mut bytes = Vec::new();
        let mut skips = Vec::new();
        encode_list(&pairs, &mut bytes, &mut skips);

        // Block index: binary seek vs. linear scan over skip entries.
        let sought = seek_block(&skips, probe);
        let linear = skips
            .iter()
            .position(|&e| skip_last_key(e) >= probe)
            .unwrap_or(skips.len());
        prop_assert_eq!(sought, linear);

        // Decoded tail: seeked decode vs. full decode + filter.
        let mut tail = Vec::new();
        decode_from(&bytes, pairs.len(), &skips, probe, &mut tail).expect("decode_from");
        let want: Vec<(u32, u32)> = pairs.iter().copied().filter(|&(k, _)| k >= probe).collect();
        prop_assert_eq!(tail, want);
    }

    /// Any single bit flip anywhere in a container holding compressed
    /// sections is rejected at open — the decoders never see corrupt
    /// bytes that validated.
    #[test]
    fn corrupted_compressed_sections_rejected(
        gaps in prop::collection::vec(0u32..100, 1..300),
        flip_seed in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let keys = keys_from_gaps(0, &gaps);
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k.rotate_left(7))).collect();
        let mut blk = Vec::new();
        let mut skips = Vec::new();
        encode_list(&pairs, &mut blk, &mut skips);

        let path = std::env::temp_dir().join(format!(
            "va-codec-prop-{}-{flip_seed}-{bit}.isnap",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut w = SnapshotWriter::create(&path).expect("create");
        w.add_packed("postblk", &blk).expect("postblk");
        w.add_skips("postskp", &skips).expect("postskp");
        w.finish().expect("finish");
        Snapshot::open(&path).expect("pristine file validates");

        let mut bytes = std::fs::read(&path).expect("read back");
        let at = flip_seed % bytes.len();
        bytes[at] ^= 1u8 << bit;
        std::fs::write(&path, &bytes).expect("write corrupted");
        prop_assert!(
            Snapshot::open(&path).is_err(),
            "bit {bit} at byte {at} accepted"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Truncation at any boundary is likewise rejected.
    #[test]
    fn truncated_compressed_sections_rejected(
        gaps in prop::collection::vec(0u32..100, 1..300),
        cut_seed in 1usize..1_000_000,
    ) {
        let keys = keys_from_gaps(0, &gaps);
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k)).collect();
        let mut blk = Vec::new();
        let mut skips = Vec::new();
        encode_list(&pairs, &mut blk, &mut skips);

        let path = std::env::temp_dir().join(format!(
            "va-codec-trunc-{}-{cut_seed}.isnap",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut w = SnapshotWriter::create(&path).expect("create");
        w.add_packed("postblk", &blk).expect("postblk");
        w.add_skips("postskp", &skips).expect("postskp");
        w.finish().expect("finish");

        let bytes = std::fs::read(&path).expect("read back");
        let keep = cut_seed % bytes.len();
        std::fs::write(&path, &bytes[..keep]).expect("truncate");
        prop_assert!(Snapshot::open(&path).is_err(), "truncated to {keep} accepted");
        let _ = std::fs::remove_file(&path);
    }
}
