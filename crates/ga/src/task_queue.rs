//! The shared, owner-prioritized task queue behind dynamic load balancing.
//!
//! §3.3 of the paper: *"a shared task queue, which is stored in a global
//! array, represents the collection of loads to be processed by all
//! processes. The task queue is prioritized in such a way that each process
//! completes its inversion loads first, and then works on loads owned by
//! other processes. When a process finishes computing its loads, it gets
//! the next available load from the task queue, and atomically increments
//! the task queue to point to the next available load."*
//!
//! The queue holds one *head cursor per owner*. [`TaskQueue::pop`] first
//! advances the caller's own cursor (a local atomic), then — once its own
//! loads are done — steals from other owners' cursors in round-robin order
//! starting after itself, paying a remote-atomic round trip per attempt,
//! exactly the fetch-and-increment pattern the paper implements with GA
//! atomics.

use spmd::{Ctx, VirtualGate};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Identity of one claimed task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId {
    /// Rank that owns the task's data.
    pub owner: usize,
    /// Index of the task within its owner's load list.
    pub index: usize,
}

struct Inner {
    heads: Vec<AtomicUsize>,
    counts: Vec<usize>,
    /// Exclusive prefix sums of `counts`, for global task numbering.
    offsets: Vec<usize>,
}

/// A shared task queue with per-owner subqueues.
///
/// Claims are ordered by **virtual time** through a [`VirtualGate`]: the
/// rank whose virtual clock is lowest claims next, which is what
/// fixed-size chunking produces on the modeled cluster (see the gate's
/// module documentation for why real-time claiming would be wrong here).
pub struct TaskQueue {
    inner: Arc<Inner>,
    gate: Arc<VirtualGate>,
}

impl Clone for TaskQueue {
    fn clone(&self) -> Self {
        TaskQueue {
            inner: self.inner.clone(),
            gate: self.gate.clone(),
        }
    }
}

impl TaskQueue {
    /// Collective creation. `my_count` is the number of loads this rank
    /// owns; the per-owner counts are allgathered so every rank sees the
    /// same queue.
    pub fn create(ctx: &Ctx, my_count: usize) -> Self {
        let gate = VirtualGate::create(ctx);
        let counts: Vec<usize> = ctx.allgather(my_count, 8);
        let handle = if ctx.rank() == 0 {
            let mut offsets = Vec::with_capacity(counts.len() + 1);
            let mut at = 0;
            for &c in &counts {
                offsets.push(at);
                at += c;
            }
            offsets.push(at);
            Some(TaskQueue {
                inner: Arc::new(Inner {
                    heads: counts.iter().map(|_| AtomicUsize::new(0)).collect(),
                    counts,
                    offsets,
                }),
                gate: gate.clone(),
            })
        } else {
            None
        };
        ctx.broadcast(0, handle, 16)
    }

    /// Total number of tasks.
    pub fn total(&self) -> usize {
        *self.inner.offsets.last().unwrap_or(&0)
    }

    /// Global (dense) number of a task, usable to index task-descriptor
    /// arrays.
    pub fn global_index(&self, id: TaskId) -> usize {
        self.inner.offsets[id.owner] + id.index
    }

    /// Claim the next task: own loads first, then round-robin stealing.
    /// Returns `None` when every subqueue is exhausted (after which the
    /// rank stops participating in the claim ordering).
    pub fn pop(&self, ctx: &Ctx) -> Option<TaskId> {
        ctx.trace_begin("queue", "task.pace");
        self.gate.pace(ctx);
        ctx.trace_end("queue", "task.pace");
        let t = self.claim(ctx);
        match t {
            None => self.gate.leave(ctx),
            // A claim whose data lives on another rank is a steal — the
            // event the paper's dynamic balancing exists to produce.
            Some(task) if task.owner != ctx.rank() => {
                ctx.trace_instant("queue", "task.steal");
            }
            Some(_) => {}
        }
        t
    }

    fn claim(&self, ctx: &Ctx) -> Option<TaskId> {
        let p = self.inner.counts.len();
        let me = ctx.rank();
        // Own subqueue: a local atomic fetch-and-increment.
        if self.inner.counts[me] > 0 {
            let idx = self.inner.heads[me].fetch_add(1, Ordering::Relaxed);
            ctx.charge_remote_atomic(me);
            if idx < self.inner.counts[me] {
                return Some(TaskId {
                    owner: me,
                    index: idx,
                });
            }
        }
        // Steal, starting just past ourselves so the load spreads.
        for step in 1..p {
            let owner = (me + step) % p;
            if self.inner.counts[owner] == 0 {
                continue;
            }
            // Cheap remote read first (the paper's GA implementation also
            // reads the cursor before attempting the increment).
            if self.inner.heads[owner].load(Ordering::Relaxed) >= self.inner.counts[owner] {
                continue;
            }
            ctx.charge_remote_atomic(owner);
            let idx = self.inner.heads[owner].fetch_add(1, Ordering::Relaxed);
            if idx < self.inner.counts[owner] {
                return Some(TaskId { owner, index: idx });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::Runtime;
    use std::collections::HashSet;

    #[test]
    fn every_task_claimed_exactly_once() {
        let rt = Runtime::for_testing();
        let res = rt.run(6, |ctx| {
            // Uneven loads: rank r owns 10*r tasks.
            let q = TaskQueue::create(ctx, ctx.rank() * 10);
            let mut claimed = Vec::new();
            while let Some(t) = q.pop(ctx) {
                claimed.push(q.global_index(t));
            }
            ctx.barrier();
            claimed
        });
        let total: usize = (0..6).map(|r| r * 10).sum();
        let mut seen = HashSet::new();
        for list in &res.results {
            for &g in list {
                assert!(seen.insert(g), "task {g} claimed twice");
            }
        }
        assert_eq!(seen.len(), total);
        assert_eq!(seen.iter().max().map(|m| m + 1), Some(total));
    }

    #[test]
    fn own_tasks_claimed_first() {
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            let q = TaskQueue::create(ctx, 5);
            let mut order = Vec::new();
            while let Some(t) = q.pop(ctx) {
                order.push(t.owner);
            }
            (ctx.rank(), order)
        });
        for (rank, order) in res.results {
            // Once a rank steals, its own subqueue was exhausted, so no own
            // task may appear after a stolen one in its claim sequence.
            if let Some(first_steal) = order.iter().position(|&o| o != rank) {
                assert!(
                    order[first_steal..].iter().all(|&o| o != rank),
                    "rank {rank} claimed an own task after stealing: {order:?}"
                );
            }
        }
    }

    #[test]
    fn empty_queue_returns_none() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let q = TaskQueue::create(ctx, 0);
            assert_eq!(q.pop(ctx), None);
            assert_eq!(q.total(), 0);
        });
    }

    #[test]
    fn single_owner_queue_fully_stolen() {
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            let count = if ctx.rank() == 0 { 40 } else { 0 };
            let q = TaskQueue::create(ctx, count);
            let mut n = 0;
            while q.pop(ctx).is_some() {
                n += 1;
            }
            ctx.barrier();
            n
        });
        let total: usize = res.results.iter().sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn global_index_is_dense_and_ordered_by_owner() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let q = TaskQueue::create(ctx, 4);
            assert_eq!(q.total(), 12);
            assert_eq!(q.global_index(TaskId { owner: 0, index: 0 }), 0);
            assert_eq!(q.global_index(TaskId { owner: 1, index: 0 }), 4);
            assert_eq!(q.global_index(TaskId { owner: 2, index: 3 }), 11);
        });
    }
}
