//! A single shared atomic counter (GA's `NGA_Read_inc` on a 1-element
//! array, hosted by rank 0). Used for global ID allocation and progress
//! tracking.

use spmd::Ctx;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A globally shared fetch-and-add counter hosted on rank 0.
pub struct GlobalCounter {
    value: Arc<AtomicI64>,
}

impl Clone for GlobalCounter {
    fn clone(&self) -> Self {
        GlobalCounter {
            value: self.value.clone(),
        }
    }
}

impl GlobalCounter {
    /// Collective creation with an initial value.
    pub fn create(ctx: &Ctx, initial: i64) -> Self {
        let handle = if ctx.rank() == 0 {
            Some(GlobalCounter {
                value: Arc::new(AtomicI64::new(initial)),
            })
        } else {
            None
        };
        ctx.broadcast(0, handle, 8)
    }

    /// Atomic fetch-and-add; charged as a remote atomic unless the caller
    /// is rank 0 (the host).
    pub fn fetch_add(&self, ctx: &Ctx, delta: i64) -> i64 {
        ctx.charge_remote_atomic(0);
        self.value.fetch_add(delta, Ordering::Relaxed)
    }

    /// Current value (racy read; charged as a one-sided get).
    pub fn read(&self, ctx: &Ctx) -> i64 {
        ctx.charge_one_sided(8, 0);
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::Runtime;

    #[test]
    fn tickets_are_unique_and_contiguous() {
        let rt = Runtime::for_testing();
        let res = rt.run(8, |ctx| {
            let c = GlobalCounter::create(ctx, 0);
            let mine: Vec<i64> = (0..50).map(|_| c.fetch_add(ctx, 1)).collect();
            ctx.barrier();
            (mine, c.read(ctx))
        });
        let mut all: Vec<i64> = res.results.iter().flat_map(|(m, _)| m.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<i64>>());
        for (_, v) in res.results {
            assert_eq!(v, 400);
        }
    }

    #[test]
    fn initial_value_respected() {
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let c = GlobalCounter::create(ctx, 100);
            ctx.barrier();
            let t = c.fetch_add(ctx, 0);
            assert!(t >= 100);
        });
    }
}
