//! Two-dimensional (row-block-distributed) global arrays.
//!
//! The engine stores the association matrix (N×M) and the knowledge
//! signatures (docs×M) in 2-D global arrays, distributed by contiguous row
//! blocks as GA does by default for the leading dimension.

use crate::global_array::block_starts;
use parking_lot::RwLock;
use spmd::Ctx;
use std::ops::Range;
use std::sync::Arc;

struct Storage2D<T> {
    /// One row-block per rank, stored row-major.
    blocks: Vec<RwLock<Vec<T>>>,
    row_starts: Vec<usize>,
    rows: usize,
    cols: usize,
}

/// A handle to a row-block-distributed matrix of `T`.
pub struct GlobalArray2D<T> {
    storage: Arc<Storage2D<T>>,
}

impl<T> Clone for GlobalArray2D<T> {
    fn clone(&self) -> Self {
        GlobalArray2D {
            storage: self.storage.clone(),
        }
    }
}

impl<T: Copy + Default + Send + Sync + 'static> GlobalArray2D<T> {
    /// Collective creation of a zero-initialized `rows × cols` matrix.
    pub fn create(ctx: &Ctx, rows: usize, cols: usize) -> Self {
        let p = ctx.nprocs();
        let handle = if ctx.rank() == 0 {
            let row_starts = block_starts(rows, p);
            let blocks = (0..p)
                .map(|r| {
                    RwLock::new(vec![
                        T::default();
                        (row_starts[r + 1] - row_starts[r]) * cols
                    ])
                })
                .collect();
            Some(GlobalArray2D {
                storage: Arc::new(Storage2D {
                    blocks,
                    row_starts,
                    rows,
                    cols,
                }),
            })
        } else {
            None
        };
        ctx.broadcast(0, handle, 16)
    }

    pub fn rows(&self) -> usize {
        self.storage.rows
    }

    pub fn cols(&self) -> usize {
        self.storage.cols
    }

    /// Row range owned by `rank`.
    pub fn row_distribution(&self, rank: usize) -> Range<usize> {
        self.storage.row_starts[rank]..self.storage.row_starts[rank + 1]
    }

    /// Which rank owns global row `row`.
    pub fn row_owner(&self, row: usize) -> usize {
        debug_assert!(row < self.storage.rows, "row {row} out of bounds");
        match self.storage.row_starts.binary_search(&row) {
            Ok(r) if r < self.storage.blocks.len() => r,
            Ok(r) => r - 1,
            Err(ins) => ins - 1,
        }
    }

    fn for_row_blocks(&self, rows: Range<usize>, mut f: impl FnMut(usize, Range<usize>, usize)) {
        assert!(rows.end <= self.storage.rows, "row range out of bounds");
        let mut at = rows.start;
        while at < rows.end {
            let r = self.row_owner(at);
            let block_end = self.storage.row_starts[r + 1];
            let seg_end = rows.end.min(block_end);
            let local_row = at - self.storage.row_starts[r];
            f(r, at..seg_end, local_row);
            at = seg_end;
        }
    }

    /// One-sided get of one full row.
    pub fn get_row(&self, ctx: &Ctx, row: usize) -> Vec<T> {
        let r = self.row_owner(row);
        let cols = self.storage.cols;
        let bytes = (cols * std::mem::size_of::<T>()) as u64;
        ctx.charge_one_sided(bytes, r);
        let block = self.storage.blocks[r].read();
        let local = (row - self.storage.row_starts[r]) * cols;
        block[local..local + cols].to_vec()
    }

    /// One-sided get of a contiguous row range, returned row-major.
    pub fn get_rows(&self, ctx: &Ctx, rows: Range<usize>) -> Vec<T> {
        let cols = self.storage.cols;
        let mut out = Vec::with_capacity(rows.len() * cols);
        self.for_row_blocks(rows, |r, seg, local_row| {
            let n = seg.len() * cols;
            ctx.charge_one_sided((n * std::mem::size_of::<T>()) as u64, r);
            let block = self.storage.blocks[r].read();
            out.extend_from_slice(&block[local_row * cols..local_row * cols + n]);
        });
        out
    }

    /// One-sided put of row-major `data` covering rows starting at
    /// `first_row`. A zero-column matrix accepts only empty data.
    pub fn put_rows(&self, ctx: &Ctx, first_row: usize, data: &[T]) {
        let cols = self.storage.cols;
        if cols == 0 {
            assert!(data.is_empty(), "zero-column matrix takes no data");
            return;
        }
        assert_eq!(data.len() % cols, 0, "data must be whole rows");
        let nrows = data.len() / cols;
        self.for_row_blocks(first_row..first_row + nrows, |r, seg, local_row| {
            let n = seg.len() * cols;
            ctx.charge_one_sided((n * std::mem::size_of::<T>()) as u64, r);
            let mut block = self.storage.blocks[r].write();
            let src_off = (seg.start - first_row) * cols;
            block[local_row * cols..local_row * cols + n]
                .copy_from_slice(&data[src_off..src_off + n]);
        });
    }

    /// Mutable access to this rank's own row block as `(row_range,
    /// row-major slice)`.
    pub fn with_local_mut<R>(&self, ctx: &Ctx, f: impl FnOnce(Range<usize>, &mut [T]) -> R) -> R {
        let r = ctx.rank();
        let rows = self.row_distribution(r);
        let bytes = (rows.len() * self.storage.cols * std::mem::size_of::<T>()) as u64;
        ctx.charge_one_sided(bytes, r);
        let mut block = self.storage.blocks[r].write();
        f(rows, &mut block)
    }

    /// Read-only access to this rank's own row block.
    pub fn with_local<R>(&self, ctx: &Ctx, f: impl FnOnce(Range<usize>, &[T]) -> R) -> R {
        let r = ctx.rank();
        let rows = self.row_distribution(r);
        let bytes = (rows.len() * self.storage.cols * std::mem::size_of::<T>()) as u64;
        ctx.charge_one_sided(bytes, r);
        let block = self.storage.blocks[r].read();
        f(rows, &block)
    }

    /// Collective: materialize the whole matrix (row-major) on every rank.
    pub fn to_vec_collective(&self, ctx: &Ctx) -> Vec<T> {
        let local: Vec<T> = self.storage.blocks[ctx.rank()].read().clone();
        let bytes = (local.len() * std::mem::size_of::<T>()) as u64;
        let parts = ctx.allgather(local, bytes);
        parts.concat()
    }
}

impl<T> GlobalArray2D<T>
where
    T: Copy + Default + Send + Sync + 'static + std::ops::AddAssign,
{
    /// One-sided accumulate of row-major `data` into rows starting at
    /// `first_row`. Atomic per block.
    pub fn acc_rows(&self, ctx: &Ctx, first_row: usize, data: &[T]) {
        let cols = self.storage.cols;
        if cols == 0 {
            assert!(data.is_empty(), "zero-column matrix takes no data");
            return;
        }
        assert_eq!(data.len() % cols, 0, "data must be whole rows");
        let nrows = data.len() / cols;
        self.for_row_blocks(first_row..first_row + nrows, |r, seg, local_row| {
            let n = seg.len() * cols;
            ctx.charge_one_sided((n * std::mem::size_of::<T>()) as u64, r);
            let mut block = self.storage.blocks[r].write();
            let src_off = (seg.start - first_row) * cols;
            for (dst, s) in block[local_row * cols..local_row * cols + n]
                .iter_mut()
                .zip(&data[src_off..src_off + n])
            {
                *dst += *s;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::Runtime;

    #[test]
    fn rows_cover_all_ranks() {
        let rt = Runtime::for_testing();
        rt.run(4, |ctx| {
            let m = GlobalArray2D::<f64>::create(ctx, 10, 3);
            let mut covered = 0;
            for r in 0..4 {
                covered += m.row_distribution(r).len();
            }
            assert_eq!(covered, 10);
            assert_eq!(m.rows(), 10);
            assert_eq!(m.cols(), 3);
        });
    }

    #[test]
    fn put_get_rows_roundtrip() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let m = GlobalArray2D::<u32>::create(ctx, 8, 4);
            if ctx.rank() == 2 {
                let data: Vec<u32> = (0..32).collect();
                m.put_rows(ctx, 0, &data);
            }
            ctx.barrier();
            assert_eq!(m.get_row(ctx, 3), vec![12, 13, 14, 15]);
            assert_eq!(m.get_rows(ctx, 2..5), (8..20).collect::<Vec<u32>>());
        });
    }

    #[test]
    fn acc_rows_sums_over_ranks() {
        let rt = Runtime::for_testing();
        let res = rt.run(5, |ctx| {
            let m = GlobalArray2D::<f64>::create(ctx, 6, 2);
            let contribution: Vec<f64> = (0..12).map(|i| i as f64).collect();
            m.acc_rows(ctx, 0, &contribution);
            ctx.barrier();
            m.to_vec_collective(ctx)
        });
        for v in res.results {
            let expect: Vec<f64> = (0..12).map(|i| 5.0 * i as f64).collect();
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn local_rows_round_trip() {
        let rt = Runtime::for_testing();
        rt.run(4, |ctx| {
            let m = GlobalArray2D::<u64>::create(ctx, 11, 3);
            m.with_local_mut(ctx, |rows, block| {
                for (i, row) in rows.clone().enumerate() {
                    for c in 0..3 {
                        block[i * 3 + c] = (row * 10 + c) as u64;
                    }
                }
            });
            ctx.barrier();
            for row in 0..11 {
                assert_eq!(
                    m.get_row(ctx, row),
                    vec![
                        (row * 10) as u64,
                        (row * 10 + 1) as u64,
                        (row * 10 + 2) as u64
                    ]
                );
            }
        });
    }

    #[test]
    fn more_ranks_than_rows() {
        let rt = Runtime::for_testing();
        rt.run(7, |ctx| {
            let m = GlobalArray2D::<u32>::create(ctx, 2, 2);
            if ctx.rank() == 0 {
                m.put_rows(ctx, 0, &[1, 2, 3, 4]);
            }
            ctx.barrier();
            assert_eq!(m.to_vec_collective(ctx), vec![1, 2, 3, 4]);
        });
    }
}
