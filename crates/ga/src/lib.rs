//! # ga — a Global Arrays toolkit analogue
//!
//! The paper's parallelization rests on the Global Arrays (GA) programming
//! model: *"Each process in a SPMD parallel program can asynchronously
//! access logical blocks of physically distributed dense multi-dimensional
//! arrays, without need for explicit cooperation by other processes"*
//! (§3.1). Four GA facilities carry the whole engine, and this crate
//! provides all four:
//!
//! * [`GlobalArray`] / [`GlobalArray2D`] — block-distributed dense arrays
//!   with one-sided `get` / `put` / `acc`(umulate) and locality queries.
//!   The paper stores the field-to-term and term-to-field indices, term
//!   statistics, the major-terms list, and the association matrix in these.
//! * [`GlobalArray::read_inc`] — the atomic fetch-and-increment that
//!   implements fixed-size-chunking dynamic load balancing *"in only a few
//!   lines of code"* (§3.3).
//! * [`DistHashMap`] — the ARMCI-RPC-style distributed hashmap that assigns
//!   global term IDs to vocabulary words during scanning (§3.2).
//! * [`TaskQueue`] — the shared, owner-prioritized task queue used by the
//!   parallel FAST-INV inversion (§3.3): every process first drains its own
//!   loads, then steals loads from other owners via atomic increments.
//!
//! Everything is backed by shared memory (the ranks are threads) but the
//! *accounting* follows the distributed-memory model: any access outside a
//! rank's own block is charged network latency + bandwidth against the
//! caller's virtual clock, atomic operations on remote portions are charged
//! a round trip, and local accesses are charged memory-copy time. Locality
//! therefore matters exactly as it does on the modeled cluster.

pub mod array2d;
pub mod counter;
pub mod dhashmap;
pub mod global_array;
pub mod task_queue;

pub use array2d::GlobalArray2D;
pub use counter::GlobalCounter;
pub use dhashmap::DistHashMap;
pub use global_array::GlobalArray;
pub use task_queue::{TaskId, TaskQueue};
