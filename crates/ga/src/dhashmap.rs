//! The distributed vocabulary hashmap.
//!
//! §3.2 of the paper: *"A global (distributed) hashmap is created
//! collectively by all processes to store the unique terms and generate a
//! global term ID for each term inserted into the hashmap. … We deployed
//! ARMCI remote procedure calls to implement scalable distributed hashmaps
//! for storing global vocabulary information in a distributed fashion."*
//!
//! Terms are hash-partitioned into one shard per rank. An insert or lookup
//! from a non-owning rank is an RPC: it is charged a network round trip
//! carrying the term bytes; the owner-side hash work is charged as
//! [`WorkKind::HashOps`]. Global term IDs are allocated
//! **shard-interleaved** (`id = seq * P + shard`) so they are unique
//! without any coordination and nearly dense (max id < P · max shard
//! size), which lets callers size id-indexed arrays directly.

use intern::TermInterner;
use parking_lot::Mutex;
use perfmodel::WorkKind;
use spmd::Ctx;
use std::sync::Arc;

/// FNV-1a — a stable, seed-free hash so shard placement is deterministic
/// across runs and platforms (std's SipHash is randomly keyed per process).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One shard's term store. The interner assigns dense per-shard sequence
/// numbers in insertion order (`seq = interner id`), which interleave into
/// global IDs as `seq * P + shard`. Interner-backed storage means a hit
/// costs one hash pass and zero allocations, and a miss appends bytes to
/// the shard arena instead of allocating an owned `String` key.
struct Shard {
    terms: TermInterner,
}

struct Inner {
    shards: Vec<Mutex<Shard>>,
    nprocs: usize,
}

/// A distributed hashmap assigning global IDs to string terms.
pub struct DistHashMap {
    inner: Arc<Inner>,
}

impl Clone for DistHashMap {
    fn clone(&self) -> Self {
        DistHashMap {
            inner: self.inner.clone(),
        }
    }
}

impl DistHashMap {
    /// Collective creation; every rank must call this.
    pub fn create(ctx: &Ctx) -> Self {
        let p = ctx.nprocs();
        let handle = if ctx.rank() == 0 {
            Some(DistHashMap {
                inner: Arc::new(Inner {
                    shards: (0..p)
                        .map(|_| {
                            Mutex::new(Shard {
                                terms: TermInterner::new(),
                            })
                        })
                        .collect(),
                    nprocs: p,
                }),
            })
        } else {
            None
        };
        ctx.broadcast(0, handle, 16)
    }

    /// The rank owning `term`'s shard.
    pub fn owner(&self, term: &str) -> usize {
        (fnv1a(term.as_bytes()) % self.inner.nprocs as u64) as usize
    }

    /// Insert `term` if new and return its global ID; return the existing
    /// ID otherwise. Remote inserts are charged an RPC round trip.
    ///
    /// Hit or miss, the shard does exactly one hash pass; a hit allocates
    /// nothing (the interner probes its span table against the borrowed
    /// bytes instead of building an owned key).
    pub fn insert_or_get(&self, ctx: &Ctx, term: &str) -> u32 {
        let shard_idx = self.owner(term);
        // RPC transport: term bytes out, id back. Vocabulary-scaled: the
        // number of these RPCs grows with the vocabulary (Heaps' law).
        ctx.charge_one_sided_vocab(term.len() as u64 + 4, shard_idx);
        // Owner-side hash work (charged to the caller's clock — the RPC
        // blocks the caller; the owner services it asynchronously in the
        // ARMCI progress engine).
        ctx.charge(WorkKind::HashOps, 1);
        let mut shard = self.inner.shards[shard_idx].lock();
        let (seq, _) = shard.terms.intern(term);
        seq * self.inner.nprocs as u32 + shard_idx as u32
    }

    /// Resolve a batch of terms in one charged RPC per destination shard.
    ///
    /// Terms are grouped by owning shard **preserving input order**, so
    /// the IDs assigned are identical to calling [`insert_or_get`]
    /// (DistHashMap::insert_or_get) once per term in order — each shard
    /// sees its subsequence in the same order either way. What changes is
    /// the charge: one round-trip message per *shard group* carrying the
    /// whole group's payload (pipelined per-byte cost), instead of one
    /// round trip per term. Owner-side hash work is still charged per
    /// term. Returns one global ID per input term, in input order.
    pub fn insert_or_get_batch(&self, ctx: &Ctx, terms: &[&str]) -> Vec<u32> {
        let p = self.inner.nprocs;
        let mut out = vec![0u32; terms.len()];
        // Group indices by destination shard, preserving input order.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (i, term) in terms.iter().enumerate() {
            groups[self.owner(term)].push(i);
        }
        for (shard_idx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // One RPC round trip for the whole group: the message carries
            // every term in the group plus one returned id per term.
            let bytes: u64 = group.iter().map(|&i| terms[i].len() as u64 + 4).sum();
            ctx.charge_one_sided_vocab(bytes, shard_idx);
            ctx.charge(WorkKind::HashOps, group.len() as u64);
            let mut shard = self.inner.shards[shard_idx].lock();
            for &i in group {
                let (seq, _) = shard.terms.intern(terms[i]);
                out[i] = seq * p as u32 + shard_idx as u32;
            }
        }
        out
    }

    /// Look up a term without inserting.
    pub fn get(&self, ctx: &Ctx, term: &str) -> Option<u32> {
        let shard_idx = self.owner(term);
        ctx.charge_one_sided_vocab(term.len() as u64 + 4, shard_idx);
        ctx.charge(WorkKind::HashOps, 1);
        let shard = self.inner.shards[shard_idx].lock();
        shard
            .terms
            .lookup(term)
            .map(|seq| seq * self.inner.nprocs as u32 + shard_idx as u32)
    }

    /// Number of distinct terms (collective-safe snapshot; exact once all
    /// ranks have passed a barrier after their last insert).
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().terms.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest array size that can be indexed by every assigned ID
    /// (IDs are interleaved, so this is `P * max_shard_seq`).
    pub fn id_bound(&self) -> usize {
        let p = self.inner.nprocs;
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().terms.len())
            .max()
            .unwrap_or(0)
            * p
    }

    /// This rank's shard contents, `(term, id)` pairs, in shard insertion
    /// order.
    pub fn local_entries(&self, ctx: &Ctx) -> Vec<(String, u32)> {
        let rank = ctx.rank();
        let p = self.inner.nprocs as u32;
        let shard = self.inner.shards[rank].lock();
        shard
            .terms
            .iter()
            .enumerate()
            .map(|(seq, t)| (t.to_string(), seq as u32 * p + rank as u32))
            .collect()
    }

    /// Collective: the full reverse map `id → term` on every rank. Costs an
    /// allgather of the vocabulary.
    pub fn reverse_map_collective(&self, ctx: &Ctx) -> Vec<Option<String>> {
        let local = self.local_entries(ctx);
        let bytes: u64 = local.iter().map(|(t, _)| t.len() as u64 + 4).sum();
        let all = ctx.allgather(local, bytes);
        let bound = self.id_bound();
        let mut out = vec![None; bound];
        for entries in all {
            for (term, id) in entries {
                out[id as usize] = Some(term);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::Runtime;
    use std::collections::HashMap;

    #[test]
    fn same_term_same_id_everywhere() {
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            let m = DistHashMap::create(ctx);
            let id1 = m.insert_or_get(ctx, "protein");
            let id2 = m.insert_or_get(ctx, "protein");
            assert_eq!(id1, id2);
            ctx.barrier();
            id1
        });
        // Every rank resolved the same global id.
        for id in &res.results {
            assert_eq!(*id, res.results[0]);
        }
    }

    #[test]
    fn distinct_terms_distinct_ids() {
        let rt = Runtime::for_testing();
        let res = rt.run(6, |ctx| {
            let m = DistHashMap::create(ctx);
            // Each rank inserts an overlapping sliding window of terms.
            let mut ids = Vec::new();
            for i in 0..50 {
                let term = format!("term{}", (ctx.rank() * 10 + i) % 80);
                ids.push((term.clone(), m.insert_or_get(ctx, &term)));
            }
            ctx.barrier();
            ids
        });
        let mut by_term: HashMap<String, u32> = HashMap::new();
        let mut by_id: HashMap<u32, String> = HashMap::new();
        for pairs in res.results {
            for (term, id) in pairs {
                if let Some(prev) = by_term.get(&term) {
                    assert_eq!(*prev, id, "term {term} got two ids");
                } else {
                    by_term.insert(term.clone(), id);
                }
                if let Some(prev) = by_id.get(&id) {
                    assert_eq!(*prev, &term as &str, "id {id} maps to two terms");
                } else {
                    by_id.insert(id, term);
                }
            }
        }
        assert_eq!(by_term.len(), 80);
    }

    #[test]
    fn ids_nearly_dense() {
        let rt = Runtime::for_testing();
        rt.run(4, |ctx| {
            let m = DistHashMap::create(ctx);
            if ctx.rank() == 0 {
                for i in 0..1000 {
                    m.insert_or_get(ctx, &format!("w{i}"));
                }
            }
            ctx.barrier();
            // Interleaved allocation wastes at most a factor related to
            // shard imbalance; with 1000 hashed terms over 4 shards the
            // bound stays close to 1000.
            let bound = m.id_bound();
            assert!(bound >= 1000);
            assert!(bound < 1500, "id space too sparse: {bound}");
        });
    }

    #[test]
    fn reverse_map_inverts_ids() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let m = DistHashMap::create(ctx);
            let words = ["alpha", "beta", "gamma", "delta"];
            let mut ids = Vec::new();
            for w in words {
                ids.push(m.insert_or_get(ctx, w));
            }
            ctx.barrier();
            let rev = m.reverse_map_collective(ctx);
            for (w, id) in words.iter().zip(ids) {
                assert_eq!(rev[id as usize].as_deref(), Some(*w));
            }
        });
    }

    #[test]
    fn lookup_missing_is_none() {
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let m = DistHashMap::create(ctx);
            assert_eq!(m.get(ctx, "nonexistent"), None);
            m.insert_or_get(ctx, "present");
            ctx.barrier();
            assert!(m.get(ctx, "present").is_some());
        });
    }

    #[test]
    fn fnv_is_stable() {
        // Pin a couple of values so shard placement never changes silently.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a") % 8, fnv1a(b"a") % 8);
        assert_ne!(fnv1a(b"abc"), fnv1a(b"acb"));
    }

    #[test]
    fn batch_matches_scalar_ids() {
        let rt = Runtime::for_testing();
        rt.run(4, |ctx| {
            let scalar = DistHashMap::create(ctx);
            let batch = DistHashMap::create(ctx);
            // Per-rank disjoint + shared terms, duplicates inside the batch.
            let words: Vec<String> = (0..40)
                .map(|i| format!("w{}", (ctx.rank() * 7 + i) % 60))
                .collect();
            let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
            let scalar_ids: Vec<u32> = refs.iter().map(|t| scalar.insert_or_get(ctx, t)).collect();
            let batch_ids = batch.insert_or_get_batch(ctx, &refs);
            ctx.barrier();
            // Both maps converge to the same vocabulary and id invariants.
            assert_eq!(scalar.len(), batch.len());
            assert_eq!(scalar_ids.len(), batch_ids.len());
            for (t, &id) in refs.iter().zip(&batch_ids) {
                assert_eq!(batch.get(ctx, t), Some(id), "lookup-after-insert");
            }
        });
    }

    #[test]
    fn batch_single_rank_bit_identical_to_scalar() {
        let rt = Runtime::for_testing();
        rt.run(1, |ctx| {
            let scalar = DistHashMap::create(ctx);
            let batch = DistHashMap::create(ctx);
            let words: Vec<String> = (0..100).map(|i| format!("t{}", i % 37)).collect();
            let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
            let a: Vec<u32> = refs.iter().map(|t| scalar.insert_or_get(ctx, t)).collect();
            let b = batch.insert_or_get_batch(ctx, &refs);
            assert_eq!(a, b);
        });
    }

    #[test]
    fn batch_charges_one_message_per_shard_group() {
        let rt = Runtime::for_testing();
        rt.run(4, |ctx| {
            let m = DistHashMap::create(ctx);
            if ctx.rank() == 0 {
                let words: Vec<String> = (0..64).map(|i| format!("term{i}")).collect();
                let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
                let before = ctx.stats.snapshot();
                m.insert_or_get_batch(ctx, &refs);
                let after = ctx.stats.snapshot();
                let msgs = after.total_msgs() - before.total_msgs();
                // At most one message per shard (4 shards), not one per term.
                assert!(msgs <= 4, "batch charged {msgs} messages for 64 terms");
                // Payload still covers every term's bytes + returned id.
                let bytes = (after.one_sided_bytes + after.local_bytes)
                    - (before.one_sided_bytes + before.local_bytes);
                let expect: u64 = refs.iter().map(|t| t.len() as u64 + 4).sum();
                assert_eq!(bytes, expect);
            }
            ctx.barrier();
        });
    }

    #[test]
    fn batch_empty_is_free() {
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let m = DistHashMap::create(ctx);
            let before = ctx.stats.snapshot();
            let ids = m.insert_or_get_batch(ctx, &[]);
            assert!(ids.is_empty());
            assert_eq!(ctx.stats.snapshot(), before);
            ctx.barrier();
        });
    }

    #[test]
    fn concurrent_inserts_of_same_term_race_safely() {
        let rt = Runtime::for_testing();
        let res = rt.run(8, |ctx| {
            let m = DistHashMap::create(ctx);
            // All ranks hammer the same small vocabulary concurrently.
            let mut ids = Vec::new();
            for i in 0..20 {
                ids.push(m.insert_or_get(ctx, &format!("shared{i}")));
            }
            ctx.barrier();
            assert_eq!(m.len(), 20);
            ids
        });
        for ids in &res.results {
            assert_eq!(ids, &res.results[0]);
        }
    }
}
