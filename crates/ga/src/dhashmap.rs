//! The distributed vocabulary hashmap.
//!
//! §3.2 of the paper: *"A global (distributed) hashmap is created
//! collectively by all processes to store the unique terms and generate a
//! global term ID for each term inserted into the hashmap. … We deployed
//! ARMCI remote procedure calls to implement scalable distributed hashmaps
//! for storing global vocabulary information in a distributed fashion."*
//!
//! Terms are hash-partitioned into one shard per rank. An insert or lookup
//! from a non-owning rank is an RPC: it is charged a network round trip
//! carrying the term bytes; the owner-side hash work is charged as
//! [`WorkKind::HashOps`]. Global term IDs are allocated
//! **shard-interleaved** (`id = seq * P + shard`) so they are unique
//! without any coordination and nearly dense (max id < P · max shard
//! size), which lets callers size id-indexed arrays directly.

use parking_lot::Mutex;
use perfmodel::WorkKind;
use spmd::Ctx;
use std::collections::HashMap;
use std::sync::Arc;

/// FNV-1a — a stable, seed-free hash so shard placement is deterministic
/// across runs and platforms (std's SipHash is randomly keyed per process).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct Shard {
    map: HashMap<String, u32>,
    next_seq: u32,
}

struct Inner {
    shards: Vec<Mutex<Shard>>,
    nprocs: usize,
}

/// A distributed hashmap assigning global IDs to string terms.
pub struct DistHashMap {
    inner: Arc<Inner>,
}

impl Clone for DistHashMap {
    fn clone(&self) -> Self {
        DistHashMap {
            inner: self.inner.clone(),
        }
    }
}

impl DistHashMap {
    /// Collective creation; every rank must call this.
    pub fn create(ctx: &Ctx) -> Self {
        let p = ctx.nprocs();
        let handle = if ctx.rank() == 0 {
            Some(DistHashMap {
                inner: Arc::new(Inner {
                    shards: (0..p)
                        .map(|_| {
                            Mutex::new(Shard {
                                map: HashMap::new(),
                                next_seq: 0,
                            })
                        })
                        .collect(),
                    nprocs: p,
                }),
            })
        } else {
            None
        };
        ctx.broadcast(0, handle, 16)
    }

    /// The rank owning `term`'s shard.
    pub fn owner(&self, term: &str) -> usize {
        (fnv1a(term.as_bytes()) % self.inner.nprocs as u64) as usize
    }

    /// Insert `term` if new and return its global ID; return the existing
    /// ID otherwise. Remote inserts are charged an RPC round trip.
    pub fn insert_or_get(&self, ctx: &Ctx, term: &str) -> u32 {
        let shard_idx = self.owner(term);
        // RPC transport: term bytes out, id back. Vocabulary-scaled: the
        // number of these RPCs grows with the vocabulary (Heaps' law).
        ctx.charge_one_sided_vocab(term.len() as u64 + 4, shard_idx);
        // Owner-side hash work (charged to the caller's clock — the RPC
        // blocks the caller; the owner services it asynchronously in the
        // ARMCI progress engine).
        ctx.charge(WorkKind::HashOps, 1);
        let mut shard = self.inner.shards[shard_idx].lock();
        if let Some(&id) = shard.map.get(term) {
            return id;
        }
        let id = shard.next_seq * self.inner.nprocs as u32 + shard_idx as u32;
        shard.next_seq += 1;
        shard.map.insert(term.to_string(), id);
        id
    }

    /// Look up a term without inserting.
    pub fn get(&self, ctx: &Ctx, term: &str) -> Option<u32> {
        let shard_idx = self.owner(term);
        ctx.charge_one_sided_vocab(term.len() as u64 + 4, shard_idx);
        ctx.charge(WorkKind::HashOps, 1);
        let shard = self.inner.shards[shard_idx].lock();
        shard.map.get(term).copied()
    }

    /// Number of distinct terms (collective-safe snapshot; exact once all
    /// ranks have passed a barrier after their last insert).
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest array size that can be indexed by every assigned ID
    /// (IDs are interleaved, so this is `P * max_shard_seq`).
    pub fn id_bound(&self) -> usize {
        let p = self.inner.nprocs;
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().next_seq as usize)
            .max()
            .unwrap_or(0)
            * p
    }

    /// This rank's shard contents, `(term, id)` pairs, unordered.
    pub fn local_entries(&self, ctx: &Ctx) -> Vec<(String, u32)> {
        let shard = self.inner.shards[ctx.rank()].lock();
        shard.map.iter().map(|(t, &id)| (t.clone(), id)).collect()
    }

    /// Collective: the full reverse map `id → term` on every rank. Costs an
    /// allgather of the vocabulary.
    pub fn reverse_map_collective(&self, ctx: &Ctx) -> Vec<Option<String>> {
        let local = self.local_entries(ctx);
        let bytes: u64 = local.iter().map(|(t, _)| t.len() as u64 + 4).sum();
        let all = ctx.allgather(local, bytes);
        let bound = self.id_bound();
        let mut out = vec![None; bound];
        for entries in all {
            for (term, id) in entries {
                out[id as usize] = Some(term);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::Runtime;

    #[test]
    fn same_term_same_id_everywhere() {
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            let m = DistHashMap::create(ctx);
            let id1 = m.insert_or_get(ctx, "protein");
            let id2 = m.insert_or_get(ctx, "protein");
            assert_eq!(id1, id2);
            ctx.barrier();
            id1
        });
        // Every rank resolved the same global id.
        for id in &res.results {
            assert_eq!(*id, res.results[0]);
        }
    }

    #[test]
    fn distinct_terms_distinct_ids() {
        let rt = Runtime::for_testing();
        let res = rt.run(6, |ctx| {
            let m = DistHashMap::create(ctx);
            // Each rank inserts an overlapping sliding window of terms.
            let mut ids = Vec::new();
            for i in 0..50 {
                let term = format!("term{}", (ctx.rank() * 10 + i) % 80);
                ids.push((term.clone(), m.insert_or_get(ctx, &term)));
            }
            ctx.barrier();
            ids
        });
        let mut by_term: HashMap<String, u32> = HashMap::new();
        let mut by_id: HashMap<u32, String> = HashMap::new();
        for pairs in res.results {
            for (term, id) in pairs {
                if let Some(prev) = by_term.get(&term) {
                    assert_eq!(*prev, id, "term {term} got two ids");
                } else {
                    by_term.insert(term.clone(), id);
                }
                if let Some(prev) = by_id.get(&id) {
                    assert_eq!(*prev, &term as &str, "id {id} maps to two terms");
                } else {
                    by_id.insert(id, term);
                }
            }
        }
        assert_eq!(by_term.len(), 80);
    }

    #[test]
    fn ids_nearly_dense() {
        let rt = Runtime::for_testing();
        rt.run(4, |ctx| {
            let m = DistHashMap::create(ctx);
            if ctx.rank() == 0 {
                for i in 0..1000 {
                    m.insert_or_get(ctx, &format!("w{i}"));
                }
            }
            ctx.barrier();
            // Interleaved allocation wastes at most a factor related to
            // shard imbalance; with 1000 hashed terms over 4 shards the
            // bound stays close to 1000.
            let bound = m.id_bound();
            assert!(bound >= 1000);
            assert!(bound < 1500, "id space too sparse: {bound}");
        });
    }

    #[test]
    fn reverse_map_inverts_ids() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let m = DistHashMap::create(ctx);
            let words = ["alpha", "beta", "gamma", "delta"];
            let mut ids = Vec::new();
            for w in words {
                ids.push(m.insert_or_get(ctx, w));
            }
            ctx.barrier();
            let rev = m.reverse_map_collective(ctx);
            for (w, id) in words.iter().zip(ids) {
                assert_eq!(rev[id as usize].as_deref(), Some(*w));
            }
        });
    }

    #[test]
    fn lookup_missing_is_none() {
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let m = DistHashMap::create(ctx);
            assert_eq!(m.get(ctx, "nonexistent"), None);
            m.insert_or_get(ctx, "present");
            ctx.barrier();
            assert!(m.get(ctx, "present").is_some());
        });
    }

    #[test]
    fn fnv_is_stable() {
        // Pin a couple of values so shard placement never changes silently.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a") % 8, fnv1a(b"a") % 8);
        assert_ne!(fnv1a(b"abc"), fnv1a(b"acb"));
    }

    #[test]
    fn concurrent_inserts_of_same_term_race_safely() {
        let rt = Runtime::for_testing();
        let res = rt.run(8, |ctx| {
            let m = DistHashMap::create(ctx);
            // All ranks hammer the same small vocabulary concurrently.
            let mut ids = Vec::new();
            for i in 0..20 {
                ids.push(m.insert_or_get(ctx, &format!("shared{i}")));
            }
            ctx.barrier();
            assert_eq!(m.len(), 20);
            ids
        });
        for ids in &res.results {
            assert_eq!(ids, &res.results[0]);
        }
    }
}
