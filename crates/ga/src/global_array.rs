//! One-dimensional block-distributed global arrays.

use parking_lot::RwLock;
use spmd::Ctx;
use std::ops::Range;
use std::sync::Arc;

/// Physically distributed storage: one block per rank, individually locked
/// so one-sided accesses to different blocks never contend.
struct Storage<T> {
    blocks: Vec<RwLock<Vec<T>>>,
    /// `starts[r]` is the global index of the first element of rank `r`'s
    /// block; `starts[nprocs]` == `len`.
    starts: Vec<usize>,
    len: usize,
}

/// A handle to a block-distributed 1-D array of `T`.
///
/// Created collectively by [`GlobalArray::create`]; every rank holds a
/// clone of the same handle. All data-access methods take the caller's
/// [`Ctx`] so the traffic is charged to the right virtual clock.
pub struct GlobalArray<T> {
    storage: Arc<Storage<T>>,
}

impl<T> Clone for GlobalArray<T> {
    fn clone(&self) -> Self {
        GlobalArray {
            storage: self.storage.clone(),
        }
    }
}

/// Standard block distribution: the first `len % p` ranks get one extra
/// element.
pub fn block_starts(len: usize, p: usize) -> Vec<usize> {
    let base = len / p;
    let extra = len % p;
    let mut starts = Vec::with_capacity(p + 1);
    let mut at = 0;
    for r in 0..p {
        starts.push(at);
        at += base + usize::from(r < extra);
    }
    starts.push(at);
    debug_assert_eq!(at, len);
    starts
}

impl<T: Copy + Default + Send + Sync + 'static> GlobalArray<T> {
    /// Collective creation of a zero-initialized array of `len` elements
    /// block-distributed over all ranks. Every rank must call this.
    pub fn create(ctx: &Ctx, len: usize) -> Self {
        let p = ctx.nprocs();
        let handle = if ctx.rank() == 0 {
            let starts = block_starts(len, p);
            let blocks = (0..p)
                .map(|r| RwLock::new(vec![T::default(); starts[r + 1] - starts[r]]))
                .collect();
            Some(GlobalArray {
                storage: Arc::new(Storage {
                    blocks,
                    starts,
                    len,
                }),
            })
        } else {
            None
        };
        ctx.broadcast(0, handle, 16)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.storage.len
    }

    pub fn is_empty(&self) -> bool {
        self.storage.len == 0
    }

    /// The global index range owned by `rank` (the GA "distribution"
    /// query — locality information the paper's §3.1 highlights).
    pub fn distribution(&self, rank: usize) -> Range<usize> {
        self.storage.starts[rank]..self.storage.starts[rank + 1]
    }

    /// Which rank owns global index `i`.
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.storage.len, "index {i} out of bounds");
        // starts is sorted; binary search for the containing block.
        match self.storage.starts.binary_search(&i) {
            Ok(r) if r < self.storage.blocks.len() => r,
            Ok(r) => r - 1,
            Err(ins) => ins - 1,
        }
    }

    /// For each block overlapping `range`, call `f(rank, global_sub_range,
    /// local_offset)`.
    fn for_blocks(&self, range: Range<usize>, mut f: impl FnMut(usize, Range<usize>, usize)) {
        assert!(range.end <= self.storage.len, "range out of bounds");
        if range.start >= range.end {
            return;
        }
        let mut at = range.start;
        while at < range.end {
            let r = self.owner(at);
            let block_end = self.storage.starts[r + 1];
            let seg_end = range.end.min(block_end);
            let local = at - self.storage.starts[r];
            f(r, at..seg_end, local);
            at = seg_end;
        }
    }

    /// One-sided get of `range` into a fresh vector.
    pub fn get(&self, ctx: &Ctx, range: Range<usize>) -> Vec<T> {
        let mut out = Vec::with_capacity(range.len());
        self.for_blocks(range, |r, seg, local| {
            let bytes = (seg.len() * std::mem::size_of::<T>()) as u64;
            ctx.charge_one_sided(bytes, r);
            let block = self.storage.blocks[r].read();
            out.extend_from_slice(&block[local..local + seg.len()]);
        });
        out
    }

    /// One-sided get of a single element.
    pub fn get_one(&self, ctx: &Ctx, i: usize) -> T {
        self.get(ctx, i..i + 1)[0]
    }

    /// Destination-aggregated get of many ranges: at most one message per
    /// rank that owns any requested data, carrying every range segment
    /// that rank serves (the batched counterpart of [`get`]
    /// (GlobalArray::get), with the same per-destination packing as
    /// [`put_batch`](GlobalArray::put_batch)). Returns one vector per
    /// input range, in input order.
    pub fn get_batch(&self, ctx: &Ctx, ranges: &[Range<usize>]) -> Vec<Vec<T>> {
        let p = self.storage.blocks.len();
        let mut bytes = vec![0u64; p];
        let mut segs = vec![0u64; p];
        for range in ranges {
            self.for_blocks(range.clone(), |r, seg, _local| {
                bytes[r] += (seg.len() * std::mem::size_of::<T>()) as u64;
                segs[r] += 1;
            });
        }
        for r in 0..p {
            if segs[r] > 0 {
                ctx.charge_one_sided_batch(bytes[r], r, segs[r]);
            }
        }
        ranges
            .iter()
            .map(|range| {
                let mut out = Vec::with_capacity(range.len());
                self.for_blocks(range.clone(), |r, seg, local| {
                    let block = self.storage.blocks[r].read();
                    out.extend_from_slice(&block[local..local + seg.len()]);
                });
                out
            })
            .collect()
    }

    /// One-sided put of `data` starting at global index `start`.
    pub fn put(&self, ctx: &Ctx, start: usize, data: &[T]) {
        self.for_blocks(start..start + data.len(), |r, seg, local| {
            let bytes = (seg.len() * std::mem::size_of::<T>()) as u64;
            ctx.charge_one_sided(bytes, r);
            let mut block = self.storage.blocks[r].write();
            let src = &data[seg.start - start..seg.end - start];
            block[local..local + seg.len()].copy_from_slice(src);
        });
    }

    /// One-sided put of many `(start, data)` pairs as a
    /// **destination-aggregated exchange**: every span (or span segment,
    /// when a span straddles a block boundary) bound for one rank is
    /// packed into a single message to that rank — ARMCI-style
    /// aggregation of one-sided operations. Spans need not be contiguous
    /// or sorted; the message carries the scattered spans with their
    /// target offsets. The stored result is identical to issuing every
    /// put individually, and the charged payload bytes are unchanged;
    /// only the *message count* collapses, from one per span to at most
    /// one per destination rank.
    ///
    /// This is the transport for scatter passes that emit many small
    /// writes across the array (FAST-INV posting placement).
    pub fn put_batch(&self, ctx: &Ctx, puts: &[(usize, &[T])]) {
        self.dest_packed_charge_then(ctx, puts, |ga, start, data| {
            ga.write_unmetered(start, data);
        });
    }

    /// Charge at most one message per destination rank for `ops` (payload
    /// = the sum of the rank's span-segment bytes, scalar-equivalent = the
    /// number of span segments packed), then apply `apply` to every op
    /// (unmetered).
    fn dest_packed_charge_then(
        &self,
        ctx: &Ctx,
        ops: &[(usize, &[T])],
        apply: impl Fn(&Self, usize, &[T]),
    ) {
        let p = self.storage.blocks.len();
        // Per-destination payload bytes and span-segment counts.
        let mut bytes = vec![0u64; p];
        let mut segs = vec![0u64; p];
        for &(start, data) in ops {
            self.for_blocks(start..start + data.len(), |r, seg, _local| {
                bytes[r] += (seg.len() * std::mem::size_of::<T>()) as u64;
                segs[r] += 1;
            });
        }
        for r in 0..p {
            if segs[r] > 0 {
                ctx.charge_one_sided_batch(bytes[r], r, segs[r]);
            }
        }
        for &(start, data) in ops {
            apply(self, start, data);
        }
    }

    /// Store `data` at `start` without charging (transport already paid).
    fn write_unmetered(&self, start: usize, data: &[T]) {
        self.for_blocks(start..start + data.len(), |r, seg, local| {
            let mut block = self.storage.blocks[r].write();
            let src = &data[seg.start - start..seg.end - start];
            block[local..local + seg.len()].copy_from_slice(src);
        });
    }

    /// Run `f` over this rank's own block (no copy, charged as local
    /// access of the block's size).
    pub fn with_local_mut<R>(&self, ctx: &Ctx, f: impl FnOnce(&mut [T]) -> R) -> R {
        let r = ctx.rank();
        let bytes = ((self.storage.starts[r + 1] - self.storage.starts[r])
            * std::mem::size_of::<T>()) as u64;
        ctx.charge_one_sided(bytes, r);
        let mut block = self.storage.blocks[r].write();
        f(&mut block)
    }

    /// Read-only access to this rank's own block.
    pub fn with_local<R>(&self, ctx: &Ctx, f: impl FnOnce(&[T]) -> R) -> R {
        let r = ctx.rank();
        let bytes = ((self.storage.starts[r + 1] - self.storage.starts[r])
            * std::mem::size_of::<T>()) as u64;
        ctx.charge_one_sided(bytes, r);
        let block = self.storage.blocks[r].read();
        f(&block)
    }

    /// Collective: gather the full array contents on every rank (an
    /// Allgather of the local blocks).
    pub fn to_vec_collective(&self, ctx: &Ctx) -> Vec<T> {
        let local: Vec<T> = {
            let r = ctx.rank();
            let block = self.storage.blocks[r].read();
            block.clone()
        };
        let bytes = (local.len() * std::mem::size_of::<T>()) as u64;
        let parts = ctx.allgather(local, bytes);
        parts.concat()
    }
}

impl<T> GlobalArray<T>
where
    T: Copy + Default + Send + Sync + 'static + std::ops::AddAssign,
{
    /// One-sided accumulate: `a[start..] += data`, element-wise. Each
    /// block update is atomic with respect to other accumulates (the GA
    /// `NGA_Acc` contract).
    pub fn acc(&self, ctx: &Ctx, start: usize, data: &[T]) {
        self.for_blocks(start..start + data.len(), |r, seg, local| {
            let bytes = (seg.len() * std::mem::size_of::<T>()) as u64;
            ctx.charge_one_sided(bytes, r);
            let mut block = self.storage.blocks[r].write();
            let src = &data[seg.start - start..seg.end - start];
            for (dst, s) in block[local..local + seg.len()].iter_mut().zip(src) {
                *dst += *s;
            }
        });
    }

    /// Batched [`acc`](GlobalArray::acc) with the same
    /// destination-aggregated packing and charging discipline as
    /// [`put_batch`](GlobalArray::put_batch): at most one message per
    /// destination rank, scattered spans inside.
    pub fn acc_batch(&self, ctx: &Ctx, accs: &[(usize, &[T])]) {
        self.dest_packed_charge_then(ctx, accs, |ga, start, data| {
            ga.for_blocks(start..start + data.len(), |r, seg, local| {
                let mut block = ga.storage.blocks[r].write();
                let src = &data[seg.start - start..seg.end - start];
                for (dst, s) in block[local..local + seg.len()].iter_mut().zip(src) {
                    *dst += *s;
                }
            });
        });
    }
}

impl GlobalArray<i64> {
    /// Atomic read-and-increment of element `i` by `delta`, returning the
    /// previous value — GA's `NGA_Read_inc`, the primitive behind the
    /// paper's dynamic load balancing.
    pub fn read_inc(&self, ctx: &Ctx, i: usize, delta: i64) -> i64 {
        let r = self.owner(i);
        ctx.charge_remote_atomic(r);
        let mut block = self.storage.blocks[r].write();
        let local = i - self.storage.starts[r];
        let old = block[local];
        block[local] += delta;
        old
    }

    /// Batched fetch-and-add: apply every `(index, delta)` op and return
    /// the pre-increment values in **submission order**, charging one
    /// aggregated RPC per destination rank instead of one remote atomic
    /// per op. Block distribution makes ownership computable locally, so
    /// the ops bound for one rank travel in a single message; the owner
    /// applies its sub-batch atomically (under one block lock) in
    /// submission order, which makes the returned values exactly what a
    /// scalar [`read_inc`](GlobalArray::read_inc) sequence would have
    /// seen had no other rank interleaved — and, because each op still
    /// reserves a disjoint `[old, old+delta)` window, the *set* of
    /// reserved windows is identical to the scalar sequence under any
    /// interleaving.
    pub fn fetch_add_batch(&self, ctx: &Ctx, ops: &[(usize, i64)]) -> Vec<i64> {
        let p = self.storage.blocks.len();
        let mut out = vec![0i64; ops.len()];
        // Group op indices by owning rank, preserving submission order.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); p];
        for (i, &(idx, _)) in ops.iter().enumerate() {
            groups[self.owner(idx)].push(i);
        }
        for (r, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // One round trip carrying the rank's (index, delta) pairs and
            // returning one old value per pair.
            let bytes = (group.len() * 16) as u64;
            ctx.charge_one_sided_batch(bytes, r, group.len() as u64);
            let mut block = self.storage.blocks[r].write();
            for &i in group {
                let (idx, delta) = ops[i];
                let local = idx - self.storage.starts[r];
                out[i] = block[local];
                block[local] += delta;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::Runtime;

    #[test]
    fn block_starts_cover_everything() {
        for (len, p) in [(10usize, 3usize), (7, 7), (5, 8), (0, 4), (100, 1)] {
            let s = block_starts(len, p);
            assert_eq!(s.len(), p + 1);
            assert_eq!(s[0], 0);
            assert_eq!(s[p], len);
            for w in s.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn put_get_roundtrip_across_blocks() {
        let rt = Runtime::for_testing();
        rt.run(4, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 103);
            if ctx.rank() == 0 {
                let data: Vec<u32> = (0..103).collect();
                a.put(ctx, 0, &data);
            }
            ctx.barrier();
            let got = a.get(ctx, 0..103);
            assert_eq!(got, (0..103).collect::<Vec<u32>>());
            // Sub-range crossing block boundaries.
            let mid = a.get(ctx, 20..80);
            assert_eq!(mid, (20..80).collect::<Vec<u32>>());
        });
    }

    #[test]
    fn owner_matches_distribution() {
        let rt = Runtime::for_testing();
        rt.run(5, |ctx| {
            let a = GlobalArray::<u8>::create(ctx, 37);
            for r in 0..5 {
                for i in a.distribution(r) {
                    assert_eq!(a.owner(i), r, "index {i}");
                }
            }
        });
    }

    #[test]
    fn accumulate_sums_concurrent_contributions() {
        let rt = Runtime::for_testing();
        let res = rt.run(8, |ctx| {
            let a = GlobalArray::<u64>::create(ctx, 50);
            // Every rank accumulates 1 into every element.
            a.acc(ctx, 0, &vec![1u64; 50]);
            ctx.barrier();
            a.get(ctx, 0..50)
        });
        for v in res.results {
            assert_eq!(v, vec![8u64; 50]);
        }
    }

    #[test]
    fn read_inc_hands_out_unique_tickets() {
        let rt = Runtime::for_testing();
        let res = rt.run(6, |ctx| {
            let a = GlobalArray::<i64>::create(ctx, 1);
            let mut mine = Vec::new();
            for _ in 0..100 {
                mine.push(a.read_inc(ctx, 0, 1));
            }
            ctx.barrier();
            (mine, a.get_one(ctx, 0))
        });
        let mut all: Vec<i64> = res.results.iter().flat_map(|(m, _)| m.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..600).collect::<Vec<i64>>());
        for (_, total) in res.results {
            assert_eq!(total, 600);
        }
    }

    #[test]
    fn local_access_sees_own_block_only() {
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 40);
            let my = a.distribution(ctx.rank());
            a.with_local_mut(ctx, |block| {
                assert_eq!(block.len(), my.len());
                for (off, v) in block.iter_mut().enumerate() {
                    *v = (my.start + off) as u32;
                }
            });
            ctx.barrier();
            a.get(ctx, 0..40)
        });
        for v in res.results {
            assert_eq!(v, (0..40u32).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn to_vec_collective_agrees_with_get() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let a = GlobalArray::<u16>::create(ctx, 17);
            if ctx.rank() == 1 {
                a.put(ctx, 0, &(0..17).map(|i| i * 3).collect::<Vec<u16>>());
            }
            ctx.barrier();
            let v = a.to_vec_collective(ctx);
            assert_eq!(v, a.get(ctx, 0..17));
        });
    }

    #[test]
    fn remote_traffic_is_charged_local_is_cheaper() {
        let rt = Runtime::new(Arc::new(perfmodel::CostModel::pnnl_2007()));
        let res = rt.run(2, |ctx| {
            let a = GlobalArray::<u64>::create(ctx, 1000);
            ctx.barrier();
            let t0 = ctx.now();
            // Rank 0 reads its own block; rank 1 reads rank 0's block.
            let _ = a.get(ctx, 0..500);
            ctx.now() - t0
        });
        assert!(
            res.results[1] > res.results[0],
            "remote get must cost more: {:?}",
            res.results
        );
    }

    #[test]
    fn put_batch_matches_individual_puts() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 40);
            let b = GlobalArray::<u32>::create(ctx, 40);
            if ctx.rank() == 0 {
                // Out-of-order, partly adjacent, partly gapped writes.
                let payloads: Vec<(usize, Vec<u32>)> = vec![
                    (10, vec![1, 2, 3]),
                    (0, vec![7]),
                    (13, vec![4, 5]),
                    (30, vec![9, 9]),
                    (1, vec![8, 8]),
                ];
                for (s, d) in &payloads {
                    a.put(ctx, *s, d);
                }
                let refs: Vec<(usize, &[u32])> =
                    payloads.iter().map(|(s, d)| (*s, d.as_slice())).collect();
                b.put_batch(ctx, &refs);
            }
            ctx.barrier();
            assert_eq!(a.get(ctx, 0..40), b.get(ctx, 0..40));
        });
    }

    #[test]
    fn put_batch_charges_one_message_per_destination() {
        let rt = Runtime::for_testing();
        rt.run(1, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 100);
            let payloads: Vec<(usize, Vec<u32>)> = (0..10).map(|i| (i * 2, vec![1, 1])).collect();
            let refs: Vec<(usize, &[u32])> =
                payloads.iter().map(|(s, d)| (*s, d.as_slice())).collect();

            // Scalar puts: one message each.
            let before = ctx.stats.snapshot();
            for (s, d) in &refs {
                a.put(ctx, *s, d);
            }
            let scalar_msgs = ctx.stats.snapshot().total_msgs() - before.total_msgs();
            assert_eq!(scalar_msgs, 10);

            // The same writes batched: one destination rank, one message.
            let before = ctx.stats.snapshot();
            a.put_batch(ctx, &refs);
            let snap = ctx.stats.snapshot();
            let batch_msgs = snap.total_msgs() - before.total_msgs();
            assert_eq!(batch_msgs, 1);
            // Payload bytes are unchanged by packing, and the fold is
            // recorded: 10 scalar-equivalent spans in 1 batched message.
            assert_eq!(
                snap.local_bytes - before.local_bytes,
                (20 * std::mem::size_of::<u32>()) as u64
            );
            assert_eq!(snap.batched_rpcs - before.batched_rpcs, 1);
            assert_eq!(snap.batched_scalar_equiv - before.batched_scalar_equiv, 10);
        });
    }

    #[test]
    fn put_batch_packs_gapped_spans_into_one_message() {
        let rt = Runtime::for_testing();
        rt.run(1, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 100);
            // Scattered, gapped spans — still one destination, so the
            // aggregated exchange ships them in a single message.
            let payloads: Vec<(usize, Vec<u32>)> = vec![
                (0, vec![1, 2]),
                (2, vec![3]),
                (50, vec![4]),
                (51, vec![5, 6]),
            ];
            let refs: Vec<(usize, &[u32])> =
                payloads.iter().map(|(s, d)| (*s, d.as_slice())).collect();
            let before = ctx.stats.snapshot();
            a.put_batch(ctx, &refs);
            let msgs = ctx.stats.snapshot().total_msgs() - before.total_msgs();
            assert_eq!(msgs, 1);
            assert_eq!(a.get(ctx, 0..3), vec![1, 2, 3]);
            assert_eq!(a.get(ctx, 50..53), vec![4, 5, 6]);
        });
    }

    #[test]
    fn put_batch_charges_per_destination_rank() {
        let rt = Runtime::for_testing();
        rt.run(4, |ctx| {
            // 40 elements over 4 ranks: blocks of 10.
            let a = GlobalArray::<u32>::create(ctx, 40);
            if ctx.rank() == 0 {
                // Spans on ranks 0 and 2 only, plus one straddling 1|2.
                let payloads: Vec<(usize, Vec<u32>)> = vec![
                    (0, vec![1]),
                    (5, vec![2, 3]),
                    (25, vec![4]),
                    (18, vec![5, 6, 7, 8]), // 18..22 straddles ranks 1 and 2
                ];
                let refs: Vec<(usize, &[u32])> =
                    payloads.iter().map(|(s, d)| (*s, d.as_slice())).collect();
                let before = ctx.stats.snapshot();
                a.put_batch(ctx, &refs);
                let snap = ctx.stats.snapshot();
                // Destinations touched: 0, 1, 2 → exactly 3 messages.
                assert_eq!(snap.total_msgs() - before.total_msgs(), 3);
                // 5 span segments folded (the straddler splits in two).
                assert_eq!(snap.batched_scalar_equiv - before.batched_scalar_equiv, 5);
            }
            ctx.barrier();
            assert_eq!(a.get(ctx, 18..22), vec![5, 6, 7, 8]);
            assert_eq!(a.get_one(ctx, 25), 4);
        });
    }

    #[test]
    fn acc_batch_matches_individual_accs() {
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            let a = GlobalArray::<u64>::create(ctx, 20);
            // Every rank accumulates adjacent slices covering 0..20.
            let payloads: Vec<(usize, Vec<u64>)> = (0..5).map(|i| (i * 4, vec![1u64; 4])).collect();
            let refs: Vec<(usize, &[u64])> =
                payloads.iter().map(|(s, d)| (*s, d.as_slice())).collect();
            let before = ctx.stats.snapshot();
            a.acc_batch(ctx, &refs);
            let msgs = ctx.stats.snapshot().total_msgs() - before.total_msgs();
            ctx.barrier();
            (a.get(ctx, 0..20), msgs)
        });
        for (v, msgs) in res.results {
            assert_eq!(v, vec![4u64; 20]);
            // 0..20 touches all 4 blocks: one message per destination.
            assert_eq!(msgs, 4);
        }
    }

    #[test]
    fn get_batch_matches_scalar_gets_with_fewer_messages() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 60);
            if ctx.rank() == 0 {
                a.put(ctx, 0, &(0..60).collect::<Vec<u32>>());
            }
            ctx.barrier();
            let ranges = [3..9, 0..2, 40..45, 12..12, 19..23];
            let before = ctx.stats.snapshot();
            let batched = a.get_batch(ctx, &ranges);
            let snap = ctx.stats.snapshot();
            let msgs = snap.total_msgs() - before.total_msgs();
            for (range, got) in ranges.iter().zip(&batched) {
                assert_eq!(got, &a.get(ctx, range.clone()));
            }
            // Blocks of 20: destinations touched are rank 0 (3..9, 0..2,
            // 19..20), rank 1 (20..23) and rank 2 (40..45) → 3 messages
            // for what 5 scalar gets would have charged as 6.
            assert!(msgs <= 3, "get_batch charged {msgs} messages");
            assert_eq!(snap.batched_scalar_equiv - before.batched_scalar_equiv, 5);
        });
    }

    #[test]
    fn fetch_add_batch_matches_scalar_sequence_single_rank() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let scalar = GlobalArray::<i64>::create(ctx, 17);
            let batch = GlobalArray::<i64>::create(ctx, 17);
            if ctx.rank() == 1 {
                // Repeated indices, mixed deltas, out of order.
                let ops: Vec<(usize, i64)> =
                    vec![(3, 2), (0, 1), (3, 5), (16, 7), (0, 4), (9, 1), (3, 1)];
                let want: Vec<i64> = ops
                    .iter()
                    .map(|&(i, d)| scalar.read_inc(ctx, i, d))
                    .collect();
                let got = batch.fetch_add_batch(ctx, &ops);
                assert_eq!(got, want);
            }
            ctx.barrier();
            assert_eq!(
                scalar.get(ctx, 0..17),
                batch.get(ctx, 0..17),
                "final cursor state must agree"
            );
        });
    }

    #[test]
    fn fetch_add_batch_charges_one_message_per_destination() {
        let rt = Runtime::for_testing();
        rt.run(4, |ctx| {
            let a = GlobalArray::<i64>::create(ctx, 40);
            if ctx.rank() == 0 {
                // 12 ops spread over 3 of the 4 blocks.
                let ops: Vec<(usize, i64)> = (0..12).map(|i| ((i * 7) % 30, 1)).collect();
                let before = ctx.stats.snapshot();
                a.fetch_add_batch(ctx, &ops);
                let snap = ctx.stats.snapshot();
                assert_eq!(snap.total_msgs() - before.total_msgs(), 3);
                assert_eq!(snap.batched_scalar_equiv - before.batched_scalar_equiv, 12);
                assert_eq!(snap.remote_atomics, before.remote_atomics);
            }
            ctx.barrier();
        });
    }

    #[test]
    fn fetch_add_batch_reserves_disjoint_windows_concurrently() {
        let rt = Runtime::for_testing();
        let res = rt.run(6, |ctx| {
            let a = GlobalArray::<i64>::create(ctx, 5);
            // Every rank reserves 30 windows of width 1..=4 across 5
            // cursors, in two batches.
            let mut seed = 0x9e3779b97f4a7c15u64 ^ (ctx.rank() as u64);
            let mut next = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            };
            let ops: Vec<(usize, i64)> = (0..30)
                .map(|_| ((next() % 5) as usize, (next() % 4) as i64 + 1))
                .collect();
            let old_a = a.fetch_add_batch(ctx, &ops[..13]);
            let old_b = a.fetch_add_batch(ctx, &ops[13..]);
            let windows: Vec<(usize, i64, i64)> = ops
                .iter()
                .zip(old_a.iter().chain(&old_b))
                .map(|(&(i, d), &old)| (i, old, old + d))
                .collect();
            ctx.barrier();
            (windows, a.get(ctx, 0..5))
        });
        // Per cursor: all reserved windows are disjoint and exactly tile
        // [0, final), under whatever interleaving the run produced.
        let final_vals = res.results[0].1.clone();
        for (cursor, &final_val) in final_vals.iter().enumerate() {
            let mut windows: Vec<(i64, i64)> = res
                .results
                .iter()
                .flat_map(|(w, _)| w.iter().filter(|t| t.0 == cursor).map(|t| (t.1, t.2)))
                .collect();
            windows.sort_unstable();
            let mut at = 0i64;
            for (lo, hi) in windows {
                assert_eq!(lo, at, "cursor {cursor}: window gap or overlap");
                at = hi;
            }
            assert_eq!(at, final_val, "cursor {cursor}: final value");
        }
    }

    #[test]
    fn empty_batches_are_free() {
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let a = GlobalArray::<i64>::create(ctx, 10);
            let before = ctx.stats.snapshot();
            assert!(a.fetch_add_batch(ctx, &[]).is_empty());
            a.put_batch(ctx, &[]);
            a.acc_batch(ctx, &[]);
            assert!(a.get_batch(ctx, &[]).is_empty());
            assert_eq!(ctx.stats.snapshot(), before);
        });
    }

    #[test]
    fn empty_range_get_is_free_and_empty() {
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 10);
            assert!(a.get(ctx, 3..3).is_empty());
        });
    }

    #[test]
    fn len_smaller_than_nprocs() {
        let rt = Runtime::for_testing();
        rt.run(8, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 3);
            if ctx.rank() == 7 {
                a.put(ctx, 0, &[9, 8, 7]);
            }
            ctx.barrier();
            assert_eq!(a.get(ctx, 0..3), vec![9, 8, 7]);
        });
    }
}
