//! One-dimensional block-distributed global arrays.

use parking_lot::RwLock;
use spmd::Ctx;
use std::ops::Range;
use std::sync::Arc;

/// Physically distributed storage: one block per rank, individually locked
/// so one-sided accesses to different blocks never contend.
struct Storage<T> {
    blocks: Vec<RwLock<Vec<T>>>,
    /// `starts[r]` is the global index of the first element of rank `r`'s
    /// block; `starts[nprocs]` == `len`.
    starts: Vec<usize>,
    len: usize,
}

/// A handle to a block-distributed 1-D array of `T`.
///
/// Created collectively by [`GlobalArray::create`]; every rank holds a
/// clone of the same handle. All data-access methods take the caller's
/// [`Ctx`] so the traffic is charged to the right virtual clock.
pub struct GlobalArray<T> {
    storage: Arc<Storage<T>>,
}

impl<T> Clone for GlobalArray<T> {
    fn clone(&self) -> Self {
        GlobalArray {
            storage: self.storage.clone(),
        }
    }
}

/// Standard block distribution: the first `len % p` ranks get one extra
/// element.
pub fn block_starts(len: usize, p: usize) -> Vec<usize> {
    let base = len / p;
    let extra = len % p;
    let mut starts = Vec::with_capacity(p + 1);
    let mut at = 0;
    for r in 0..p {
        starts.push(at);
        at += base + usize::from(r < extra);
    }
    starts.push(at);
    debug_assert_eq!(at, len);
    starts
}

impl<T: Copy + Default + Send + Sync + 'static> GlobalArray<T> {
    /// Collective creation of a zero-initialized array of `len` elements
    /// block-distributed over all ranks. Every rank must call this.
    pub fn create(ctx: &Ctx, len: usize) -> Self {
        let p = ctx.nprocs();
        let handle = if ctx.rank() == 0 {
            let starts = block_starts(len, p);
            let blocks = (0..p)
                .map(|r| RwLock::new(vec![T::default(); starts[r + 1] - starts[r]]))
                .collect();
            Some(GlobalArray {
                storage: Arc::new(Storage {
                    blocks,
                    starts,
                    len,
                }),
            })
        } else {
            None
        };
        ctx.broadcast(0, handle, 16)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.storage.len
    }

    pub fn is_empty(&self) -> bool {
        self.storage.len == 0
    }

    /// The global index range owned by `rank` (the GA "distribution"
    /// query — locality information the paper's §3.1 highlights).
    pub fn distribution(&self, rank: usize) -> Range<usize> {
        self.storage.starts[rank]..self.storage.starts[rank + 1]
    }

    /// Which rank owns global index `i`.
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.storage.len, "index {i} out of bounds");
        // starts is sorted; binary search for the containing block.
        match self.storage.starts.binary_search(&i) {
            Ok(r) if r < self.storage.blocks.len() => r,
            Ok(r) => r - 1,
            Err(ins) => ins - 1,
        }
    }

    /// For each block overlapping `range`, call `f(rank, global_sub_range,
    /// local_offset)`.
    fn for_blocks(&self, range: Range<usize>, mut f: impl FnMut(usize, Range<usize>, usize)) {
        assert!(range.end <= self.storage.len, "range out of bounds");
        if range.start >= range.end {
            return;
        }
        let mut at = range.start;
        while at < range.end {
            let r = self.owner(at);
            let block_end = self.storage.starts[r + 1];
            let seg_end = range.end.min(block_end);
            let local = at - self.storage.starts[r];
            f(r, at..seg_end, local);
            at = seg_end;
        }
    }

    /// One-sided get of `range` into a fresh vector.
    pub fn get(&self, ctx: &Ctx, range: Range<usize>) -> Vec<T> {
        let mut out = Vec::with_capacity(range.len());
        self.for_blocks(range, |r, seg, local| {
            let bytes = (seg.len() * std::mem::size_of::<T>()) as u64;
            ctx.charge_one_sided(bytes, r);
            let block = self.storage.blocks[r].read();
            out.extend_from_slice(&block[local..local + seg.len()]);
        });
        out
    }

    /// One-sided get of a single element.
    pub fn get_one(&self, ctx: &Ctx, i: usize) -> T {
        self.get(ctx, i..i + 1)[0]
    }

    /// One-sided put of `data` starting at global index `start`.
    pub fn put(&self, ctx: &Ctx, start: usize, data: &[T]) {
        self.for_blocks(start..start + data.len(), |r, seg, local| {
            let bytes = (seg.len() * std::mem::size_of::<T>()) as u64;
            ctx.charge_one_sided(bytes, r);
            let mut block = self.storage.blocks[r].write();
            let src = &data[seg.start - start..seg.end - start];
            block[local..local + seg.len()].copy_from_slice(src);
        });
    }

    /// One-sided put of many `(start, data)` pairs, **coalescing adjacent
    /// destinations**: the puts are ordered by start index and maximal
    /// runs where one put ends exactly where the next begins are charged
    /// as a single message per overlapped block (one round trip carrying
    /// the run's whole payload), instead of one message per put. The
    /// stored result is identical to issuing every put individually.
    ///
    /// This is the transport for scatter passes that emit many small
    /// writes to mostly-consecutive slots (FAST-INV posting placement).
    pub fn put_batch(&self, ctx: &Ctx, puts: &[(usize, &[T])]) {
        self.coalesced_charge_then(ctx, puts, |ga, start, data| {
            ga.write_unmetered(start, data);
        });
    }

    /// Charge each maximal adjacent run of `ops` as one message per
    /// overlapped block, then apply `apply` to every op (unmetered).
    fn coalesced_charge_then(
        &self,
        ctx: &Ctx,
        ops: &[(usize, &[T])],
        apply: impl Fn(&Self, usize, &[T]),
    ) {
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.sort_by_key(|&i| ops[i].0);
        let mut i = 0;
        while i < order.len() {
            let start = ops[order[i]].0;
            let mut end = start + ops[order[i]].1.len();
            let mut j = i + 1;
            while j < order.len() && ops[order[j]].0 == end {
                end += ops[order[j]].1.len();
                j += 1;
            }
            // One message per block the coalesced run overlaps.
            self.for_blocks(start..end, |r, seg, _local| {
                let bytes = (seg.len() * std::mem::size_of::<T>()) as u64;
                ctx.charge_one_sided(bytes, r);
            });
            for &k in &order[i..j] {
                apply(self, ops[k].0, ops[k].1);
            }
            i = j;
        }
    }

    /// Store `data` at `start` without charging (transport already paid).
    fn write_unmetered(&self, start: usize, data: &[T]) {
        self.for_blocks(start..start + data.len(), |r, seg, local| {
            let mut block = self.storage.blocks[r].write();
            let src = &data[seg.start - start..seg.end - start];
            block[local..local + seg.len()].copy_from_slice(src);
        });
    }

    /// Run `f` over this rank's own block (no copy, charged as local
    /// access of the block's size).
    pub fn with_local_mut<R>(&self, ctx: &Ctx, f: impl FnOnce(&mut [T]) -> R) -> R {
        let r = ctx.rank();
        let bytes = ((self.storage.starts[r + 1] - self.storage.starts[r])
            * std::mem::size_of::<T>()) as u64;
        ctx.charge_one_sided(bytes, r);
        let mut block = self.storage.blocks[r].write();
        f(&mut block)
    }

    /// Read-only access to this rank's own block.
    pub fn with_local<R>(&self, ctx: &Ctx, f: impl FnOnce(&[T]) -> R) -> R {
        let r = ctx.rank();
        let bytes = ((self.storage.starts[r + 1] - self.storage.starts[r])
            * std::mem::size_of::<T>()) as u64;
        ctx.charge_one_sided(bytes, r);
        let block = self.storage.blocks[r].read();
        f(&block)
    }

    /// Collective: gather the full array contents on every rank (an
    /// Allgather of the local blocks).
    pub fn to_vec_collective(&self, ctx: &Ctx) -> Vec<T> {
        let local: Vec<T> = {
            let r = ctx.rank();
            let block = self.storage.blocks[r].read();
            block.clone()
        };
        let bytes = (local.len() * std::mem::size_of::<T>()) as u64;
        let parts = ctx.allgather(local, bytes);
        parts.concat()
    }
}

impl<T> GlobalArray<T>
where
    T: Copy + Default + Send + Sync + 'static + std::ops::AddAssign,
{
    /// One-sided accumulate: `a[start..] += data`, element-wise. Each
    /// block update is atomic with respect to other accumulates (the GA
    /// `NGA_Acc` contract).
    pub fn acc(&self, ctx: &Ctx, start: usize, data: &[T]) {
        self.for_blocks(start..start + data.len(), |r, seg, local| {
            let bytes = (seg.len() * std::mem::size_of::<T>()) as u64;
            ctx.charge_one_sided(bytes, r);
            let mut block = self.storage.blocks[r].write();
            let src = &data[seg.start - start..seg.end - start];
            for (dst, s) in block[local..local + seg.len()].iter_mut().zip(src) {
                *dst += *s;
            }
        });
    }

    /// Batched [`acc`](GlobalArray::acc) with the same adjacent-run
    /// coalescing and charging discipline as
    /// [`put_batch`](GlobalArray::put_batch).
    pub fn acc_batch(&self, ctx: &Ctx, accs: &[(usize, &[T])]) {
        self.coalesced_charge_then(ctx, accs, |ga, start, data| {
            ga.for_blocks(start..start + data.len(), |r, seg, local| {
                let mut block = ga.storage.blocks[r].write();
                let src = &data[seg.start - start..seg.end - start];
                for (dst, s) in block[local..local + seg.len()].iter_mut().zip(src) {
                    *dst += *s;
                }
            });
        });
    }
}

impl GlobalArray<i64> {
    /// Atomic read-and-increment of element `i` by `delta`, returning the
    /// previous value — GA's `NGA_Read_inc`, the primitive behind the
    /// paper's dynamic load balancing.
    pub fn read_inc(&self, ctx: &Ctx, i: usize, delta: i64) -> i64 {
        let r = self.owner(i);
        ctx.charge_remote_atomic(r);
        let mut block = self.storage.blocks[r].write();
        let local = i - self.storage.starts[r];
        let old = block[local];
        block[local] += delta;
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::Runtime;

    #[test]
    fn block_starts_cover_everything() {
        for (len, p) in [(10usize, 3usize), (7, 7), (5, 8), (0, 4), (100, 1)] {
            let s = block_starts(len, p);
            assert_eq!(s.len(), p + 1);
            assert_eq!(s[0], 0);
            assert_eq!(s[p], len);
            for w in s.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn put_get_roundtrip_across_blocks() {
        let rt = Runtime::for_testing();
        rt.run(4, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 103);
            if ctx.rank() == 0 {
                let data: Vec<u32> = (0..103).collect();
                a.put(ctx, 0, &data);
            }
            ctx.barrier();
            let got = a.get(ctx, 0..103);
            assert_eq!(got, (0..103).collect::<Vec<u32>>());
            // Sub-range crossing block boundaries.
            let mid = a.get(ctx, 20..80);
            assert_eq!(mid, (20..80).collect::<Vec<u32>>());
        });
    }

    #[test]
    fn owner_matches_distribution() {
        let rt = Runtime::for_testing();
        rt.run(5, |ctx| {
            let a = GlobalArray::<u8>::create(ctx, 37);
            for r in 0..5 {
                for i in a.distribution(r) {
                    assert_eq!(a.owner(i), r, "index {i}");
                }
            }
        });
    }

    #[test]
    fn accumulate_sums_concurrent_contributions() {
        let rt = Runtime::for_testing();
        let res = rt.run(8, |ctx| {
            let a = GlobalArray::<u64>::create(ctx, 50);
            // Every rank accumulates 1 into every element.
            a.acc(ctx, 0, &vec![1u64; 50]);
            ctx.barrier();
            a.get(ctx, 0..50)
        });
        for v in res.results {
            assert_eq!(v, vec![8u64; 50]);
        }
    }

    #[test]
    fn read_inc_hands_out_unique_tickets() {
        let rt = Runtime::for_testing();
        let res = rt.run(6, |ctx| {
            let a = GlobalArray::<i64>::create(ctx, 1);
            let mut mine = Vec::new();
            for _ in 0..100 {
                mine.push(a.read_inc(ctx, 0, 1));
            }
            ctx.barrier();
            (mine, a.get_one(ctx, 0))
        });
        let mut all: Vec<i64> = res.results.iter().flat_map(|(m, _)| m.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..600).collect::<Vec<i64>>());
        for (_, total) in res.results {
            assert_eq!(total, 600);
        }
    }

    #[test]
    fn local_access_sees_own_block_only() {
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 40);
            let my = a.distribution(ctx.rank());
            a.with_local_mut(ctx, |block| {
                assert_eq!(block.len(), my.len());
                for (off, v) in block.iter_mut().enumerate() {
                    *v = (my.start + off) as u32;
                }
            });
            ctx.barrier();
            a.get(ctx, 0..40)
        });
        for v in res.results {
            assert_eq!(v, (0..40u32).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn to_vec_collective_agrees_with_get() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let a = GlobalArray::<u16>::create(ctx, 17);
            if ctx.rank() == 1 {
                a.put(ctx, 0, &(0..17).map(|i| i * 3).collect::<Vec<u16>>());
            }
            ctx.barrier();
            let v = a.to_vec_collective(ctx);
            assert_eq!(v, a.get(ctx, 0..17));
        });
    }

    #[test]
    fn remote_traffic_is_charged_local_is_cheaper() {
        let rt = Runtime::new(Arc::new(perfmodel::CostModel::pnnl_2007()));
        let res = rt.run(2, |ctx| {
            let a = GlobalArray::<u64>::create(ctx, 1000);
            ctx.barrier();
            let t0 = ctx.now();
            // Rank 0 reads its own block; rank 1 reads rank 0's block.
            let _ = a.get(ctx, 0..500);
            ctx.now() - t0
        });
        assert!(
            res.results[1] > res.results[0],
            "remote get must cost more: {:?}",
            res.results
        );
    }

    #[test]
    fn put_batch_matches_individual_puts() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 40);
            let b = GlobalArray::<u32>::create(ctx, 40);
            if ctx.rank() == 0 {
                // Out-of-order, partly adjacent, partly gapped writes.
                let payloads: Vec<(usize, Vec<u32>)> = vec![
                    (10, vec![1, 2, 3]),
                    (0, vec![7]),
                    (13, vec![4, 5]),
                    (30, vec![9, 9]),
                    (1, vec![8, 8]),
                ];
                for (s, d) in &payloads {
                    a.put(ctx, *s, d);
                }
                let refs: Vec<(usize, &[u32])> =
                    payloads.iter().map(|(s, d)| (*s, d.as_slice())).collect();
                b.put_batch(ctx, &refs);
            }
            ctx.barrier();
            assert_eq!(a.get(ctx, 0..40), b.get(ctx, 0..40));
        });
    }

    #[test]
    fn put_batch_charges_one_message_per_run() {
        let rt = Runtime::for_testing();
        rt.run(1, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 100);
            let payloads: Vec<(usize, Vec<u32>)> = (0..10).map(|i| (i * 2, vec![1, 1])).collect();
            let refs: Vec<(usize, &[u32])> =
                payloads.iter().map(|(s, d)| (*s, d.as_slice())).collect();

            // Scalar puts: one message each.
            let before = ctx.stats.snapshot();
            for (s, d) in &refs {
                a.put(ctx, *s, d);
            }
            let scalar_msgs = ctx.stats.snapshot().total_msgs() - before.total_msgs();
            assert_eq!(scalar_msgs, 10);

            // The same writes batched: all 10 are one adjacent run.
            let before = ctx.stats.snapshot();
            a.put_batch(ctx, &refs);
            let snap = ctx.stats.snapshot();
            let batch_msgs = snap.total_msgs() - before.total_msgs();
            assert_eq!(batch_msgs, 1);
            // Payload bytes are unchanged by coalescing.
            assert_eq!(
                snap.local_bytes - before.local_bytes,
                (20 * std::mem::size_of::<u32>()) as u64
            );
        });
    }

    #[test]
    fn put_batch_gaps_break_runs() {
        let rt = Runtime::for_testing();
        rt.run(1, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 100);
            // Two adjacent pairs separated by a gap: 2 runs, 2 messages.
            let payloads: Vec<(usize, Vec<u32>)> = vec![
                (0, vec![1, 2]),
                (2, vec![3]),
                (50, vec![4]),
                (51, vec![5, 6]),
            ];
            let refs: Vec<(usize, &[u32])> =
                payloads.iter().map(|(s, d)| (*s, d.as_slice())).collect();
            let before = ctx.stats.snapshot();
            a.put_batch(ctx, &refs);
            let msgs = ctx.stats.snapshot().total_msgs() - before.total_msgs();
            assert_eq!(msgs, 2);
            assert_eq!(a.get(ctx, 0..3), vec![1, 2, 3]);
            assert_eq!(a.get(ctx, 50..53), vec![4, 5, 6]);
        });
    }

    #[test]
    fn acc_batch_matches_individual_accs() {
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            let a = GlobalArray::<u64>::create(ctx, 20);
            // Every rank accumulates adjacent slices covering 0..20.
            let payloads: Vec<(usize, Vec<u64>)> = (0..5).map(|i| (i * 4, vec![1u64; 4])).collect();
            let refs: Vec<(usize, &[u64])> =
                payloads.iter().map(|(s, d)| (*s, d.as_slice())).collect();
            let before = ctx.stats.snapshot();
            a.acc_batch(ctx, &refs);
            let msgs = ctx.stats.snapshot().total_msgs() - before.total_msgs();
            ctx.barrier();
            (a.get(ctx, 0..20), msgs)
        });
        for (v, msgs) in res.results {
            assert_eq!(v, vec![4u64; 20]);
            // 0..20 spans all 4 blocks: one run, one message per block.
            assert_eq!(msgs, 4);
        }
    }

    #[test]
    fn empty_range_get_is_free_and_empty() {
        let rt = Runtime::for_testing();
        rt.run(2, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 10);
            assert!(a.get(ctx, 3..3).is_empty());
        });
    }

    #[test]
    fn len_smaller_than_nprocs() {
        let rt = Runtime::for_testing();
        rt.run(8, |ctx| {
            let a = GlobalArray::<u32>::create(ctx, 3);
            if ctx.rank() == 7 {
                a.put(ctx, 0, &[9, 8, 7]);
            }
            ctx.barrier();
            assert_eq!(a.get(ctx, 0..3), vec![9, 8, 7]);
        });
    }
}
