//! Concurrency stress for the Global Arrays substrate: many ranks
//! hammering the same arrays, hashmap shards, and task queues.

use ga::{DistHashMap, GlobalArray, GlobalArray2D, TaskQueue};
use spmd::Runtime;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn concurrent_accumulates_sum_exactly() {
    let rt = Runtime::for_testing();
    let res = rt.run(8, |ctx| {
        let a = GlobalArray::<u64>::create(ctx, 257);
        let mut seed = 11 + ctx.rank() as u64;
        // Each rank performs 200 random-range accumulates of +1.
        let mut expected = vec![0u64; 257];
        for _ in 0..200 {
            let lo = (xorshift(&mut seed) % 200) as usize;
            let len = 1 + (xorshift(&mut seed) % 57) as usize;
            let ones = vec![1u64; len];
            a.acc(ctx, lo, &ones);
            for e in expected.iter_mut().skip(lo).take(len) {
                *e += 1;
            }
        }
        // Global expectation: sum of everyone's local expectations.
        let expected_total = ctx.allreduce_u64(expected, spmd::ReduceOp::Sum);
        ctx.barrier();
        (a.get(ctx, 0..257), expected_total)
    });
    for (got, expected) in res.results {
        assert_eq!(got, expected);
    }
}

#[test]
fn interleaved_read_inc_and_puts_stay_consistent() {
    let rt = Runtime::for_testing();
    let res = rt.run(6, |ctx| {
        let cursors = GlobalArray::<i64>::create(ctx, 32);
        let slots = GlobalArray::<u64>::create(ctx, 32 * 6 * 20);
        // Every rank reserves 20 slots in each of the 32 regions and
        // writes its rank there; regions must end up exactly filled.
        for region in 0..32usize {
            for _ in 0..20 {
                let off = cursors.read_inc(ctx, region, 1);
                slots.put(ctx, region * 120 + off as usize, &[ctx.rank() as u64 + 1]);
            }
        }
        ctx.barrier();
        slots.get(ctx, 0..32 * 120)
    });
    for v in res.results {
        // Every slot written exactly once (no zeros anywhere).
        assert!(v.iter().all(|&x| (1..=6).contains(&x)));
        // Each region holds exactly 20 entries from each rank.
        for region in 0..32 {
            let mut counts = [0usize; 6];
            for &x in &v[region * 120..(region + 1) * 120] {
                counts[(x - 1) as usize] += 1;
            }
            assert!(
                counts.iter().all(|&c| c == 20),
                "region {region}: {counts:?}"
            );
        }
    }
}

#[test]
fn hashmap_sustains_heavy_shared_vocabulary() {
    let rt = Runtime::for_testing();
    let res = rt.run(8, |ctx| {
        let m = DistHashMap::create(ctx);
        let mut ids = Vec::new();
        // All ranks insert the same 2000 terms in different orders.
        let mut seed = 3 + ctx.rank() as u64;
        let mut order: Vec<usize> = (0..2000).collect();
        for i in (1..order.len()).rev() {
            let j = (xorshift(&mut seed) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        for t in order {
            ids.push((t, m.insert_or_get(ctx, &format!("term{t}"))));
        }
        ctx.barrier();
        assert_eq!(m.len(), 2000);
        ids.sort_unstable();
        ids
    });
    for r in 1..res.results.len() {
        assert_eq!(res.results[r], res.results[0], "rank {r} saw different ids");
    }
}

#[test]
fn task_queue_exactly_once_under_uneven_loads() {
    let rt = Runtime::for_testing();
    for trial in 0..5u64 {
        let res = rt.run(7, move |ctx| {
            // Wildly uneven ownership, varying by trial.
            let mine = ((ctx.rank() as u64 * 13 + trial * 7) % 40) as usize;
            let q = TaskQueue::create(ctx, mine);
            let mut got = Vec::new();
            while let Some(t) = q.pop(ctx) {
                got.push(q.global_index(t));
            }
            ctx.barrier();
            (q.total(), got)
        });
        let total = res.results[0].0;
        let mut all: Vec<usize> = res
            .results
            .iter()
            .flat_map(|(_, g)| g.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), total, "trial {trial}");
        for (i, &g) in all.iter().enumerate() {
            assert_eq!(i, g, "trial {trial}: task {g} duplicated or missing");
        }
    }
}

#[test]
fn matrix_rows_survive_concurrent_block_writes() {
    let rt = Runtime::for_testing();
    let res = rt.run(5, |ctx| {
        let m = GlobalArray2D::<u64>::create(ctx, 100, 7);
        // Ranks write disjoint row stripes concurrently (row = owner*20 + i).
        let base = ctx.rank() * 20;
        let mut rows = Vec::new();
        for i in 0..20 {
            let row: Vec<u64> = (0..7).map(|c| (base + i) as u64 * 10 + c).collect();
            rows.extend_from_slice(&row);
        }
        m.put_rows(ctx, base, &rows);
        ctx.barrier();
        m.to_vec_collective(ctx)
    });
    for v in res.results {
        for row in 0..100 {
            for c in 0..7 {
                assert_eq!(v[row * 7 + c], row as u64 * 10 + c as u64);
            }
        }
    }
}
