//! Property tests for batched cursor reservation: `fetch_add_batch`
//! must be indistinguishable from the scalar `read_inc` schedule it
//! replaces — identical slots when applied sequentially, and disjoint
//! exactly-tiling reservation windows under concurrent interleaving —
//! at any process count and therefore any block distribution.

use ga::GlobalArray;
use proptest::prelude::*;
use spmd::Runtime;

proptest! {
    /// Sequential equivalence: one rank issuing a batch gets exactly
    /// the slots the scalar read_inc sequence would have produced, and
    /// leaves the array in the identical final state. P varies so the
    /// batch is split across every possible block distribution.
    #[test]
    fn batched_matches_scalar_read_inc_sequence(
        len in 1usize..48,
        p in 1usize..6,
        raw in prop::collection::vec((0usize..4096, 1i64..12), 0..80),
    ) {
        let ops: Vec<(usize, i64)> = raw.iter().map(|&(i, d)| (i % len, d)).collect();
        let rt = Runtime::for_testing();
        let res = rt.run(p, |ctx| {
            let batch = GlobalArray::<i64>::create(ctx, len);
            let scalar = GlobalArray::<i64>::create(ctx, len);
            let out = if ctx.rank() == 0 {
                let got = batch.fetch_add_batch(ctx, &ops);
                let want: Vec<i64> =
                    ops.iter().map(|&(i, d)| scalar.read_inc(ctx, i, d)).collect();
                Some((got, want))
            } else {
                None
            };
            ctx.barrier();
            (out, batch.get(ctx, 0..len), scalar.get(ctx, 0..len))
        });
        for (out, final_batch, final_scalar) in res.results {
            prop_assert_eq!(final_batch, final_scalar);
            if let Some((got, want)) = out {
                prop_assert_eq!(got, want);
            }
        }
    }

    /// Concurrent interleaving: every rank issues its own batch against
    /// shared cursors. Whatever order the per-destination sub-batches
    /// land in, each op must be granted a window `[slot, slot+delta)`
    /// such that, per cursor, the windows of all ops from all ranks are
    /// pairwise disjoint and tile `[0, total_delta)` exactly — the same
    /// invariant the scalar read_inc schedule guarantees.
    #[test]
    fn concurrent_batches_tile_reservation_windows(
        len in 1usize..24,
        p in 1usize..6,
        raw in prop::collection::vec((0usize..4096, 1i64..9), 0..40),
    ) {
        let ops: Vec<(usize, i64)> = raw.iter().map(|&(i, d)| (i % len, d)).collect();
        let rt = Runtime::for_testing();
        let res = rt.run(p, |ctx| {
            let cursors = GlobalArray::<i64>::create(ctx, len);
            // Each rank rotates the shared op list so batches collide on
            // the same cursors in different orders.
            let mut mine = ops.clone();
            let by = ctx.rank().min(mine.len());
            mine.rotate_left(by);
            let slots = cursors.fetch_add_batch(ctx, &mine);
            ctx.barrier();
            (mine, slots, cursors.get(ctx, 0..len))
        });
        // Collect every granted window per cursor across all ranks.
        let mut windows: Vec<Vec<(i64, i64)>> = vec![Vec::new(); len];
        let mut finals = None;
        for (mine, slots, final_cursors) in res.results {
            prop_assert_eq!(mine.len(), slots.len());
            for (&(idx, delta), &slot) in mine.iter().zip(&slots) {
                windows[idx].push((slot, slot + delta));
            }
            if let Some(prev) = &finals {
                prop_assert_eq!(prev, &final_cursors);
            } else {
                finals = Some(final_cursors);
            }
        }
        let finals = finals.unwrap();
        for (idx, mut ws) in windows.into_iter().enumerate() {
            ws.sort_unstable();
            let mut expect_start = 0i64;
            for (lo, hi) in ws {
                prop_assert_eq!(lo, expect_start, "gap or overlap at cursor {}", idx);
                expect_start = hi;
            }
            prop_assert_eq!(expect_start, finals[idx], "cursor {} final value", idx);
        }
    }
}
