//! Virtual-time attribution to the paper's pipeline components.
//!
//! Figures 6b and 7b of the paper report the *percentage of time spent in
//! each component* (scan, index, topic, AM, DocVec, ClusProj); Figure 8
//! reports per-component speedups. The engine brackets each stage with
//! [`Ctx::component`](crate::Ctx::component), which measures the virtual
//! clock delta and accrues it here. Three parallel accumulators feed the
//! run report:
//!
//! * **virtual seconds** — modeled compute time on the virtual clock;
//! * **wall seconds** — host wall clock measured around each stage
//!   bracket (observational only: never folded into engine output, so
//!   results stay deterministic);
//! * **wait seconds** — virtual time spent blocked in collectives,
//!   attributed to the stage active when the collective ran (the
//!   max−min rendezvous gap the paper's Figure 9 load analysis studies).

use std::cell::RefCell;
use std::ops::{Index, IndexMut};

/// The pipeline components exactly as the paper's Figures 6b/7b label them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Scan & Map: record framing, tokenization, forward indexing,
    /// vocabulary construction.
    Scan,
    /// Parallel inverted file indexing (FAST-INV + dynamic load balancing)
    /// and global term statistics.
    Index,
    /// Topicality (Bookstein) scoring and global top-N selection.
    Topic,
    /// Association matrix construction and merge.
    Assoc,
    /// Knowledge signature (document vector) generation.
    DocVec,
    /// Clustering (k-means) and PCA projection.
    ClusProj,
    /// Anything not bracketed (setup, output collection).
    Other,
}

impl Component {
    /// Number of components — the length of every [`PerStage`] array.
    pub const COUNT: usize = 7;

    /// All components in the paper's presentation order.
    pub const ALL: [Component; Component::COUNT] = [
        Component::Scan,
        Component::Index,
        Component::Topic,
        Component::Assoc,
        Component::DocVec,
        Component::ClusProj,
        Component::Other,
    ];

    /// Label as printed in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Component::Scan => "scan",
            Component::Index => "index",
            Component::Topic => "topic",
            Component::Assoc => "AM",
            Component::DocVec => "DocVec",
            Component::ClusProj => "ClusProj",
            Component::Other => "other",
        }
    }

    /// Dense index of this component in [`Component::ALL`] order — the
    /// array slot used by [`PerStage`].
    pub fn index(&self) -> usize {
        self.idx()
    }

    fn idx(&self) -> usize {
        match self {
            Component::Scan => 0,
            Component::Index => 1,
            Component::Topic => 2,
            Component::Assoc => 3,
            Component::DocVec => 4,
            Component::ClusProj => 5,
            Component::Other => 6,
        }
    }
}

/// One value of type `T` per pipeline [`Component`], indexable by the
/// component itself. Shared by the timers, the per-stage comm counters,
/// and the wait accumulators, so "one slot per stage" is written once
/// instead of as scattered `[_; 7]` literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PerStage<T>([T; Component::COUNT]);

impl<T> PerStage<T> {
    /// Wrap an explicit array in [`Component::ALL`] order.
    pub fn new(values: [T; Component::COUNT]) -> Self {
        PerStage(values)
    }

    /// The underlying array, in [`Component::ALL`] order.
    pub fn values(&self) -> &[T; Component::COUNT] {
        &self.0
    }

    pub fn values_mut(&mut self) -> &mut [T; Component::COUNT] {
        &mut self.0
    }

    /// Consume into the underlying array.
    pub fn into_values(self) -> [T; Component::COUNT] {
        self.0
    }

    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.0.iter()
    }

    /// `(component, value)` pairs in presentation order.
    pub fn labeled(&self) -> impl Iterator<Item = (Component, &T)> {
        Component::ALL.iter().copied().zip(self.0.iter())
    }
}

impl<T: Default + Copy> Default for PerStage<T> {
    fn default() -> Self {
        PerStage([T::default(); Component::COUNT])
    }
}

impl<T> Index<Component> for PerStage<T> {
    type Output = T;
    fn index(&self, c: Component) -> &T {
        &self.0[c.idx()]
    }
}

impl<T> IndexMut<Component> for PerStage<T> {
    fn index_mut(&mut self, c: Component) -> &mut T {
        &mut self.0[c.idx()]
    }
}

impl<T: Copy + std::ops::AddAssign> PerStage<T> {
    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &PerStage<T>) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += *b;
        }
    }
}

/// Per-rank component timer accumulator.
#[derive(Debug, Default)]
pub struct Timers {
    /// Virtual compute seconds per stage.
    acc: RefCell<PerStage<f64>>,
    /// Measured host wall seconds per stage (observational only).
    wall: RefCell<PerStage<f64>>,
    /// Virtual seconds blocked in collectives, per attributed stage.
    wait: RefCell<PerStage<f64>>,
}

/// A plain snapshot of the per-component times for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimerSnapshot {
    /// Virtual compute seconds per stage.
    pub seconds: PerStage<f64>,
    /// Measured host wall seconds per stage.
    pub wall: PerStage<f64>,
    /// Virtual collective-wait seconds per attributed stage.
    pub wait: PerStage<f64>,
}

impl Timers {
    pub fn new() -> Self {
        Self::default()
    }

    /// Accrue `seconds` of virtual time to `component`.
    pub fn accrue(&self, component: Component, seconds: f64) {
        self.acc.borrow_mut()[component] += seconds;
    }

    /// Accrue measured host wall `seconds` to `component`.
    pub fn accrue_wall(&self, component: Component, seconds: f64) {
        self.wall.borrow_mut()[component] += seconds;
    }

    /// Accrue `seconds` of virtual collective wait to `component`.
    pub fn accrue_wait(&self, component: Component, seconds: f64) {
        self.wait.borrow_mut()[component] += seconds;
    }

    pub fn get(&self, component: Component) -> f64 {
        self.acc.borrow()[component]
    }

    pub fn get_wait(&self, component: Component) -> f64 {
        self.wait.borrow()[component]
    }

    pub fn snapshot(&self) -> TimerSnapshot {
        TimerSnapshot {
            seconds: *self.acc.borrow(),
            wall: *self.wall.borrow(),
            wait: *self.wait.borrow(),
        }
    }
}

impl TimerSnapshot {
    pub fn get(&self, component: Component) -> f64 {
        self.seconds[component]
    }

    pub fn get_wall(&self, component: Component) -> f64 {
        self.wall[component]
    }

    pub fn get_wait(&self, component: Component) -> f64 {
        self.wait[component]
    }

    /// Element-wise maximum — the cross-rank critical path per component.
    pub fn max(&self, other: &TimerSnapshot) -> TimerSnapshot {
        let mut out = *self;
        for i in 0..Component::COUNT {
            out.seconds.values_mut()[i] = out.seconds.values()[i].max(other.seconds.values()[i]);
            out.wall.values_mut()[i] = out.wall.values()[i].max(other.wall.values()[i]);
            out.wait.values_mut()[i] = out.wait.values()[i].max(other.wait.values()[i]);
        }
        out
    }

    /// Total virtual compute across components.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Percentage share of virtual compute per component (summing to 100
    /// when total > 0).
    pub fn percentages(&self) -> PerStage<f64> {
        let t = self.total();
        let mut out = PerStage::default();
        if t > 0.0 {
            for (o, s) in out.values_mut().iter_mut().zip(self.seconds.iter()) {
                *o = 100.0 * s / t;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accrual_sums() {
        let t = Timers::new();
        t.accrue(Component::Scan, 1.5);
        t.accrue(Component::Scan, 0.5);
        t.accrue(Component::Index, 3.0);
        assert_eq!(t.get(Component::Scan), 2.0);
        assert_eq!(t.get(Component::Index), 3.0);
        assert_eq!(t.get(Component::Topic), 0.0);
    }

    #[test]
    fn wall_and_wait_accrue_independently() {
        let t = Timers::new();
        t.accrue(Component::Scan, 1.0);
        t.accrue_wall(Component::Scan, 0.25);
        t.accrue_wait(Component::Scan, 0.5);
        t.accrue_wait(Component::Scan, 0.25);
        let s = t.snapshot();
        assert_eq!(s.get(Component::Scan), 1.0);
        assert_eq!(s.get_wall(Component::Scan), 0.25);
        assert_eq!(s.get_wait(Component::Scan), 0.75);
        assert_eq!(s.get_wait(Component::Index), 0.0);
        // Wait time never leaks into the compute total.
        assert_eq!(s.total(), 1.0);
    }

    #[test]
    fn percentages_sum_to_100() {
        let t = Timers::new();
        t.accrue(Component::Scan, 2.0);
        t.accrue(Component::DocVec, 6.0);
        let p = t.snapshot().percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((p[Component::Scan] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_max_is_elementwise() {
        let a = TimerSnapshot {
            seconds: PerStage::new([1.0, 5.0, 0.0, 0.0, 2.0, 0.0, 0.0]),
            wall: PerStage::default(),
            wait: PerStage::new([0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        };
        let b = TimerSnapshot {
            seconds: PerStage::new([2.0, 1.0, 0.0, 0.0, 3.0, 0.0, 0.0]),
            wall: PerStage::default(),
            wait: PerStage::new([0.25, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        };
        let m = a.max(&b);
        assert_eq!(m.seconds[Component::Scan], 2.0);
        assert_eq!(m.seconds[Component::Index], 5.0);
        assert_eq!(m.seconds[Component::DocVec], 3.0);
        assert_eq!(m.wait[Component::Scan], 0.5);
        assert_eq!(m.wait[Component::Index], 1.0);
    }

    #[test]
    fn per_stage_indexing_and_labels() {
        let mut p = PerStage::new([0u64; Component::COUNT]);
        p[Component::Index] = 7;
        assert_eq!(p[Component::Index], 7);
        assert_eq!(p.values()[1], 7);
        let labeled: Vec<_> = p.labeled().map(|(c, &v)| (c.label(), v)).collect();
        assert_eq!(labeled[1], ("index", 7));
        let mut q = PerStage::default();
        q.add_assign(&p);
        q.add_assign(&p);
        assert_eq!(q[Component::Index], 14);
        assert_eq!(q.into_values()[1], 14);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = Component::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["scan", "index", "topic", "AM", "DocVec", "ClusProj", "other"]
        );
    }

    #[test]
    fn empty_percentages_are_zero() {
        let t = Timers::new();
        assert_eq!(t.snapshot().percentages(), PerStage::default());
    }
}
