//! Virtual-time attribution to the paper's pipeline components.
//!
//! Figures 6b and 7b of the paper report the *percentage of time spent in
//! each component* (scan, index, topic, AM, DocVec, ClusProj); Figure 8
//! reports per-component speedups. The engine brackets each stage with
//! [`Ctx::component`](crate::Ctx::component), which measures the virtual
//! clock delta and accrues it here.

use std::cell::RefCell;

/// The pipeline components exactly as the paper's Figures 6b/7b label them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Scan & Map: record framing, tokenization, forward indexing,
    /// vocabulary construction.
    Scan,
    /// Parallel inverted file indexing (FAST-INV + dynamic load balancing)
    /// and global term statistics.
    Index,
    /// Topicality (Bookstein) scoring and global top-N selection.
    Topic,
    /// Association matrix construction and merge.
    Assoc,
    /// Knowledge signature (document vector) generation.
    DocVec,
    /// Clustering (k-means) and PCA projection.
    ClusProj,
    /// Anything not bracketed (setup, output collection).
    Other,
}

impl Component {
    /// All components in the paper's presentation order.
    pub const ALL: [Component; 7] = [
        Component::Scan,
        Component::Index,
        Component::Topic,
        Component::Assoc,
        Component::DocVec,
        Component::ClusProj,
        Component::Other,
    ];

    /// Label as printed in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Component::Scan => "scan",
            Component::Index => "index",
            Component::Topic => "topic",
            Component::Assoc => "AM",
            Component::DocVec => "DocVec",
            Component::ClusProj => "ClusProj",
            Component::Other => "other",
        }
    }

    /// Dense index of this component in [`Component::ALL`] order — the
    /// array slot used by [`Timers`] and the per-stage comm counters.
    pub fn index(&self) -> usize {
        self.idx()
    }

    fn idx(&self) -> usize {
        match self {
            Component::Scan => 0,
            Component::Index => 1,
            Component::Topic => 2,
            Component::Assoc => 3,
            Component::DocVec => 4,
            Component::ClusProj => 5,
            Component::Other => 6,
        }
    }
}

/// Per-rank component timer accumulator (virtual seconds).
#[derive(Debug, Default)]
pub struct Timers {
    acc: RefCell<[f64; 7]>,
}

/// A plain snapshot of the per-component times for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimerSnapshot {
    pub seconds: [f64; 7],
}

impl Timers {
    pub fn new() -> Self {
        Self::default()
    }

    /// Accrue `seconds` of virtual time to `component`.
    pub fn accrue(&self, component: Component, seconds: f64) {
        self.acc.borrow_mut()[component.idx()] += seconds;
    }

    pub fn get(&self, component: Component) -> f64 {
        self.acc.borrow()[component.idx()]
    }

    pub fn snapshot(&self) -> TimerSnapshot {
        TimerSnapshot {
            seconds: *self.acc.borrow(),
        }
    }
}

impl TimerSnapshot {
    pub fn get(&self, component: Component) -> f64 {
        self.seconds[component.idx()]
    }

    /// Element-wise maximum — the cross-rank critical path per component.
    pub fn max(&self, other: &TimerSnapshot) -> TimerSnapshot {
        let mut out = *self;
        for i in 0..7 {
            out.seconds[i] = out.seconds[i].max(other.seconds[i]);
        }
        out
    }

    /// Total across components.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Percentage share per component (summing to 100 when total > 0).
    pub fn percentages(&self) -> [f64; 7] {
        let t = self.total();
        let mut out = [0.0; 7];
        if t > 0.0 {
            for (o, s) in out.iter_mut().zip(&self.seconds) {
                *o = 100.0 * s / t;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accrual_sums() {
        let t = Timers::new();
        t.accrue(Component::Scan, 1.5);
        t.accrue(Component::Scan, 0.5);
        t.accrue(Component::Index, 3.0);
        assert_eq!(t.get(Component::Scan), 2.0);
        assert_eq!(t.get(Component::Index), 3.0);
        assert_eq!(t.get(Component::Topic), 0.0);
    }

    #[test]
    fn percentages_sum_to_100() {
        let t = Timers::new();
        t.accrue(Component::Scan, 2.0);
        t.accrue(Component::DocVec, 6.0);
        let p = t.snapshot().percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((p[Component::Scan.idx()] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_max_is_elementwise() {
        let a = TimerSnapshot {
            seconds: [1.0, 5.0, 0.0, 0.0, 2.0, 0.0, 0.0],
        };
        let b = TimerSnapshot {
            seconds: [2.0, 1.0, 0.0, 0.0, 3.0, 0.0, 0.0],
        };
        let m = a.max(&b);
        assert_eq!(m.seconds[0], 2.0);
        assert_eq!(m.seconds[1], 5.0);
        assert_eq!(m.seconds[4], 3.0);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = Component::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["scan", "index", "topic", "AM", "DocVec", "ClusProj", "other"]
        );
    }

    #[test]
    fn empty_percentages_are_zero() {
        let t = Timers::new();
        assert_eq!(t.snapshot().percentages(), [0.0; 7]);
    }
}
