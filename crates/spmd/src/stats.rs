//! Per-rank communication statistics.
//!
//! Purely observational counters used by tests (to assert, e.g., that the
//! dynamic load balancer actually performed remote steals) and by the
//! benchmark harness to report communication volumes alongside timings.

use crate::timer::{Component, PerStage};
use std::cell::{Cell, RefCell};

/// Counters for one rank. Not shared across threads; each [`Ctx`]
/// (crate::Ctx) owns one.
///
/// Besides the global totals, every charged operation (one-sided, local,
/// remote atomic, collective) is attributed to the pipeline stage active
/// at the time — the [`Component`] set by [`Ctx::component`]
/// (crate::Ctx::component) — so the bench harness can report per-stage
/// message and byte counts.
#[derive(Debug)]
pub struct CommStats {
    one_sided_ops: Cell<u64>,
    one_sided_bytes: Cell<u64>,
    local_ops: Cell<u64>,
    local_bytes: Cell<u64>,
    remote_atomics: Cell<u64>,
    collectives: Cell<u64>,
    collective_bytes: Cell<u64>,
    /// Aggregated (destination-packed) RPC messages charged.
    batched_rpcs: Cell<u64>,
    /// Scalar one-sided operations those batched messages replaced.
    batched_scalar_equiv: Cell<u64>,
    /// The active stage.
    stage: Cell<Component>,
    /// Charged operations per stage (every record_* counts one message).
    stage_msgs: RefCell<PerStage<u64>>,
    /// Payload bytes per stage.
    stage_bytes: RefCell<PerStage<u64>>,
    /// Batched RPC messages per stage.
    stage_batched_msgs: RefCell<PerStage<u64>>,
    /// Scalar-equivalent operations folded into batches, per stage.
    stage_scalar_equiv: RefCell<PerStage<u64>>,
}

impl Default for CommStats {
    fn default() -> Self {
        CommStats {
            one_sided_ops: Cell::new(0),
            one_sided_bytes: Cell::new(0),
            local_ops: Cell::new(0),
            local_bytes: Cell::new(0),
            remote_atomics: Cell::new(0),
            collectives: Cell::new(0),
            collective_bytes: Cell::new(0),
            batched_rpcs: Cell::new(0),
            batched_scalar_equiv: Cell::new(0),
            // Unbracketed work lands in Other, matching the timers.
            stage: Cell::new(Component::Other),
            stage_msgs: RefCell::new(PerStage::default()),
            stage_bytes: RefCell::new(PerStage::default()),
            stage_batched_msgs: RefCell::new(PerStage::default()),
            stage_scalar_equiv: RefCell::new(PerStage::default()),
        }
    }
}

/// A plain snapshot of [`CommStats`], safe to send across threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStatsSnapshot {
    pub one_sided_ops: u64,
    pub one_sided_bytes: u64,
    pub local_ops: u64,
    pub local_bytes: u64,
    pub remote_atomics: u64,
    pub collectives: u64,
    pub collective_bytes: u64,
    /// Aggregated (destination-packed) RPC messages charged.
    pub batched_rpcs: u64,
    /// Scalar one-sided operations those batched messages replaced.
    pub batched_scalar_equiv: u64,
    /// Charged operations per stage.
    pub stage_msgs: PerStage<u64>,
    /// Payload bytes per stage.
    pub stage_bytes: PerStage<u64>,
    /// Batched RPC messages per stage.
    pub stage_batched_msgs: PerStage<u64>,
    /// Scalar-equivalent operations folded into batches, per stage.
    pub stage_scalar_equiv: PerStage<u64>,
}

impl CommStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attribute subsequent operations to `stage`; returns the previous
    /// stage so callers can restore it (nesting-safe).
    pub fn set_stage(&self, stage: Component) -> Component {
        self.stage.replace(stage)
    }

    /// The stage currently receiving attribution.
    pub fn stage(&self) -> Component {
        self.stage.get()
    }

    #[inline]
    fn attribute(&self, bytes: u64) {
        let stage = self.stage.get();
        self.stage_msgs.borrow_mut()[stage] += 1;
        self.stage_bytes.borrow_mut()[stage] += bytes;
    }

    /// Count one batched message replacing `scalar_ops` scalar operations.
    #[inline]
    fn attribute_batch(&self, scalar_ops: u64) {
        self.batched_rpcs.set(self.batched_rpcs.get() + 1);
        self.batched_scalar_equiv
            .set(self.batched_scalar_equiv.get() + scalar_ops);
        let stage = self.stage.get();
        self.stage_batched_msgs.borrow_mut()[stage] += 1;
        self.stage_scalar_equiv.borrow_mut()[stage] += scalar_ops;
    }

    pub fn record_one_sided(&self, bytes: u64) {
        self.one_sided_ops.set(self.one_sided_ops.get() + 1);
        self.one_sided_bytes.set(self.one_sided_bytes.get() + bytes);
        self.attribute(bytes);
    }

    pub fn record_local(&self, bytes: u64) {
        self.local_ops.set(self.local_ops.get() + 1);
        self.local_bytes.set(self.local_bytes.get() + bytes);
        self.attribute(bytes);
    }

    /// One aggregated remote message of `bytes` whose payload folds
    /// `scalar_ops` scalar one-sided operations into a single round trip.
    pub fn record_one_sided_batch(&self, bytes: u64, scalar_ops: u64) {
        self.record_one_sided(bytes);
        self.attribute_batch(scalar_ops);
    }

    /// Local-block counterpart of [`record_one_sided_batch`]
    /// (CommStats::record_one_sided_batch): still one charged operation,
    /// still tracked as a batch so batching factors are width-invariant
    /// in the rank that happens to own the block.
    pub fn record_local_batch(&self, bytes: u64, scalar_ops: u64) {
        self.record_local(bytes);
        self.attribute_batch(scalar_ops);
    }

    pub fn record_remote_atomic(&self) {
        self.remote_atomics.set(self.remote_atomics.get() + 1);
        self.attribute(8);
    }

    pub fn record_collective(&self, bytes: u64) {
        self.collectives.set(self.collectives.get() + 1);
        self.collective_bytes
            .set(self.collective_bytes.get() + bytes);
        self.attribute(bytes);
    }

    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            one_sided_ops: self.one_sided_ops.get(),
            one_sided_bytes: self.one_sided_bytes.get(),
            local_ops: self.local_ops.get(),
            local_bytes: self.local_bytes.get(),
            remote_atomics: self.remote_atomics.get(),
            collectives: self.collectives.get(),
            collective_bytes: self.collective_bytes.get(),
            batched_rpcs: self.batched_rpcs.get(),
            batched_scalar_equiv: self.batched_scalar_equiv.get(),
            stage_msgs: *self.stage_msgs.borrow(),
            stage_bytes: *self.stage_bytes.borrow(),
            stage_batched_msgs: *self.stage_batched_msgs.borrow(),
            stage_scalar_equiv: *self.stage_scalar_equiv.borrow(),
        }
    }
}

impl CommStatsSnapshot {
    /// Element-wise sum, for aggregating over ranks.
    pub fn merge(&self, other: &CommStatsSnapshot) -> CommStatsSnapshot {
        let mut stage_msgs = self.stage_msgs;
        let mut stage_bytes = self.stage_bytes;
        let mut stage_batched_msgs = self.stage_batched_msgs;
        let mut stage_scalar_equiv = self.stage_scalar_equiv;
        stage_msgs.add_assign(&other.stage_msgs);
        stage_bytes.add_assign(&other.stage_bytes);
        stage_batched_msgs.add_assign(&other.stage_batched_msgs);
        stage_scalar_equiv.add_assign(&other.stage_scalar_equiv);
        CommStatsSnapshot {
            one_sided_ops: self.one_sided_ops + other.one_sided_ops,
            one_sided_bytes: self.one_sided_bytes + other.one_sided_bytes,
            local_ops: self.local_ops + other.local_ops,
            local_bytes: self.local_bytes + other.local_bytes,
            remote_atomics: self.remote_atomics + other.remote_atomics,
            collectives: self.collectives + other.collectives,
            collective_bytes: self.collective_bytes + other.collective_bytes,
            batched_rpcs: self.batched_rpcs + other.batched_rpcs,
            batched_scalar_equiv: self.batched_scalar_equiv + other.batched_scalar_equiv,
            stage_msgs,
            stage_bytes,
            stage_batched_msgs,
            stage_scalar_equiv,
        }
    }

    /// Messages attributed to `stage`.
    pub fn stage_msgs_for(&self, stage: Component) -> u64 {
        self.stage_msgs[stage]
    }

    /// Payload bytes attributed to `stage`.
    pub fn stage_bytes_for(&self, stage: Component) -> u64 {
        self.stage_bytes[stage]
    }

    /// Batched RPC messages attributed to `stage`.
    pub fn stage_batched_msgs_for(&self, stage: Component) -> u64 {
        self.stage_batched_msgs[stage]
    }

    /// Scalar-equivalent operations folded into `stage`'s batches.
    pub fn stage_scalar_equiv_for(&self, stage: Component) -> u64 {
        self.stage_scalar_equiv[stage]
    }

    /// Total charged operations across all kinds.
    pub fn total_msgs(&self) -> u64 {
        self.one_sided_ops + self.local_ops + self.remote_atomics + self.collectives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = CommStats::new();
        s.record_one_sided(100);
        s.record_one_sided(50);
        s.record_local(8);
        s.record_remote_atomic();
        s.record_collective(4096);
        let snap = s.snapshot();
        assert_eq!(snap.one_sided_ops, 2);
        assert_eq!(snap.one_sided_bytes, 150);
        assert_eq!(snap.local_ops, 1);
        assert_eq!(snap.local_bytes, 8);
        assert_eq!(snap.remote_atomics, 1);
        assert_eq!(snap.collectives, 1);
        assert_eq!(snap.collective_bytes, 4096);
        assert_eq!(snap.total_msgs(), 5);
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let a = CommStatsSnapshot {
            one_sided_ops: 1,
            one_sided_bytes: 2,
            local_ops: 3,
            local_bytes: 4,
            remote_atomics: 5,
            collectives: 6,
            collective_bytes: 7,
            batched_rpcs: 8,
            batched_scalar_equiv: 9,
            stage_msgs: PerStage::new([1, 0, 0, 0, 0, 0, 2]),
            stage_bytes: PerStage::new([10, 0, 0, 0, 0, 0, 20]),
            stage_batched_msgs: PerStage::new([0, 1, 0, 0, 0, 0, 0]),
            stage_scalar_equiv: PerStage::new([0, 5, 0, 0, 0, 0, 0]),
        };
        let b = a;
        let m = a.merge(&b);
        assert_eq!(m.one_sided_ops, 2);
        assert_eq!(m.collective_bytes, 14);
        assert_eq!(m.batched_rpcs, 16);
        assert_eq!(m.batched_scalar_equiv, 18);
        assert_eq!(m.stage_msgs, PerStage::new([2, 0, 0, 0, 0, 0, 4]));
        assert_eq!(m.stage_bytes, PerStage::new([20, 0, 0, 0, 0, 0, 40]));
        assert_eq!(m.stage_batched_msgs, PerStage::new([0, 2, 0, 0, 0, 0, 0]));
        assert_eq!(m.stage_scalar_equiv, PerStage::new([0, 10, 0, 0, 0, 0, 0]));
    }

    #[test]
    fn batched_records_count_one_message_and_fold_scalars() {
        let s = CommStats::new();
        s.set_stage(Component::Index);
        s.record_one_sided_batch(96, 12);
        s.record_local_batch(32, 4);
        let snap = s.snapshot();
        // One charged operation per batch, payload bytes unchanged.
        assert_eq!(snap.one_sided_ops, 1);
        assert_eq!(snap.one_sided_bytes, 96);
        assert_eq!(snap.local_ops, 1);
        assert_eq!(snap.local_bytes, 32);
        assert_eq!(snap.total_msgs(), 2);
        // The fold is visible globally and attributed to the stage.
        assert_eq!(snap.batched_rpcs, 2);
        assert_eq!(snap.batched_scalar_equiv, 16);
        assert_eq!(snap.stage_batched_msgs_for(Component::Index), 2);
        assert_eq!(snap.stage_scalar_equiv_for(Component::Index), 16);
        assert_eq!(snap.stage_batched_msgs_for(Component::Scan), 0);
    }

    #[test]
    fn stage_attribution_defaults_to_other() {
        let s = CommStats::new();
        assert_eq!(s.stage(), Component::Other);
        s.record_one_sided(100);
        let snap = s.snapshot();
        assert_eq!(snap.stage_msgs_for(Component::Other), 1);
        assert_eq!(snap.stage_bytes_for(Component::Other), 100);
        assert_eq!(snap.stage_msgs_for(Component::Scan), 0);
    }

    #[test]
    fn stage_attribution_follows_set_stage() {
        let s = CommStats::new();
        let prev = s.set_stage(Component::Scan);
        assert_eq!(prev, Component::Other);
        s.record_local(4);
        s.record_collective(16);
        let inner = s.set_stage(Component::Index);
        assert_eq!(inner, Component::Scan);
        s.record_one_sided(32);
        s.record_remote_atomic();
        s.set_stage(inner);
        s.record_local(8);
        let snap = s.snapshot();
        assert_eq!(snap.stage_msgs_for(Component::Scan), 3);
        assert_eq!(snap.stage_bytes_for(Component::Scan), 4 + 16 + 8);
        assert_eq!(snap.stage_msgs_for(Component::Index), 2);
        assert_eq!(snap.stage_bytes_for(Component::Index), 32 + 8);
        // Per-stage totals reconcile with the global message count.
        assert_eq!(snap.stage_msgs.iter().sum::<u64>(), snap.total_msgs());
    }
}
