//! Per-rank communication statistics.
//!
//! Purely observational counters used by tests (to assert, e.g., that the
//! dynamic load balancer actually performed remote steals) and by the
//! benchmark harness to report communication volumes alongside timings.

use std::cell::Cell;

/// Counters for one rank. Not shared across threads; each [`Ctx`]
/// (crate::Ctx) owns one.
#[derive(Debug, Default)]
pub struct CommStats {
    one_sided_ops: Cell<u64>,
    one_sided_bytes: Cell<u64>,
    local_ops: Cell<u64>,
    local_bytes: Cell<u64>,
    remote_atomics: Cell<u64>,
    collectives: Cell<u64>,
    collective_bytes: Cell<u64>,
}

/// A plain snapshot of [`CommStats`], safe to send across threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStatsSnapshot {
    pub one_sided_ops: u64,
    pub one_sided_bytes: u64,
    pub local_ops: u64,
    pub local_bytes: u64,
    pub remote_atomics: u64,
    pub collectives: u64,
    pub collective_bytes: u64,
}

impl CommStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_one_sided(&self, bytes: u64) {
        self.one_sided_ops.set(self.one_sided_ops.get() + 1);
        self.one_sided_bytes.set(self.one_sided_bytes.get() + bytes);
    }

    pub fn record_local(&self, bytes: u64) {
        self.local_ops.set(self.local_ops.get() + 1);
        self.local_bytes.set(self.local_bytes.get() + bytes);
    }

    pub fn record_remote_atomic(&self) {
        self.remote_atomics.set(self.remote_atomics.get() + 1);
    }

    pub fn record_collective(&self, bytes: u64) {
        self.collectives.set(self.collectives.get() + 1);
        self.collective_bytes
            .set(self.collective_bytes.get() + bytes);
    }

    pub fn snapshot(&self) -> CommStatsSnapshot {
        CommStatsSnapshot {
            one_sided_ops: self.one_sided_ops.get(),
            one_sided_bytes: self.one_sided_bytes.get(),
            local_ops: self.local_ops.get(),
            local_bytes: self.local_bytes.get(),
            remote_atomics: self.remote_atomics.get(),
            collectives: self.collectives.get(),
            collective_bytes: self.collective_bytes.get(),
        }
    }
}

impl CommStatsSnapshot {
    /// Element-wise sum, for aggregating over ranks.
    pub fn merge(&self, other: &CommStatsSnapshot) -> CommStatsSnapshot {
        CommStatsSnapshot {
            one_sided_ops: self.one_sided_ops + other.one_sided_ops,
            one_sided_bytes: self.one_sided_bytes + other.one_sided_bytes,
            local_ops: self.local_ops + other.local_ops,
            local_bytes: self.local_bytes + other.local_bytes,
            remote_atomics: self.remote_atomics + other.remote_atomics,
            collectives: self.collectives + other.collectives,
            collective_bytes: self.collective_bytes + other.collective_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = CommStats::new();
        s.record_one_sided(100);
        s.record_one_sided(50);
        s.record_local(8);
        s.record_remote_atomic();
        s.record_collective(4096);
        let snap = s.snapshot();
        assert_eq!(snap.one_sided_ops, 2);
        assert_eq!(snap.one_sided_bytes, 150);
        assert_eq!(snap.local_ops, 1);
        assert_eq!(snap.local_bytes, 8);
        assert_eq!(snap.remote_atomics, 1);
        assert_eq!(snap.collectives, 1);
        assert_eq!(snap.collective_bytes, 4096);
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let a = CommStatsSnapshot {
            one_sided_ops: 1,
            one_sided_bytes: 2,
            local_ops: 3,
            local_bytes: 4,
            remote_atomics: 5,
            collectives: 6,
            collective_bytes: 7,
        };
        let b = a;
        let m = a.merge(&b);
        assert_eq!(m.one_sided_ops, 2);
        assert_eq!(m.collective_bytes, 14);
    }
}
