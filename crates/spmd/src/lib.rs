//! # spmd — a single-program-multiple-data runtime with virtual time
//!
//! The paper's engine is an SPMD program: `P` processes execute the same
//! code on different partitions of the data, communicating through MPI
//! collectives and one-sided Global Arrays operations. This crate provides
//! that execution model on one machine:
//!
//! * [`Runtime::run`] spawns one OS thread per rank and hands each a
//!   [`Ctx`]. The threads perform the *real* computation on their real data
//!   partitions — nothing about the algorithms is simulated.
//! * Each rank carries a **virtual clock** (seconds on the modeled 2007
//!   cluster). Compute work advances only the local clock
//!   ([`Ctx::charge`]); collectives synchronize clocks to the maximum
//!   participant plus the modeled collective cost, exactly like a
//!   discrete-event simulation driven by the real execution trace.
//! * Collectives ([`Ctx::barrier`], [`Ctx::allreduce_f64`],
//!   [`Ctx::broadcast`], [`Ctx::allgather`], [`Ctx::gather`], …) follow MPI
//!   semantics: **every rank must call every collective in the same
//!   order**. Results are combined in rank order, so the outcome is
//!   deterministic regardless of thread scheduling.
//! * [`Ctx::timers`] attribute virtual time to the paper's pipeline
//!   components (scan, index, topic, AM, DocVec, ClusProj) so the harness
//!   can regenerate Figures 6b, 7b and 8.
//! * Each rank owns an [`IntraPool`] ([`Ctx::pool`]) for *intra-rank*
//!   data parallelism: pure per-chunk work fans out across host threads
//!   while collectives, clocks and timers stay on the rank thread. Chunk
//!   boundaries are width-independent, so results are bit-identical at
//!   any `threads_per_rank` (see [`Runtime::with_threads_per_rank`]).
//! * With [`Runtime::with_tracing`], each rank records stage and
//!   collective spans into an `inspire-trace` ring buffer (stamped with
//!   both virtual and wall clocks) that [`RunResult::traces`] exposes for
//!   Chrome trace-event export. Recording only *reads* clocks — engine
//!   output is bit-identical with tracing on or off.
//!
//! The wall-clock/virtual-clock split is the substitution documented in
//! DESIGN.md §2: the machine running this reproduction has a single core,
//! so scaling curves must come from modeled time; correctness still comes
//! from real execution.

pub mod ctx;
pub mod gate;
pub mod pool;
pub mod rendezvous;
pub mod runtime;
pub mod stats;
pub mod timer;

pub use ctx::{Ctx, ReduceOp};
pub use gate::VirtualGate;
pub use pool::IntraPool;
pub use runtime::{RunResult, Runtime};
pub use stats::CommStats;
pub use timer::{Component, PerStage, Timers};

pub use perfmodel::{CostModel, WorkKind};
