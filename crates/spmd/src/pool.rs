//! Intra-rank worker pool: data parallelism *inside* one SPMD rank.
//!
//! The paper's engine scales across ranks; on modern multi-core nodes
//! each rank can additionally fan embarrassingly parallel loops (record
//! tokenization, posting counts, association-matrix accumulation,
//! signature generation) across a small thread pool. This module provides
//! that pool with two invariants the engine depends on:
//!
//! 1. **Rank-collective semantics are untouched.** The pool runs only
//!    pure closures over index ranges; all collectives, virtual-clock
//!    charges, and timer attribution stay on the owning rank thread
//!    (`Ctx` is `!Send`, so the compiler enforces this).
//! 2. **Results are independent of the thread count.** Work is split
//!    into fixed-size chunks whose boundaries depend only on the item
//!    count — never on the pool width — and per-chunk partials are
//!    returned in chunk index order. A caller that merges partials
//!    sequentially therefore produces bit-identical results at any
//!    `threads_per_rank`, including the serial pool.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A fixed-width worker pool owned by one rank's `Ctx`.
///
/// Width 1 is the serial pool: `map_chunks` degenerates to a plain loop
/// with no thread-pool machinery at all.
pub struct IntraPool {
    pool: Option<rayon::ThreadPool>,
    width: usize,
    /// When set, `map_chunks` records per-chunk wall-clock seconds.
    profiling: AtomicBool,
    /// One group per `map_chunks` call; `(chunk index, seconds)` pairs
    /// within a group arrive in completion order.
    profile: Mutex<Vec<Vec<(usize, f64)>>>,
}

impl IntraPool {
    /// Create a pool of `width` workers. Width 0 is treated as 1.
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let pool = if width > 1 {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(width)
                    .build()
                    .expect("build intra-rank pool"),
            )
        } else {
            None
        };
        IntraPool {
            pool,
            width,
            profiling: AtomicBool::new(false),
            profile: Mutex::new(Vec::new()),
        }
    }

    /// Serial pool (the default for every rank unless configured).
    pub fn serial() -> Self {
        IntraPool::new(1)
    }

    /// Number of worker threads this pool fans out to.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Turn per-chunk wall-clock profiling on or off. Profiling never
    /// affects results or virtual time; the scaling benchmark uses it to
    /// project pool speedups from one measured run.
    pub fn set_profiling(&self, on: bool) {
        self.profiling.store(on, Ordering::Relaxed);
    }

    /// Drain the recorded profile: one inner vector per `map_chunks`
    /// call since the last drain, each sorted by chunk index and holding
    /// that chunk's wall-clock seconds.
    pub fn take_profile(&self) -> Vec<Vec<f64>> {
        let groups = std::mem::take(&mut *self.profile.lock().unwrap());
        groups
            .into_iter()
            .map(|mut g| {
                g.sort_by_key(|&(i, _)| i);
                g.into_iter().map(|(_, s)| s).collect()
            })
            .collect()
    }

    /// Split `0..n_items` into chunks of `chunk_size` and map `f` over
    /// them, returning the per-chunk results **in chunk index order**.
    ///
    /// Chunk boundaries depend only on `n_items` and `chunk_size`, so the
    /// partial list — and any in-order sequential merge of it — is
    /// identical for every pool width. `f` must be pure with respect to
    /// rank state: it runs off the rank thread when `width > 1`.
    pub fn map_chunks<R, F>(&self, n_items: usize, chunk_size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let chunks: Vec<(usize, usize)> = (0..n_items).step_by(chunk_size).enumerate().collect();
        let profiling = self.profiling.load(Ordering::Relaxed);
        let sink: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
        let run = |(ci, s): (usize, usize)| -> R {
            let range = s..(s + chunk_size).min(n_items);
            if profiling {
                let t0 = Instant::now();
                let r = f(range);
                sink.lock().unwrap().push((ci, t0.elapsed().as_secs_f64()));
                r
            } else {
                f(range)
            }
        };
        let out = match &self.pool {
            Some(pool) if chunks.len() > 1 => pool.install(|| {
                use rayon::prelude::*;
                chunks.into_par_iter().map(run).collect()
            }),
            _ => chunks.into_iter().map(run).collect(),
        };
        if profiling {
            self.profile
                .lock()
                .unwrap()
                .push(sink.into_inner().unwrap());
        }
        out
    }
}

impl std::fmt::Debug for IntraPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntraPool")
            .field("width", &self.width)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_boundaries_ignore_width() {
        let serial = IntraPool::serial();
        let wide = IntraPool::new(4);
        let a = serial.map_chunks(103, 10, |r| (r.start, r.end));
        let b = wide.map_chunks(103, 10, |r| (r.start, r.end));
        assert_eq!(a, b);
        assert_eq!(a.len(), 11);
        assert_eq!(a[0], (0, 10));
        assert_eq!(a[10], (100, 103));
    }

    #[test]
    fn partials_merge_identically_across_widths() {
        let items: Vec<u64> = (0..1000).map(|i| i * 7 + 3).collect();
        let merge = |pool: &IntraPool| -> u64 {
            pool.map_chunks(items.len(), 64, |r| items[r].iter().sum::<u64>())
                .into_iter()
                .sum()
        };
        let expect: u64 = items.iter().sum();
        for width in [1, 2, 3, 4, 8] {
            assert_eq!(merge(&IntraPool::new(width)), expect, "width {width}");
        }
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let pool = IntraPool::new(4);
        let out = pool.map_chunks(0, 16, |_| -> u32 {
            unreachable!("no chunks for empty input")
        });
        assert!(out.is_empty());
    }

    #[test]
    fn width_zero_is_serial() {
        let pool = IntraPool::new(0);
        assert_eq!(pool.width(), 1);
        let out = pool.map_chunks(5, 2, |r| r.len());
        assert_eq!(out, vec![2, 2, 1]);
    }

    #[test]
    fn profiling_records_one_group_per_call() {
        let pool = IntraPool::new(3);
        pool.set_profiling(true);
        let out = pool.map_chunks(50, 8, |r| r.len());
        assert_eq!(out.len(), 7);
        pool.map_chunks(10, 2, |r| r.len());
        let prof = pool.take_profile();
        assert_eq!(prof.len(), 2);
        assert_eq!(prof[0].len(), 7);
        assert_eq!(prof[1].len(), 5);
        assert!(prof.iter().flatten().all(|&s| s >= 0.0));
        // Draining resets; disabled profiling records nothing.
        pool.set_profiling(false);
        pool.map_chunks(10, 2, |r| r.len());
        assert!(pool.take_profile().is_empty());
    }

    #[test]
    fn concatenation_order_is_stable() {
        let wide = IntraPool::new(8);
        let blocks = wide.map_chunks(57, 5, |r| r.collect::<Vec<usize>>());
        let flat: Vec<usize> = blocks.into_iter().flatten().collect();
        assert_eq!(flat, (0..57).collect::<Vec<usize>>());
    }
}
