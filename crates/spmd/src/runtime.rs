//! The SPMD runtime: spawns ranks, collects results, merges clocks and
//! timers.

use crate::ctx::{Ctx, SharedState};
use crate::rendezvous::Rendezvous;
use crate::stats::CommStatsSnapshot;
use crate::timer::TimerSnapshot;
use inspire_trace::span::{RankTrace, SpanRecorder};
use perfmodel::CostModel;
use std::sync::Arc;
use std::time::Instant;

/// Outcome of one SPMD execution.
#[derive(Debug)]
pub struct RunResult<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank final virtual clocks (seconds).
    pub clocks: Vec<f64>,
    /// Per-rank component timers.
    pub timers: Vec<TimerSnapshot>,
    /// Per-rank communication statistics.
    pub stats: Vec<CommStatsSnapshot>,
    /// Per-rank recorded spans, indexed by rank; empty unless the runtime
    /// was built [`Runtime::with_tracing`].
    pub traces: Vec<RankTrace>,
}

impl<R> RunResult<R> {
    /// Virtual wall-clock of the whole run: the slowest rank.
    pub fn virtual_time(&self) -> f64 {
        self.clocks.iter().cloned().fold(0.0, f64::max)
    }

    /// Critical-path time per component (element-wise max over ranks).
    pub fn component_times(&self) -> TimerSnapshot {
        self.timers
            .iter()
            .fold(TimerSnapshot::default(), |acc, t| acc.max(t))
    }

    /// Aggregate communication statistics over all ranks.
    pub fn total_stats(&self) -> CommStatsSnapshot {
        self.stats
            .iter()
            .fold(CommStatsSnapshot::default(), |acc, s| acc.merge(s))
    }
}

/// Factory for SPMD executions against one cost model.
pub struct Runtime {
    model: Arc<CostModel>,
    threads_per_rank: usize,
    tracing: bool,
    trace_capacity: usize,
}

impl Runtime {
    pub fn new(model: Arc<CostModel>) -> Self {
        Runtime {
            model,
            threads_per_rank: 1,
            tracing: false,
            trace_capacity: inspire_trace::span::DEFAULT_CAPACITY,
        }
    }

    /// Convenience constructor with a zero-cost model (correctness-only).
    pub fn for_testing() -> Self {
        Runtime::new(Arc::new(CostModel::zero()))
    }

    /// Give every rank an intra-rank pool of `n` worker threads (host
    /// wall-clock parallelism). Virtual time and all results are
    /// invariant in `n`: chunked work merges in chunk index order and
    /// charges land on the rank thread after the merge. `0` and `1` both
    /// mean the serial pool.
    pub fn with_threads_per_rank(mut self, n: usize) -> Self {
        self.threads_per_rank = n.max(1);
        self
    }

    /// Intra-rank pool width ranks will be given.
    pub fn threads_per_rank(&self) -> usize {
        self.threads_per_rank
    }

    /// Record stage and collective spans on every rank, exposed through
    /// [`RunResult::traces`]. Off by default; recording only reads the
    /// virtual clock, so results are bit-identical either way.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Cap the per-rank span ring at `events` entries (oldest dropped
    /// beyond it). Only meaningful together with [`Runtime::with_tracing`].
    pub fn with_trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = events;
        self
    }

    /// Is span tracing enabled?
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    pub fn model(&self) -> &Arc<CostModel> {
        &self.model
    }

    /// Execute `f` on `nprocs` ranks (one OS thread each) and collect
    /// everything. Panics in any rank poison the collectives (so peers fail
    /// fast) and are re-thrown here.
    pub fn run<R, F>(&self, nprocs: usize, f: F) -> RunResult<R>
    where
        R: Send + 'static,
        F: Fn(&Ctx) -> R + Send + Sync,
    {
        assert!(nprocs > 0, "need at least one rank");
        let shared = Arc::new(SharedState {
            rendezvous: Rendezvous::new(nprocs),
            nprocs,
        });

        // A guard that poisons the rendezvous if the rank unwinds, so the
        // other ranks don't deadlock inside a collective.
        struct PoisonOnPanic {
            shared: Arc<SharedState>,
        }
        impl Drop for PoisonOnPanic {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.shared.rendezvous.poison();
                }
            }
        }

        let model = &self.model;
        let threads_per_rank = self.threads_per_rank;
        let tracing = self.tracing;
        let trace_capacity = self.trace_capacity;
        // One epoch per run so wall stamps align across rank lanes.
        let epoch = Instant::now();
        let f = &f;
        type RankOutput<R> = (R, f64, TimerSnapshot, CommStatsSnapshot, RankTrace);
        let outputs: Vec<RankOutput<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nprocs)
                .map(|rank| {
                    let shared = shared.clone();
                    let model = model.clone();
                    scope.spawn(move || {
                        let _guard = PoisonOnPanic {
                            shared: shared.clone(),
                        };
                        let trace = if tracing {
                            SpanRecorder::enabled_with(epoch, trace_capacity)
                        } else {
                            SpanRecorder::disabled()
                        };
                        let ctx = Ctx::new(rank, nprocs, model, shared, threads_per_rank, trace);
                        let out = f(&ctx);
                        (
                            out,
                            ctx.now(),
                            ctx.timers.snapshot(),
                            ctx.stats.snapshot(),
                            ctx.take_trace(),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        });

        let mut results = Vec::with_capacity(nprocs);
        let mut clocks = Vec::with_capacity(nprocs);
        let mut timers = Vec::with_capacity(nprocs);
        let mut stats = Vec::with_capacity(nprocs);
        let mut traces = Vec::with_capacity(nprocs);
        for (r, c, t, s, tr) in outputs {
            results.push(r);
            clocks.push(c);
            timers.push(t);
            stats.push(s);
            traces.push(tr);
        }
        RunResult {
            results,
            clocks,
            timers,
            stats,
            traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ReduceOp;
    use perfmodel::WorkKind;

    #[test]
    fn results_indexed_by_rank() {
        let rt = Runtime::for_testing();
        let res = rt.run(8, |ctx| ctx.rank() * 3);
        assert_eq!(res.results, vec![0, 3, 6, 9, 12, 15, 18, 21]);
    }

    #[test]
    fn virtual_time_is_slowest_rank() {
        let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
        let res = rt.run(4, |ctx| {
            ctx.charge(WorkKind::Flops, (ctx.rank() as u64 + 1) * 120_000_000);
        });
        assert!((res.virtual_time() - 4.0).abs() < 1e-9);
        assert!((res.clocks[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_works() {
        let rt = Runtime::for_testing();
        let res = rt.run(1, |ctx| {
            ctx.barrier();
            ctx.allreduce_scalar_f64(5.0, ReduceOp::Sum)
        });
        assert_eq!(res.results, vec![5.0]);
    }

    #[test]
    fn rank_panic_propagates_not_deadlocks() {
        let rt = Runtime::for_testing();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(4, |ctx| {
                if ctx.rank() == 2 {
                    panic!("rank 2 exploded");
                }
                // Other ranks head into a collective and must be released
                // by the poison rather than hanging.
                ctx.barrier();
            });
        }));
        assert!(outcome.is_err());
    }

    #[test]
    fn deterministic_across_repeats() {
        let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
        let runs: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                rt.run(6, |ctx| {
                    ctx.charge(WorkKind::ScanBytes, 1000 * (ctx.rank() as u64 + 1));
                    ctx.allreduce_f64(vec![ctx.rank() as f64 * 0.1; 16], ReduceOp::Sum);
                    ctx.barrier();
                    ctx.now()
                })
                .clocks
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn many_ranks_many_collectives() {
        let rt = Runtime::for_testing();
        let res = rt.run(16, |ctx| {
            let mut acc = 0u64;
            for i in 0..50 {
                acc = ctx.allreduce_scalar_u64(acc + i + ctx.rank() as u64, ReduceOp::Sum);
            }
            acc
        });
        // All ranks agree.
        for v in &res.results {
            assert_eq!(*v, res.results[0]);
        }
    }

    #[test]
    fn tracing_records_balanced_monotone_spans() {
        use crate::timer::Component;
        use inspire_trace::span::Phase;
        let rt = Runtime::new(Arc::new(CostModel::pnnl_2007())).with_tracing(true);
        let res = rt.run(3, |ctx| {
            assert!(ctx.tracing());
            ctx.component(Component::Scan, || {
                ctx.charge(WorkKind::ScanBytes, 1_000_000 * (ctx.rank() as u64 + 1));
                ctx.barrier();
            });
            ctx.allreduce_scalar_u64(1, crate::ctx::ReduceOp::Sum);
        });
        assert_eq!(res.traces.len(), 3);
        for (rank, t) in res.traces.iter().enumerate() {
            assert_eq!(t.rank, rank);
            assert_eq!(t.dropped, 0);
            let begins = t.events.iter().filter(|e| e.phase == Phase::Begin).count();
            let ends = t.events.iter().filter(|e| e.phase == Phase::End).count();
            assert_eq!(begins, ends, "rank {rank} spans unbalanced");
            assert!(t
                .events
                .iter()
                .any(|e| e.cat == "stage" && e.name == "scan"));
            assert!(t
                .events
                .iter()
                .any(|e| e.cat == "collective" && e.name == "barrier"));
            for w in t.events.windows(2) {
                assert!(
                    w[0].virt_us <= w[1].virt_us,
                    "rank {rank}: virtual stamps must be monotone"
                );
            }
        }
    }

    #[test]
    fn tracing_off_by_default_and_invisible_to_results() {
        let model = Arc::new(CostModel::pnnl_2007());
        let work = |ctx: &Ctx| {
            ctx.charge(WorkKind::Flops, (ctx.rank() as u64 + 1) * 10_000_000);
            ctx.barrier();
            ctx.allreduce_scalar_f64(ctx.now(), ReduceOp::Max).to_bits()
        };
        let plain = Runtime::new(model.clone()).run(4, work);
        assert!(plain.traces.iter().all(|t| t.events.is_empty()));
        let traced = Runtime::new(model).with_tracing(true).run(4, work);
        assert!(traced.traces.iter().any(|t| !t.events.is_empty()));
        // Bit-identical outputs and clocks.
        assert_eq!(plain.results, traced.results);
        assert_eq!(plain.clocks, traced.clocks);
    }

    #[test]
    fn collective_wait_attributed_to_active_stage() {
        use crate::timer::Component;
        let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
        let res = rt.run(2, |ctx| {
            ctx.component(Component::Index, || {
                // Rank 1 does 10x the work; rank 0 waits at the barrier.
                ctx.charge(WorkKind::Flops, (1 + 9 * ctx.rank() as u64) * 12_000_000);
                ctx.barrier();
            });
        });
        let fast = res.timers[0];
        let slow = res.timers[1];
        assert!(
            fast.get_wait(Component::Index) > slow.get_wait(Component::Index),
            "the underloaded rank must accrue more wait"
        );
        // The fast rank's wait covers the skew: ~9x its own compute.
        assert!(fast.get_wait(Component::Index) > 8.0 * fast.get(Component::Index) / 10.0);
        assert_eq!(fast.get_wait(Component::Scan), 0.0);
    }

    #[test]
    fn component_times_are_critical_path() {
        use crate::timer::Component;
        let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
        let res = rt.run(3, |ctx| {
            ctx.component(Component::Index, || {
                ctx.charge(WorkKind::InvertPostings, 250_000 * (ctx.rank() as u64 + 1));
            });
        });
        let ct = res.component_times();
        assert!((ct.get(Component::Index) - 3.0).abs() < 1e-9);
    }
}
