//! Virtual-time claim ordering for shared work queues.
//!
//! The runtime executes ranks as preemptively-scheduled OS threads, but
//! *cost* is virtual: a rank's clock advances only by modeled charges. A
//! shared task queue drained in real-time order would therefore be
//! nonsense — on a single host core one thread can empty the queue before
//! its peers are scheduled at all, even though in virtual time those peers
//! were idle and should have claimed work.
//!
//! [`VirtualGate`] restores the cluster semantics: a rank may claim the
//! next task only when its virtual clock is the minimum among the ranks
//! still drawing from the queue (ties break by rank id). This is exactly
//! greedy list scheduling — what fixed-size chunking achieves on the real
//! machine — and it makes load-balance results (paper Figure 9)
//! independent of host scheduling.
//!
//! Protocol: every rank passes through [`VirtualGate::pace`] before each
//! claim attempt and calls [`VirtualGate::leave`] when it stops claiming.
//! A rank that is busy processing keeps its last published clock as a
//! lower bound, so peers with later clocks wait for it — preserving the
//! exact claim order of the modeled cluster.

use crate::ctx::Ctx;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct GateState {
    clocks: Vec<f64>,
    active: Vec<bool>,
}

/// See the module documentation.
pub struct VirtualGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl VirtualGate {
    /// Collective creation; all ranks start active.
    pub fn create(ctx: &Ctx) -> Arc<VirtualGate> {
        let p = ctx.nprocs();
        let gate = if ctx.rank() == 0 {
            Some(Arc::new(VirtualGate {
                state: Mutex::new(GateState {
                    clocks: vec![f64::NEG_INFINITY; p],
                    active: vec![true; p],
                }),
                cv: Condvar::new(),
            }))
        } else {
            None
        };
        ctx.broadcast(0, gate, 16)
    }

    /// Publish this rank's current clock and block until it holds the
    /// minimum `(clock, rank)` among active ranks. On return the caller
    /// is the unique rank allowed to claim the next task.
    pub fn pace(&self, ctx: &Ctx) {
        let me = ctx.rank();
        let my_clock = ctx.now();
        let mut st = self.state.lock();
        st.clocks[me] = my_clock;
        self.cv.notify_all();
        while !Self::is_min(&st, me, my_clock) {
            self.cv.wait(&mut st);
        }
    }

    fn is_min(st: &GateState, me: usize, my_clock: f64) -> bool {
        for r in 0..st.clocks.len() {
            if r == me || !st.active[r] {
                continue;
            }
            let other = (st.clocks[r], r);
            if other < (my_clock, me) {
                return false;
            }
        }
        true
    }

    /// Stop participating (the queue is exhausted for this rank).
    pub fn leave(&self, ctx: &Ctx) {
        let mut st = self.state.lock();
        st.active[ctx.rank()] = false;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use parking_lot::Mutex as PMutex;
    use perfmodel::WorkKind;

    #[test]
    fn claims_follow_virtual_clock_order() {
        // Each rank starts with a different virtual clock; tasks must be
        // claimed in ascending clock order regardless of host scheduling.
        let rt = Runtime::new(std::sync::Arc::new(perfmodel::CostModel::pnnl_2007()));
        let claims: Arc<PMutex<Vec<(f64, usize)>>> = Arc::new(PMutex::new(Vec::new()));
        let claims2 = claims.clone();
        rt.run(4, move |ctx| {
            // Stagger initial clocks: rank r starts at r seconds.
            ctx.advance(ctx.rank() as f64);
            let gate = VirtualGate::create(ctx);
            // Each rank claims twice, working 10s per task.
            for _ in 0..2 {
                gate.pace(ctx);
                claims2.lock().push((ctx.now(), ctx.rank()));
                ctx.charge(WorkKind::Flops, 1_200_000_000); // 10 virtual s
            }
            gate.leave(ctx);
            ctx.barrier();
        });
        let log = claims.lock();
        assert_eq!(log.len(), 8);
        for w in log.windows(2) {
            assert!(
                (w[0].0, w[0].1) <= (w[1].0, w[1].1),
                "claims out of virtual order: {log:?}"
            );
        }
        // First four claims are the four ranks in starting-clock order.
        let first: Vec<usize> = log.iter().take(4).map(|&(_, r)| r).collect();
        assert_eq!(first, vec![0, 1, 2, 3]);
    }

    #[test]
    fn leaving_unblocks_waiters() {
        let rt = Runtime::for_testing();
        rt.run(3, |ctx| {
            let gate = VirtualGate::create(ctx);
            if ctx.rank() == 0 {
                // Rank 0 (lowest clock) claims once then leaves; others
                // must then be able to pace through.
                gate.pace(ctx);
                gate.leave(ctx);
            } else {
                ctx.advance(ctx.rank() as f64);
                gate.pace(ctx);
                gate.leave(ctx);
            }
            ctx.barrier();
        });
    }

    #[test]
    fn single_rank_never_blocks() {
        let rt = Runtime::for_testing();
        rt.run(1, |ctx| {
            let gate = VirtualGate::create(ctx);
            for _ in 0..100 {
                gate.pace(ctx);
            }
            gate.leave(ctx);
        });
    }
}
