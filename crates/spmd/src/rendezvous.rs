//! Generation-counted rendezvous: the synchronization primitive under every
//! collective.
//!
//! All `P` ranks deposit a value and their current virtual clock; the last
//! arrival combines the deposits (in rank order, so results are
//! deterministic) and computes the synchronized departure clock; everyone
//! leaves with a shared `Arc` of the combined result. A generation counter
//! lets the cell be reused for the next collective, and a poison flag turns
//! a panicking rank into a prompt panic on every peer instead of a deadlock.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::sync::Arc;

type Slot = Option<Box<dyn Any + Send>>;

struct State {
    /// Collective sequence number, used to detect that a new round started.
    generation: u64,
    /// Deposits, indexed by rank.
    slots: Vec<Slot>,
    /// Virtual clocks at arrival, indexed by rank.
    clocks: Vec<f64>,
    arrived: usize,
    departed: usize,
    /// Combined result of the current generation.
    result: Option<Arc<dyn Any + Send + Sync>>,
    /// Departure clock of the current generation.
    synced_clock: f64,
    /// Set when some rank panicked; wakes and fails all waiters.
    poisoned: bool,
}

/// The rendezvous cell shared by all ranks of one runtime.
pub struct Rendezvous {
    nprocs: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl Rendezvous {
    pub fn new(nprocs: usize) -> Self {
        Rendezvous {
            nprocs,
            state: Mutex::new(State {
                generation: 0,
                slots: (0..nprocs).map(|_| None).collect(),
                clocks: vec![0.0; nprocs],
                arrived: 0,
                departed: 0,
                result: None,
                synced_clock: 0.0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Mark the cell poisoned (a rank is unwinding) and wake everyone.
    pub fn poison(&self) {
        let mut st = self.state.lock();
        st.poisoned = true;
        self.cv.notify_all();
    }

    /// Execute one collective round.
    ///
    /// `value` is this rank's deposit; `clock` its virtual time on entry.
    /// `combine` runs exactly once (in the last-arriving thread) over the
    /// deposits in rank order together with the maximum entry clock, and
    /// returns the combined result plus the synchronized departure clock.
    ///
    /// Returns the shared result and the departure clock.
    ///
    /// # Panics
    /// Panics if a peer rank panicked (poison), if called re-entrantly from
    /// `combine`, or if ranks disagree on the collective sequence (which
    /// manifests as a type mismatch in the caller's downcast).
    pub fn round<T, R>(
        &self,
        rank: usize,
        value: T,
        clock: f64,
        combine: impl FnOnce(Vec<T>, f64) -> (R, f64),
    ) -> (Arc<R>, f64)
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
    {
        let mut st = self.state.lock();

        // Wait for the previous generation to fully drain before starting a
        // new one (a rank can race ahead into the next collective while
        // slow ranks are still departing the previous round).
        while st.arrived == self.nprocs && st.departed < self.nprocs {
            self.check_poison(&st);
            self.cv.wait(&mut st);
        }
        self.check_poison(&st);

        let my_generation = st.generation;
        debug_assert!(st.slots[rank].is_none(), "rank {rank} deposited twice");
        st.slots[rank] = Some(Box::new(value));
        st.clocks[rank] = clock;
        st.arrived += 1;

        if st.arrived == self.nprocs {
            // Last arrival: combine in rank order.
            let max_clock = st.clocks.iter().cloned().fold(f64::MIN, f64::max);
            let deposits: Vec<T> = st
                .slots
                .iter_mut()
                .map(|s| {
                    *s.take()
                        .expect("missing deposit")
                        .downcast::<T>()
                        .expect("collective type mismatch across ranks")
                })
                .collect();
            let (result, synced) = combine(deposits, max_clock);
            st.result = Some(Arc::new(result));
            st.synced_clock = synced;
            self.cv.notify_all();
        } else {
            // Wait until the result of *my* generation is published.
            while !(st.generation == my_generation && st.result.is_some()) {
                self.check_poison(&st);
                self.cv.wait(&mut st);
            }
        }

        let result = st
            .result
            .as_ref()
            .expect("result present")
            .clone()
            .downcast::<R>()
            .expect("collective result type mismatch");
        let synced = st.synced_clock;

        st.departed += 1;
        if st.departed == self.nprocs {
            // Reset for the next generation.
            st.generation += 1;
            st.arrived = 0;
            st.departed = 0;
            st.result = None;
            self.cv.notify_all();
        }

        (result, synced)
    }

    fn check_poison(&self, st: &State) {
        if st.poisoned {
            panic!("collective aborted: a peer rank panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_sum(nprocs: usize, rounds_n: usize) -> Vec<Vec<u64>> {
        let rv = Arc::new(Rendezvous::new(nprocs));
        let mut handles = Vec::new();
        for rank in 0..nprocs {
            let rv = rv.clone();
            handles.push(thread::spawn(move || {
                let mut sums = Vec::new();
                for round in 0..rounds_n {
                    let v = (rank * 10 + round) as u64;
                    let (res, _clock) =
                        rv.round(rank, v, 0.0, |vals, mx| (vals.iter().sum::<u64>(), mx));
                    sums.push(*res);
                }
                sums
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn all_ranks_see_same_sum() {
        for p in [1usize, 2, 3, 7, 16] {
            let results = run_sum(p, 5);
            for round in 0..5 {
                let expect: u64 = (0..p).map(|r| (r * 10 + round) as u64).sum();
                for per_rank in &results {
                    assert_eq!(per_rank[round], expect, "p={p} round={round}");
                }
            }
        }
    }

    #[test]
    fn clock_syncs_to_max() {
        let p = 4;
        let rv = Arc::new(Rendezvous::new(p));
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let rv = rv.clone();
                thread::spawn(move || {
                    let (_res, clock) =
                        rv.round(rank, (), rank as f64 * 5.0, |_vals, mx| ((), mx + 1.0));
                    clock
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 16.0); // max(0,5,10,15) + 1
        }
    }

    #[test]
    fn many_back_to_back_rounds_do_not_deadlock() {
        // Stress generation turnover with uneven thread speeds.
        let results = run_sum(8, 200);
        assert_eq!(results.len(), 8);
    }

    #[test]
    fn poison_unblocks_waiters() {
        let p = 2;
        let rv = Arc::new(Rendezvous::new(p));
        let rv2 = rv.clone();
        let waiter = thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rv2.round(0, (), 0.0, |_v: Vec<()>, mx| ((), mx));
            }));
            r.is_err()
        });
        // Give the waiter time to block, then poison.
        thread::sleep(std::time::Duration::from_millis(50));
        rv.poison();
        assert!(waiter.join().unwrap(), "waiter should panic on poison");
    }

    #[test]
    fn deposits_combined_in_rank_order() {
        let p = 6;
        let rv = Arc::new(Rendezvous::new(p));
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let rv = rv.clone();
                thread::spawn(move || {
                    // Stagger arrivals to scramble arrival order.
                    thread::sleep(std::time::Duration::from_millis(((p - rank) * 10) as u64));
                    let (res, _) = rv.round(rank, rank, 0.0, |vals, mx| (vals, mx));
                    (*res).clone()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0, 1, 2, 3, 4, 5]);
        }
    }
}
