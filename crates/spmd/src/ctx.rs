//! The per-rank execution context: virtual clock, work charging, and
//! MPI-style collectives.

use crate::pool::IntraPool;
use crate::rendezvous::Rendezvous;
use crate::stats::CommStats;
use crate::timer::{Component, Timers};
use inspire_trace::span::{Phase, RankTrace, SpanRecorder};
use perfmodel::{CostModel, WorkKind};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

/// Reduction operators for the numeric allreduce helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

/// Shared state owned by the runtime, visible to every rank.
pub struct SharedState {
    pub(crate) rendezvous: Rendezvous,
    #[allow(dead_code)]
    pub(crate) nprocs: usize,
}

/// One rank's view of the SPMD computation.
///
/// A `Ctx` is created per spawned thread by [`Runtime::run`]
/// (crate::Runtime::run) and is deliberately `!Send`: it owns the rank's
/// virtual clock and statistics, which must never migrate.
pub struct Ctx {
    rank: usize,
    nprocs: usize,
    model: Arc<CostModel>,
    shared: Arc<SharedState>,
    clock: Cell<f64>,
    /// Memory-pressure multiplier applied to compute charges (see
    /// [`Ctx::set_working_set`]).
    pressure: Cell<f64>,
    /// Communication counters.
    pub stats: CommStats,
    /// Component time attribution.
    pub timers: Timers,
    /// Span recorder (disabled unless the runtime enables tracing).
    trace: SpanRecorder,
    /// Intra-rank worker pool for pure per-chunk parallelism.
    pool: IntraPool,
}

impl Ctx {
    pub(crate) fn new(
        rank: usize,
        nprocs: usize,
        model: Arc<CostModel>,
        shared: Arc<SharedState>,
        threads_per_rank: usize,
        trace: SpanRecorder,
    ) -> Self {
        Ctx {
            rank,
            nprocs,
            model,
            shared,
            clock: Cell::new(0.0),
            pressure: Cell::new(1.0),
            stats: CommStats::new(),
            timers: Timers::new(),
            trace,
            pool: IntraPool::new(threads_per_rank),
        }
    }

    /// This rank's id in `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the computation.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The cost model in effect.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// This rank's intra-rank worker pool. Fan pure per-chunk work out
    /// with [`IntraPool::map_chunks`], merge the partials in chunk order
    /// on this thread, then charge the merged totals — the virtual clock
    /// and component timers never observe the pool width.
    pub fn pool(&self) -> &IntraPool {
        &self.pool
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.clock.get()
    }

    /// Advance the virtual clock by raw `seconds` (no pressure applied).
    pub fn advance(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "time cannot run backwards");
        self.clock.set(self.clock.get() + seconds);
    }

    /// Declare this rank's working set (bytes at nominal scale). Subsequent
    /// compute charges are multiplied by the model's thrash factor —
    /// this is how the Figure 5 memory-pressure anomaly enters the clock.
    pub fn set_working_set(&self, nominal_bytes: u64) {
        let mem = self.model.cluster.memory_per_active_proc(self.nprocs);
        let f = self.model.memory.thrash_factor(nominal_bytes, mem);
        self.pressure.set(f);
    }

    /// Current memory-pressure multiplier.
    pub fn pressure(&self) -> f64 {
        self.pressure.get()
    }

    /// Charge `units` of compute work of `kind` to the local clock.
    pub fn charge(&self, kind: WorkKind, units: u64) {
        self.advance(self.model.compute(kind, units) * self.pressure.get());
    }

    /// Charge compute work whose population scales with the *vocabulary*
    /// (per-term passes: topicality scoring shards, vocabulary sorting,
    /// offset prefix sums) rather than with corpus bytes.
    pub fn charge_vocab(&self, kind: WorkKind, units: u64) {
        let base = self.model.rates.seconds(kind, units);
        self.advance(base * self.model.scale.vocab_scale() * self.pressure.get());
    }

    /// Charge compute work that is independent of corpus size (fixed-
    /// dimensional numeric kernels: PCA on centroids, per-centroid
    /// updates — their size is set by the engine configuration, which the
    /// nominal run shares).
    pub fn charge_fixed(&self, kind: WorkKind, units: u64) {
        let base = self.model.rates.seconds(kind, units);
        self.advance(base * self.pressure.get());
    }

    /// Charge source-data I/O for scanning `bytes` while `nprocs` ranks
    /// compete for the shared filesystem.
    pub fn charge_scan_io(&self, bytes: u64) {
        self.advance(self.model.scan_io(bytes, self.nprocs));
    }

    /// Charge a one-sided access of `bytes` against `target` rank: network
    /// cost when remote, memory cost when local. Used by the `ga` crate.
    pub fn charge_one_sided(&self, bytes: u64, target: usize) {
        if target == self.rank {
            self.stats.record_local(bytes);
            self.advance(self.model.local_access(bytes));
        } else {
            self.stats.record_one_sided(bytes);
            self.advance(self.model.one_sided(bytes));
        }
    }

    /// Charge one **aggregated** one-sided message to `target`: `bytes`
    /// of payload that replaces `scalar_ops` individual one-sided
    /// operations (ARMCI-style destination aggregation). Costs a single
    /// pipelined message; the counters record both the one message
    /// actually sent and the scalar-equivalent count it folded, so
    /// batching factors are observable per stage.
    pub fn charge_one_sided_batch(&self, bytes: u64, target: usize, scalar_ops: u64) {
        if target == self.rank {
            self.stats.record_local_batch(bytes, scalar_ops);
            self.advance(self.model.local_access(bytes));
        } else {
            self.stats.record_one_sided_batch(bytes, scalar_ops);
            self.advance(self.model.one_sided(bytes));
        }
    }

    /// Charge a one-sided RPC whose population scales with the vocabulary
    /// (distributed-hashmap term registration) rather than the corpus.
    pub fn charge_one_sided_vocab(&self, bytes: u64, target: usize) {
        if target == self.rank {
            self.stats.record_local(bytes);
            self.advance(self.model.local_access(bytes));
        } else {
            self.stats.record_one_sided(bytes);
            self.advance(self.model.one_sided_vocab(bytes));
        }
    }

    /// Charge a remote atomic read-modify-write against `target`.
    pub fn charge_remote_atomic(&self, target: usize) {
        if target != self.rank {
            self.stats.record_remote_atomic();
            self.advance(self.model.remote_atomic());
        } else {
            self.stats.record_local(8);
            self.advance(self.model.local_access(8));
        }
    }

    /// Is span tracing enabled for this run?
    pub fn tracing(&self) -> bool {
        self.trace.enabled()
    }

    /// Record a span-begin at the current virtual time. A no-op unless
    /// the runtime enabled tracing; never touches the clock.
    #[inline]
    pub fn trace_begin(&self, cat: &'static str, name: &'static str) {
        self.trace.record(cat, name, Phase::Begin, self.now());
    }

    /// Record a span-end at the current virtual time.
    #[inline]
    pub fn trace_end(&self, cat: &'static str, name: &'static str) {
        self.trace.record(cat, name, Phase::End, self.now());
    }

    /// Record a point event at the current virtual time.
    #[inline]
    pub fn trace_instant(&self, cat: &'static str, name: &'static str) {
        self.trace.record(cat, name, Phase::Instant, self.now());
    }

    /// Drain this rank's recorded events (used by the runtime at the end
    /// of a run).
    pub(crate) fn take_trace(&self) -> RankTrace {
        self.trace.take(self.rank)
    }

    /// Run `f` attributing its virtual-time delta to `component` and its
    /// charged communication to the component's per-stage counters. The
    /// stage's host wall time is measured as well (observational only),
    /// and when tracing is on the stage is bracketed by a span.
    pub fn component<R>(&self, component: Component, f: impl FnOnce() -> R) -> R {
        let start = self.now();
        let wall_start = Instant::now();
        let prev = self.stats.set_stage(component);
        self.trace
            .record("stage", component.label(), Phase::Begin, start);
        let out = f();
        self.trace
            .record("stage", component.label(), Phase::End, self.now());
        self.stats.set_stage(prev);
        self.timers.accrue(component, self.now() - start);
        self.timers
            .accrue_wall(component, wall_start.elapsed().as_secs_f64());
        out
    }

    // ---------------------------------------------------------------
    // Collectives. MPI semantics: every rank calls each collective, in
    // the same order, with compatible types.
    // ---------------------------------------------------------------

    /// Bookkeeping at collective entry: count the payload, open the trace
    /// span, and return the entry clock for wait attribution.
    #[inline]
    fn enter_collective(&self, name: &'static str, bytes: u64) -> f64 {
        self.stats.record_collective(bytes);
        let entry = self.now();
        self.trace.record("collective", name, Phase::Begin, entry);
        entry
    }

    /// Bookkeeping at collective exit: the gap between entering the
    /// rendezvous and departing it — peer skew plus the modeled transfer
    /// cost — is this rank's wait, attributed to the active pipeline
    /// stage. Only reads and sets the clock the rendezvous already
    /// computed, so tracing cannot perturb virtual time.
    #[inline]
    fn leave_collective(&self, name: &'static str, entry: f64, departed: f64) {
        self.timers
            .accrue_wait(self.stats.stage(), departed - entry);
        self.clock.set(departed);
        self.trace.record("collective", name, Phase::End, departed);
    }

    /// Synchronize all ranks; clocks advance to the latest participant plus
    /// the modeled barrier cost.
    pub fn barrier(&self) {
        let p = self.nprocs;
        let cost = self.model.barrier(p);
        let entry = self.enter_collective("barrier", 0);
        let (_r, clock) =
            self.shared
                .rendezvous
                .round(self.rank, (), entry, move |_vals: Vec<()>, mx| {
                    ((), mx + cost)
                });
        self.leave_collective("barrier", entry, clock);
    }

    /// Broadcast from `root`. The root passes `Some(value)`, everyone else
    /// `None`. `bytes` is the payload size used for cost accounting.
    pub fn broadcast<T>(&self, root: usize, value: Option<T>, bytes: u64) -> T
    where
        T: Clone + Send + Sync + 'static,
    {
        assert!(root < self.nprocs, "broadcast root out of range");
        assert_eq!(
            value.is_some(),
            self.rank == root,
            "exactly the root must supply the broadcast value"
        );
        let cost = self.model.broadcast(self.nprocs, bytes);
        let entry = self.enter_collective("broadcast", bytes);
        let (res, clock) = self.shared.rendezvous.round(
            self.rank,
            value,
            entry,
            move |mut vals: Vec<Option<T>>, mx| {
                let v = vals[root].take().expect("root deposited a value");
                (v, mx + cost)
            },
        );
        self.leave_collective("broadcast", entry, clock);
        (*res).clone()
    }

    /// Element-wise allreduce over `f64` vectors. All ranks must pass
    /// vectors of identical length. Combining is done in rank order, so the
    /// floating-point result is deterministic.
    pub fn allreduce_f64(&self, value: Vec<f64>, op: ReduceOp) -> Vec<f64> {
        let bytes = (value.len() * 8) as u64;
        let cost = self.model.allreduce(self.nprocs, bytes);
        // Combining arithmetic, charged unscaled: the transported payload
        // (already scaled) is what grows with the nominal workload.
        let flops = value.len() as u64 * (self.nprocs.max(1) as u64 - 1);
        self.charge_fixed(WorkKind::Flops, flops);
        let entry = self.enter_collective("allreduce", bytes);
        let (res, clock) = self.shared.rendezvous.round(
            self.rank,
            value,
            entry,
            move |vals: Vec<Vec<f64>>, mx| {
                let mut it = vals.into_iter();
                let mut acc = it.next().expect("at least one rank");
                for v in it {
                    assert_eq!(v.len(), acc.len(), "allreduce length mismatch");
                    for (a, b) in acc.iter_mut().zip(v) {
                        *a = match op {
                            ReduceOp::Sum => *a + b,
                            ReduceOp::Min => a.min(b),
                            ReduceOp::Max => a.max(b),
                        };
                    }
                }
                (acc, mx + cost)
            },
        );
        self.leave_collective("allreduce", entry, clock);
        (*res).clone()
    }

    /// Element-wise allreduce over `u64` vectors.
    pub fn allreduce_u64(&self, value: Vec<u64>, op: ReduceOp) -> Vec<u64> {
        let bytes = (value.len() * 8) as u64;
        let cost = self.model.allreduce(self.nprocs, bytes);
        let flops = value.len() as u64 * (self.nprocs.max(1) as u64 - 1);
        self.charge_fixed(WorkKind::Flops, flops);
        let entry = self.enter_collective("allreduce", bytes);
        let (res, clock) = self.shared.rendezvous.round(
            self.rank,
            value,
            entry,
            move |vals: Vec<Vec<u64>>, mx| {
                let mut it = vals.into_iter();
                let mut acc = it.next().expect("at least one rank");
                for v in it {
                    assert_eq!(v.len(), acc.len(), "allreduce length mismatch");
                    for (a, b) in acc.iter_mut().zip(v) {
                        *a = match op {
                            ReduceOp::Sum => a.wrapping_add(b),
                            ReduceOp::Min => (*a).min(b),
                            ReduceOp::Max => (*a).max(b),
                        };
                    }
                }
                (acc, mx + cost)
            },
        );
        self.leave_collective("allreduce", entry, clock);
        (*res).clone()
    }

    /// Scalar allreduce conveniences.
    pub fn allreduce_scalar_f64(&self, value: f64, op: ReduceOp) -> f64 {
        self.allreduce_f64(vec![value], op)[0]
    }

    pub fn allreduce_scalar_u64(&self, value: u64, op: ReduceOp) -> u64 {
        self.allreduce_u64(vec![value], op)[0]
    }

    /// Allgather: every rank contributes `value`, every rank receives the
    /// per-rank values in rank order.
    pub fn allgather<T>(&self, value: T, bytes_per_rank: u64) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        let cost = self.model.allgather(self.nprocs, bytes_per_rank);
        let entry = self.enter_collective("allgather", bytes_per_rank);
        let (res, clock) =
            self.shared
                .rendezvous
                .round(self.rank, value, entry, move |vals: Vec<T>, mx| {
                    (vals, mx + cost)
                });
        self.leave_collective("allgather", entry, clock);
        (*res).clone()
    }

    /// Gather to `root`: returns `Some(values in rank order)` at the root,
    /// `None` elsewhere. (All ranks pay the synchronization; only the root
    /// receives data — matching MPI_Gather.)
    pub fn gather<T>(&self, root: usize, value: T, bytes_per_rank: u64) -> Option<Vec<T>>
    where
        T: Clone + Send + Sync + 'static,
    {
        assert!(root < self.nprocs, "gather root out of range");
        let cost = self.model.gather(self.nprocs, bytes_per_rank);
        let entry = self.enter_collective("gather", bytes_per_rank);
        let (res, clock) =
            self.shared
                .rendezvous
                .round(self.rank, value, entry, move |vals: Vec<T>, mx| {
                    (vals, mx + cost)
                });
        self.leave_collective("gather", entry, clock);
        if self.rank == root {
            Some((*res).clone())
        } else {
            None
        }
    }

    /// Gather to `root` for payloads proportional to corpus size
    /// (per-document data such as projected coordinates).
    pub fn gather_data<T>(&self, root: usize, value: T, bytes_per_rank: u64) -> Option<Vec<T>>
    where
        T: Clone + Send + Sync + 'static,
    {
        assert!(root < self.nprocs, "gather root out of range");
        let cost = self.model.gather_data(self.nprocs, bytes_per_rank);
        let entry = self.enter_collective("gather_data", bytes_per_rank);
        let (res, clock) =
            self.shared
                .rendezvous
                .round(self.rank, value, entry, move |vals: Vec<T>, mx| {
                    (vals, mx + cost)
                });
        self.leave_collective("gather_data", entry, clock);
        if self.rank == root {
            Some((*res).clone())
        } else {
            None
        }
    }

    /// Exclusive prefix sum over a `u64` contribution: rank `r` receives
    /// the sum of contributions of ranks `0..r`, plus the global total.
    pub fn exscan_u64(&self, value: u64) -> (u64, u64) {
        let all = self.allgather(value, 8);
        let before: u64 = all[..self.rank].iter().sum();
        let total: u64 = all.iter().sum();
        (before, total)
    }

    /// Inclusive prefix sum: rank `r` receives the sum over ranks `0..=r`.
    pub fn scan_u64(&self, value: u64) -> u64 {
        let (before, _) = self.exscan_u64(value);
        before + value
    }

    /// All-to-all personalized exchange: `send[j]` goes to rank `j`;
    /// returns what every rank sent to this one (indexed by source rank).
    /// All ranks must pass vectors of length `nprocs`.
    pub fn alltoall<T>(&self, send: Vec<T>, bytes_per_pair: u64) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        assert_eq!(send.len(), self.nprocs, "alltoall needs one item per rank");
        let cost = self.model.alltoall(self.nprocs, bytes_per_pair);
        let entry = self.enter_collective("alltoall", bytes_per_pair * self.nprocs as u64);
        let me = self.rank;
        let (res, clock) =
            self.shared
                .rendezvous
                .round(self.rank, send, entry, move |mats: Vec<Vec<T>>, mx| {
                    (mats, mx + cost)
                });
        self.leave_collective("alltoall", entry, clock);
        // Transpose: my inbox is column `me`.
        res.iter().map(|row| row[me].clone()).collect()
    }

    /// Reduce-scatter over `f64` vectors: the element-wise sum of all
    /// ranks' vectors is computed and rank `r` receives the `r`-th
    /// equal-length block. All ranks must pass vectors of identical
    /// length divisible by `nprocs`.
    pub fn reduce_scatter_f64(&self, value: Vec<f64>) -> Vec<f64> {
        assert_eq!(
            value.len() % self.nprocs,
            0,
            "reduce_scatter length must divide evenly"
        );
        let total_bytes = (value.len() * 8) as u64;
        let cost = self.model.reduce_scatter(self.nprocs, total_bytes);
        let flops = value.len() as u64 * (self.nprocs.max(1) as u64 - 1);
        self.charge_fixed(WorkKind::Flops, flops);
        let entry = self.enter_collective("reduce_scatter", total_bytes);
        let p = self.nprocs;
        let me = self.rank;
        let (res, clock) = self.shared.rendezvous.round(
            self.rank,
            value,
            entry,
            move |vals: Vec<Vec<f64>>, mx| {
                let mut it = vals.into_iter();
                let mut acc = it.next().expect("at least one rank");
                for v in it {
                    for (a, b) in acc.iter_mut().zip(v) {
                        *a += b;
                    }
                }
                // Pre-split into per-rank blocks so each rank clones only
                // its own share.
                let chunk = acc.len() / p;
                let blocks: Vec<Vec<f64>> = acc.chunks(chunk.max(1)).map(|c| c.to_vec()).collect();
                (blocks, mx + cost)
            },
        );
        self.leave_collective("reduce_scatter", entry, clock);
        res[me].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn charge_advances_clock() {
        let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
        let res = rt.run(1, |ctx| {
            let before = ctx.now();
            ctx.charge(WorkKind::ScanBytes, 1_500_000);
            ctx.now() - before
        });
        assert!((res.results[0] - 1.0).abs() < 1e-9); // 1.5e6 bytes at 1.5e6 B/s
    }

    #[test]
    fn pressure_multiplies_charges() {
        let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
        let res = rt.run(1, |ctx| {
            ctx.set_working_set(64 << 30); // far beyond 4 GB/proc
            let before = ctx.now();
            ctx.charge(WorkKind::Flops, 1_200_000);
            ctx.now() - before
        });
        let unpressured = 1_200_000.0 / 1.2e8;
        assert!(res.results[0] > 5.0 * unpressured);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let rt = Runtime::new(Arc::new(CostModel::zero()));
        let res = rt.run(4, |ctx| {
            ctx.allreduce_f64(vec![ctx.rank() as f64, 1.0], ReduceOp::Sum)
        });
        for v in res.results {
            assert_eq!(v, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn allreduce_min_max() {
        let rt = Runtime::new(Arc::new(CostModel::zero()));
        let res = rt.run(5, |ctx| {
            let mn = ctx.allreduce_scalar_u64(ctx.rank() as u64 + 10, ReduceOp::Min);
            let mx = ctx.allreduce_scalar_u64(ctx.rank() as u64 + 10, ReduceOp::Max);
            (mn, mx)
        });
        for (mn, mx) in res.results {
            assert_eq!((mn, mx), (10, 14));
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let rt = Runtime::new(Arc::new(CostModel::zero()));
        let res = rt.run(4, |ctx| {
            let v = if ctx.rank() == 2 {
                Some("hello".to_string())
            } else {
                None
            };
            ctx.broadcast(2, v, 5)
        });
        for v in res.results {
            assert_eq!(v, "hello");
        }
    }

    #[test]
    fn allgather_in_rank_order() {
        let rt = Runtime::new(Arc::new(CostModel::zero()));
        let res = rt.run(6, |ctx| ctx.allgather(ctx.rank() * 2, 8));
        for v in res.results {
            assert_eq!(v, vec![0, 2, 4, 6, 8, 10]);
        }
    }

    #[test]
    fn gather_only_at_root() {
        let rt = Runtime::new(Arc::new(CostModel::zero()));
        let res = rt.run(3, |ctx| ctx.gather(1, ctx.rank() as u32, 4));
        assert_eq!(res.results[0], None);
        assert_eq!(res.results[1], Some(vec![0, 1, 2]));
        assert_eq!(res.results[2], None);
    }

    #[test]
    fn exscan_prefix_sums() {
        let rt = Runtime::new(Arc::new(CostModel::zero()));
        let res = rt.run(4, |ctx| ctx.exscan_u64((ctx.rank() as u64 + 1) * 10));
        // contributions: 10, 20, 30, 40 → prefixes 0, 10, 30, 60; total 100
        assert_eq!(res.results, vec![(0, 100), (10, 100), (30, 100), (60, 100)]);
    }

    #[test]
    fn alltoall_transposes() {
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            // send[j] = rank * 10 + j
            let send: Vec<usize> = (0..4).map(|j| ctx.rank() * 10 + j).collect();
            ctx.alltoall(send, 8)
        });
        for (rank, inbox) in res.results.iter().enumerate() {
            let expect: Vec<usize> = (0..4).map(|src| src * 10 + rank).collect();
            assert_eq!(inbox, &expect);
        }
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_block() {
        let rt = Runtime::for_testing();
        let res = rt.run(4, |ctx| {
            // Each rank contributes [r, r, ..., r] of length 8.
            let v = vec![ctx.rank() as f64; 8];
            ctx.reduce_scatter_f64(v)
        });
        // Sum over ranks = 0+1+2+3 = 6 in every element; block size 2.
        for block in res.results {
            assert_eq!(block, vec![6.0, 6.0]);
        }
    }

    #[test]
    fn inclusive_scan_matches_prefix() {
        let rt = Runtime::for_testing();
        let res = rt.run(5, |ctx| ctx.scan_u64(ctx.rank() as u64 + 1));
        assert_eq!(res.results, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn barrier_syncs_clocks() {
        let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
        let res = rt.run(4, |ctx| {
            // Unequal work before the barrier.
            ctx.charge(WorkKind::Flops, (ctx.rank() as u64 + 1) * 12_000_000);
            ctx.barrier();
            ctx.now()
        });
        let clocks = res.results;
        for w in &clocks {
            assert!(
                (w - clocks[0]).abs() < 1e-12,
                "clocks must agree after barrier"
            );
        }
        // And the agreed clock reflects the slowest rank (4 * 12e6 flops at 1.2e8/s = 0.4 s).
        assert!(clocks[0] >= 0.4);
    }

    #[test]
    fn component_timer_attribution() {
        let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
        let res = rt.run(2, |ctx| {
            ctx.component(Component::Scan, || {
                ctx.charge(WorkKind::ScanBytes, 3_000_000);
            });
            ctx.component(Component::DocVec, || {
                ctx.charge(WorkKind::Flops, 12_000_000);
            });
            ctx.timers.snapshot()
        });
        for snap in res.results {
            assert!((snap.get(Component::Scan) - 2.0).abs() < 1e-9);
            assert!((snap.get(Component::DocVec) - 0.1).abs() < 1e-9);
            assert_eq!(snap.get(Component::Index), 0.0);
        }
    }
}
