//! Stress tests for the SPMD runtime: long mixed-collective sequences,
//! gate/queue interleavings, and clock-accounting invariants under heavy
//! thread contention. These are the races unit tests are too polite to
//! provoke.

use spmd::{Component, CostModel, Ctx, ReduceOp, Runtime, VirtualGate, WorkKind};
use std::sync::Arc;

/// A deterministic mini-RNG (xorshift) usable inside ranks without
/// pulling rand into the runtime's dev-deps.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn long_mixed_collective_sequence_agrees_across_ranks() {
    let rt = Runtime::for_testing();
    for p in [2usize, 5, 9] {
        let res = rt.run(p, |ctx: &Ctx| {
            // Every rank derives the SAME op sequence from a shared seed,
            // as SPMD requires; contributions differ per rank.
            let mut seq = 0xD00D ^ (p as u64);
            let mut acc: u64 = ctx.rank() as u64;
            let mut trace: Vec<u64> = Vec::new();
            for step in 0..300 {
                match xorshift(&mut seq) % 5 {
                    0 => {
                        acc = ctx.allreduce_scalar_u64(acc + step, ReduceOp::Sum);
                        trace.push(acc);
                    }
                    1 => {
                        let v = ctx.allgather(acc ^ step, 8);
                        acc = v.iter().fold(0u64, |a, b| a.wrapping_add(*b));
                        trace.push(acc);
                    }
                    2 => {
                        let root = (step as usize) % ctx.nprocs();
                        let payload = if ctx.rank() == root {
                            Some(acc.wrapping_mul(31))
                        } else {
                            None
                        };
                        acc = ctx.broadcast(root, payload, 8);
                        trace.push(acc);
                    }
                    3 => {
                        ctx.barrier();
                        trace.push(u64::MAX);
                    }
                    _ => {
                        let (before, total) = ctx.exscan_u64(acc % 1000);
                        acc = acc.wrapping_add(before ^ total);
                        // before differs per rank; fold back to a shared
                        // value so the sequence stays comparable.
                        acc = ctx.allreduce_scalar_u64(acc, ReduceOp::Max);
                        trace.push(acc);
                    }
                }
            }
            trace
        });
        // Shared values must agree bit-for-bit on every rank.
        for r in 1..p {
            assert_eq!(res.results[r], res.results[0], "rank {r} diverged at P={p}");
        }
    }
}

#[test]
fn clocks_agree_after_final_barrier_under_random_work() {
    let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
    let res = rt.run(7, |ctx: &Ctx| {
        let mut seed = 42 + ctx.rank() as u64;
        for _ in 0..100 {
            ctx.charge(WorkKind::Flops, xorshift(&mut seed) % 1_000_000);
            if seed.is_multiple_of(3) {
                // Collective points must line up across ranks: derive the
                // decision from a shared source instead. (Here: everyone
                // reduces every 3rd step of a shared counter.)
            }
        }
        ctx.barrier();
        ctx.now()
    });
    for c in &res.clocks {
        assert_eq!(*c, res.clocks[0]);
    }
}

#[test]
fn gate_total_order_holds_under_contention() {
    use parking_lot::Mutex;
    let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
    let log: Arc<Mutex<Vec<(f64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let log2 = log.clone();
    rt.run(8, move |ctx: &Ctx| {
        let gate = VirtualGate::create(ctx);
        let mut seed = 7 + ctx.rank() as u64 * 13;
        for _ in 0..40 {
            gate.pace(ctx);
            log2.lock().push((ctx.now(), ctx.rank()));
            // Random-length work between claims.
            ctx.charge(WorkKind::Flops, 100_000 + xorshift(&mut seed) % 5_000_000);
        }
        gate.leave(ctx);
        ctx.barrier();
    });
    let entries = log.lock();
    assert_eq!(entries.len(), 8 * 40);
    for w in entries.windows(2) {
        assert!(
            (w[0].0, w[0].1) <= (w[1].0, w[1].1),
            "claim order violated: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn timers_cover_clock_exactly() {
    // Component brackets around every charge must account for all time.
    let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
    let res = rt.run(4, |ctx: &Ctx| {
        let mut seed = 9 + ctx.rank() as u64;
        for i in 0..50 {
            let comp = match i % 3 {
                0 => Component::Scan,
                1 => Component::Index,
                _ => Component::ClusProj,
            };
            ctx.component(comp, || {
                ctx.charge(WorkKind::ScanBytes, xorshift(&mut seed) % 100_000);
                if i % 10 == 0 {
                    ctx.barrier();
                }
            });
        }
        (ctx.now(), ctx.timers.snapshot().total())
    });
    for (clock, timed) in res.results {
        assert!(
            (clock - timed).abs() < 1e-9,
            "clock {clock} vs timed {timed}"
        );
    }
}

#[test]
fn repeated_runtimes_do_not_interfere() {
    // Many short back-to-back runs (fresh rendezvous each) — shakes out
    // state leakage between Runtime::run invocations.
    let rt = Runtime::for_testing();
    for round in 0..30 {
        let res = rt.run(1 + (round % 4), |ctx: &Ctx| {
            ctx.allreduce_scalar_u64(1, ReduceOp::Sum)
        });
        for v in &res.results {
            assert_eq!(*v, res.results.len() as u64);
        }
    }
}
