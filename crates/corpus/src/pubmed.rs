//! PubMed-like corpus generation (MEDLINE tagged records).
//!
//! PubMed abstracts are *"consistent in both size and language type"*
//! (§4.1): titles of 6–14 terms, abstracts clustered tightly around ~180
//! terms (a clamped normal), a handful of MeSH-like subject headings drawn
//! from the document's theme, and one author tag. Records use the MEDLINE
//! tagged format parsed by [`crate::record`].

use crate::record::{FormatKind, Source, SourceSet};
use crate::themes::ThemeModel;
use crate::vocab::Vocabulary;
use crate::CorpusSpec;
use rand::Rng;
use rayon::prelude::*;

/// Mean abstract length in terms.
const ABSTRACT_MEAN: f64 = 180.0;
/// Standard deviation of abstract length.
const ABSTRACT_SD: f64 = 35.0;

/// Sample from a clamped normal via Box–Muller (avoids extra deps).
fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + sd * z
}

/// Append one MEDLINE record to `out`.
fn write_record<R: Rng + ?Sized>(
    out: &mut String,
    rng: &mut R,
    pmid: u64,
    vocab: &Vocabulary,
    themes: &ThemeModel,
) {
    let (major, minor) = themes.pick_doc_themes(rng);
    out.push_str("PMID- ");
    out.push_str(&pmid.to_string());
    out.push('\n');

    out.push_str("TI  - ");
    let title_len = rng.random_range(6..15);
    for i in 0..title_len {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(vocab.word(themes.sample_token(rng, major, minor)));
    }
    out.push('\n');

    out.push_str("AB  - ");
    let ab_len = normal(rng, ABSTRACT_MEAN, ABSTRACT_SD).clamp(60.0, 400.0) as usize;
    for i in 0..ab_len {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(vocab.word(themes.sample_token(rng, major, minor)));
    }
    out.push('\n');

    out.push_str("MH  - ");
    let n_mesh = rng.random_range(3..8);
    for i in 0..n_mesh {
        if i > 0 {
            out.push_str("; ");
        }
        match major {
            // MeSH headings come from the head of the document's theme.
            Some(m) => {
                let theme = &themes.themes[m];
                let idx = rng.random_range(0..theme.len().min(40));
                out.push_str(vocab.word(theme[idx]));
            }
            // Stray documents get generic headings.
            None => out.push_str(vocab.word(themes.sample_token(rng, None, None))),
        }
    }
    out.push('\n');

    out.push_str("AU  - ");
    out.push_str(vocab.word(rng.random_range(0..vocab.len().min(2000))));
    out.push_str("\n\n");
}

/// Generate a PubMed-flavoured [`SourceSet`] per `spec`.
pub fn generate(spec: &CorpusSpec, vocab: &Vocabulary, themes: &ThemeModel) -> SourceSet {
    let n_sources = spec.n_sources();
    let sources: Vec<Source> = (0..n_sources)
        .into_par_iter()
        .map(|si| {
            let mut rng = spec.rng_for_source(si);
            let quota = spec.source_quota();
            let mut data = String::with_capacity(quota as usize + 4096);
            let mut pmid = 1_000_000 + (si as u64) * 1_000_000;
            let slack = (quota / 4).max(1024) as usize;
            while (data.len() as u64) < quota {
                let mut rec = String::new();
                write_record(&mut rec, &mut rng, pmid, vocab, themes);
                if !data.is_empty() && data.len() + rec.len() > quota as usize + slack {
                    break;
                }
                data.push_str(&rec);
                pmid += 1;
            }
            Source {
                name: format!("medline{si:04}.txt"),
                data: data.into_bytes(),
                format: FormatKind::Medline,
            }
        })
        .collect();
    SourceSet { sources }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Flavour;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_set() -> SourceSet {
        CorpusSpec {
            source_bytes: 32 * 1024,
            ..CorpusSpec::pubmed(64 * 1024, 5)
        }
        .generate()
    }

    #[test]
    fn records_parse_back() {
        let set = small_set();
        let mut n = 0;
        for s in &set.sources {
            for r in s.record_ranges() {
                let doc = s.parse_record(r);
                let names: Vec<&str> = doc.fields.iter().map(|(n, _)| *n).collect();
                assert!(names.contains(&"pmid"));
                assert!(names.contains(&"title"));
                assert!(names.contains(&"abstract"));
                assert!(names.contains(&"mesh"));
                n += 1;
            }
        }
        assert!(n > 20, "expected a few dozen records, got {n}");
    }

    #[test]
    fn abstract_lengths_are_consistent() {
        // The paper stresses PubMed's size consistency; check the
        // coefficient of variation is modest.
        let set = small_set();
        let mut lens = Vec::new();
        for s in &set.sources {
            for r in s.record_ranges() {
                let doc = s.parse_record(r);
                if let Some((_, ab)) = doc.fields.iter().find(|(n, _)| *n == "abstract") {
                    lens.push(ab.split_whitespace().count() as f64);
                }
            }
        }
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        let var = lens.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / lens.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv < 0.35, "abstract length CV too high: {cv}");
        assert!((120.0..240.0).contains(&mean), "mean length {mean}");
    }

    #[test]
    fn normal_sampler_reasonable() {
        let mut rng = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..5000).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn pmids_unique_across_sources() {
        let set = small_set();
        let mut seen = std::collections::HashSet::new();
        for s in &set.sources {
            for r in s.record_ranges() {
                let doc = s.parse_record(r);
                let pmid = doc
                    .fields
                    .iter()
                    .find(|(n, _)| *n == "pmid")
                    .map(|(_, v)| v.to_string())
                    .unwrap();
                assert!(seen.insert(pmid.clone()), "duplicate pmid {pmid}");
            }
        }
    }

    #[test]
    fn mesh_terms_come_from_major_theme_head() {
        let vocab = Vocabulary::synthesize(Flavour::Medical, 8000, 1);
        let themes = ThemeModel::build(&vocab, 6, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = String::new();
        write_record(&mut out, &mut rng, 1, &vocab, &themes);
        // For themed documents, mesh words must belong to some theme's
        // head region; generate several records so at least one is themed.
        let mut out_many = out;
        for pmid in 2..20 {
            write_record(&mut out_many, &mut rng, pmid, &vocab, &themes);
        }
        let all_theme_heads: std::collections::HashSet<&str> = themes
            .themes
            .iter()
            .flat_map(|t| t.iter().take(40).map(|&w| vocab.word(w)))
            .collect();
        let mut themed_records = 0;
        for mesh_line in out_many.lines().filter(|l| l.starts_with("MH  -")) {
            let all_head = mesh_line[6..]
                .split("; ")
                .all(|t| all_theme_heads.contains(t.trim()));
            if all_head {
                themed_records += 1;
            }
        }
        assert!(themed_records >= 10, "only {themed_records} themed records");
    }
}
