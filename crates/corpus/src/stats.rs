//! Corpus statistics, for tests, calibration, and experiment reporting.

use crate::record::SourceSet;
use std::collections::HashSet;

/// Summary statistics of a generated corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    pub bytes: u64,
    pub records: usize,
    pub tokens: u64,
    pub distinct_terms: usize,
    pub mean_record_tokens: f64,
    pub max_record_tokens: usize,
}

/// Simple alphanumeric tokenizer used only for measurement (the engine has
/// its own configurable tokenizer).
fn rough_tokens(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| t.len() >= 2)
}

impl CorpusStats {
    /// Measure a source set.
    pub fn measure(set: &SourceSet) -> Self {
        let mut records = 0usize;
        let mut tokens = 0u64;
        let mut distinct: HashSet<String> = HashSet::new();
        let mut max_record = 0usize;
        for s in &set.sources {
            for r in s.record_ranges() {
                records += 1;
                let doc = s.parse_record(r);
                let mut rec_tokens = 0usize;
                for (_, text) in &doc.fields {
                    for t in rough_tokens(text) {
                        rec_tokens += 1;
                        if !distinct.contains(t) {
                            distinct.insert(t.to_ascii_lowercase());
                        }
                    }
                }
                tokens += rec_tokens as u64;
                max_record = max_record.max(rec_tokens);
            }
        }
        CorpusStats {
            bytes: set.total_bytes(),
            records,
            tokens,
            distinct_terms: distinct.len(),
            mean_record_tokens: if records > 0 {
                tokens as f64 / records as f64
            } else {
                0.0
            },
            max_record_tokens: max_record,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusSpec;

    #[test]
    fn pubmed_stats_sane() {
        let set = CorpusSpec::pubmed(96 * 1024, 21).generate();
        let st = CorpusStats::measure(&set);
        assert!(st.records > 30);
        assert!(st.tokens > 5_000);
        assert!(st.distinct_terms > 500);
        assert!((100.0..260.0).contains(&st.mean_record_tokens));
    }

    #[test]
    fn trec_more_skewed_than_pubmed() {
        let pm = CorpusStats::measure(&CorpusSpec::pubmed(128 * 1024, 3).generate());
        let tr = CorpusStats::measure(&CorpusSpec::trec(128 * 1024, 3).generate());
        let pm_skew = pm.max_record_tokens as f64 / pm.mean_record_tokens;
        let tr_skew = tr.max_record_tokens as f64 / tr.mean_record_tokens;
        assert!(
            tr_skew > 2.0 * pm_skew,
            "TREC skew {tr_skew} should dwarf PubMed skew {pm_skew}"
        );
    }

    #[test]
    fn vocabulary_grows_sublinearly() {
        // Heaps' law: doubling the corpus should much-less-than-double the
        // distinct term count (closed vocab makes this even stronger).
        let small = CorpusStats::measure(&CorpusSpec::pubmed(64 * 1024, 9).generate());
        let large = CorpusStats::measure(&CorpusSpec::pubmed(256 * 1024, 9).generate());
        let growth = large.distinct_terms as f64 / small.distinct_terms as f64;
        let data_growth = large.bytes as f64 / small.bytes as f64;
        assert!(
            growth < data_growth * 0.75,
            "vocab growth {growth} vs data {data_growth}"
        );
    }
}
