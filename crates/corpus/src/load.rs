//! Loading real corpora from disk.
//!
//! The generators make synthetic stand-ins; this module ingests *actual*
//! files — a directory of MEDLINE exports or TREC-format bundles — into a
//! [`SourceSet`] the engine can process. Format is detected per file by
//! content sniffing (extension-independent, as crawl bundles rarely have
//! meaningful extensions).

use crate::record::{FormatKind, Source, SourceSet};
use std::io;
use std::path::Path;

/// Detect the record format of a file from its leading bytes.
///
/// Returns `None` when the content matches neither format (the loader
/// skips such files rather than mis-parsing them).
pub fn sniff_format(data: &[u8]) -> Option<FormatKind> {
    // Skip leading whitespace.
    let start = data
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .unwrap_or(data.len());
    let head = &data[start..data.len().min(start + 4096)];
    if head.starts_with(b"<DOC>") {
        return Some(FormatKind::TrecWeb);
    }
    if head.starts_with(b"From ") {
        return Some(FormatKind::Message);
    }
    // MEDLINE: begins with a `XXXX- ` tag line such as `PMID- `.
    let is_medline_tag = |line: &[u8]| -> bool {
        line.len() >= 6
            && line[..4]
                .iter()
                .all(|b| b.is_ascii_uppercase() || *b == b' ')
            && (line[4] == b'-' || line[5] == b'-')
    };
    if let Some(first_line) = head.split(|&b| b == b'\n').next() {
        if is_medline_tag(first_line) {
            return Some(FormatKind::Medline);
        }
    }
    None
}

/// Load one file as a [`Source`], sniffing its format.
pub fn load_file(path: &Path) -> io::Result<Option<Source>> {
    let data = std::fs::read(path)?;
    if std::str::from_utf8(&data).is_err() {
        return Ok(None); // binary file; skip
    }
    let Some(format) = sniff_format(&data) else {
        return Ok(None);
    };
    Ok(Some(Source {
        name: path.display().to_string(),
        data,
        format,
    }))
}

/// Load every recognizable file under `dir` (non-recursive sort for
/// stable document numbering; subdirectories are descended into, also in
/// sorted order).
pub fn load_dir(dir: &Path) -> io::Result<SourceSet> {
    let mut sources = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(&d)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if let Some(src) = load_file(&path)? {
                sources.push(src);
            }
        }
    }
    // Deterministic global order regardless of traversal.
    sources.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(SourceSet { sources })
}

/// Write a [`SourceSet`] to a directory, one file per source (the inverse
/// of [`load_dir`]; used to materialize synthetic corpora for external
/// tools and tests).
pub fn write_dir(set: &SourceSet, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for src in &set.sources {
        // Keep only the basename; sources loaded from disk carry paths.
        let base = Path::new(&src.name)
            .file_name()
            .map(|s| s.to_string_lossy().to_string())
            .unwrap_or_else(|| "source.txt".to_string());
        std::fs::write(dir.join(base), &src.data)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusSpec;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("corpus-load-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn sniffs_both_formats() {
        assert_eq!(
            sniff_format(b"PMID- 123\nTI  - hello\n"),
            Some(FormatKind::Medline)
        );
        assert_eq!(
            sniff_format(b"<DOC>\n<DOCNO>GX1</DOCNO>\n"),
            Some(FormatKind::TrecWeb)
        );
        assert_eq!(
            sniff_format(b"\n\n  <DOC>\n<DOCNO>GX1</DOCNO>"),
            Some(FormatKind::TrecWeb)
        );
        assert_eq!(
            sniff_format(b"From analyst1 Mon Jan 5 2004\nSubject: x\n"),
            Some(FormatKind::Message)
        );
        assert_eq!(sniff_format(b"just some plain text"), None);
        assert_eq!(sniff_format(b""), None);
    }

    #[test]
    fn roundtrip_through_disk() {
        let set = CorpusSpec::pubmed(64 * 1024, 42).generate();
        let dir = tmpdir("rt");
        write_dir(&set, &dir).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.sources.len(), set.sources.len());
        assert_eq!(loaded.total_records(), set.total_records());
        assert_eq!(loaded.total_bytes(), set.total_bytes());
        // Every loaded source is format-sniffed correctly.
        assert!(loaded
            .sources
            .iter()
            .all(|s| s.format == FormatKind::Medline));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_directory_loads_both_formats_and_skips_junk() {
        let dir = tmpdir("mixed");
        let pm = CorpusSpec::pubmed(16 * 1024, 1).generate();
        let tr = CorpusSpec::trec(16 * 1024, 2).generate();
        std::fs::write(dir.join("a-medline.txt"), &pm.sources[0].data).unwrap();
        std::fs::write(dir.join("b-trec.txt"), &tr.sources[0].data).unwrap();
        std::fs::write(dir.join("c-junk.txt"), b"not a corpus file at all").unwrap();
        std::fs::write(dir.join("d-binary.bin"), [0u8, 159, 146, 150]).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.sources.len(), 2);
        assert_eq!(loaded.sources[0].format, FormatKind::Medline);
        assert_eq!(loaded.sources[1].format, FormatKind::TrecWeb);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn subdirectories_are_descended() {
        let dir = tmpdir("nested");
        let sub = dir.join("year2004");
        std::fs::create_dir_all(&sub).unwrap();
        let pm = CorpusSpec::pubmed(16 * 1024, 3).generate();
        std::fs::write(sub.join("part1.txt"), &pm.sources[0].data).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.sources.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
