//! # corpus — synthetic stand-ins for the paper's datasets
//!
//! The paper evaluates on subsets of two corpora we cannot redistribute:
//!
//! * **PubMed** — *"15+ million abstracts … Each abstract is defined as
//!   unstructured (or free form) text and is consistent in both size and
//!   language type"* (§4.1). Subsets of 2.75, 6.67 and 16.44 GB.
//! * **TREC GOV2** — *"a collection of web data crawled from web sites in
//!   the .gov domain … 426GB in size and contains 25 million documents"*
//!   (§4.1). Subsets of 1, 4 and 8.21 GB.
//!
//! The engine never sees the *meaning* of the text — only its statistical
//! structure: record/field framing, vocabulary growth (Heaps), term
//! frequency skew (Zipf), term burstiness (what Bookstein topicality
//! detects), latent topical grouping (what clustering recovers), and the
//! document-length distribution (what stresses load balancing). The
//! generators here reproduce exactly those properties:
//!
//! * [`pubmed`] emits MEDLINE-style records (`PMID-`/`TI  -`/`AB  -`/
//!   `MH  -` tags) with near-uniform abstract lengths and a
//!   medical-flavoured vocabulary.
//! * [`trec`] emits `<DOC><DOCNO>…</DOCNO>…</DOC>` framed pages with
//!   HTML-ish markup noise and heavy-tailed (Pareto) body lengths — the
//!   heterogeneity that makes static partitioning imbalanced.
//! * Both draw tokens from a [`themes`] mixture model (latent themes over
//!   a Zipfian background), so downstream clustering and ThemeView find
//!   real structure instead of noise.
//!
//! Corpora are generated deterministically from a seed, in parallel
//! (rayon), and framed into multiple [`Source`]s ("files") that the
//! engine's scanner partitions by size exactly as the paper describes.

pub mod load;
pub mod newswire;
pub mod partition;
pub mod pubmed;
pub mod record;
pub mod stats;
pub mod themes;
pub mod trec;
pub mod vocab;
pub mod zipf;

pub use load::{load_dir, load_file, sniff_format};
pub use partition::{partition_contiguous, partition_lpt};
pub use record::{FormatKind, RawDocument, Source, SourceSet};
pub use stats::CorpusStats;
pub use themes::ThemeModel;
pub use vocab::{Flavour, Vocabulary};
pub use zipf::Zipf;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Specification for generating a synthetic corpus.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Approximate total size to generate, in bytes.
    pub target_bytes: u64,
    /// Which corpus to imitate.
    pub flavour: Flavour,
    /// RNG seed; identical specs generate identical corpora.
    pub seed: u64,
    /// Distinct words in the closed vocabulary.
    pub vocab_size: usize,
    /// Number of latent themes.
    pub n_themes: usize,
    /// Approximate bytes per source "file".
    pub source_bytes: u64,
}

impl CorpusSpec {
    /// Default source-file size: many files per corpus so the byte-based
    /// static partitioner has granularity at every processor count (a
    /// miniature corpus must still look like a directory of files, not
    /// one blob).
    fn default_source_bytes(target_bytes: u64) -> u64 {
        (target_bytes / 256).clamp(4 * 1024, 256 * 1024)
    }

    /// A PubMed-flavoured corpus of roughly `target_bytes`.
    pub fn pubmed(target_bytes: u64, seed: u64) -> Self {
        CorpusSpec {
            target_bytes,
            flavour: Flavour::Medical,
            seed,
            vocab_size: 24_000,
            n_themes: 24,
            source_bytes: Self::default_source_bytes(target_bytes),
        }
    }

    /// A TREC GOV2-flavoured corpus of roughly `target_bytes`.
    pub fn trec(target_bytes: u64, seed: u64) -> Self {
        CorpusSpec {
            target_bytes,
            flavour: Flavour::Web,
            seed,
            vocab_size: 32_000,
            n_themes: 16,
            source_bytes: Self::default_source_bytes(target_bytes),
        }
    }

    /// A newswire / message-traffic corpus of roughly `target_bytes`.
    pub fn newswire(target_bytes: u64, seed: u64) -> Self {
        CorpusSpec {
            target_bytes,
            flavour: Flavour::Newswire,
            seed,
            vocab_size: 20_000,
            n_themes: 20,
            source_bytes: Self::default_source_bytes(target_bytes),
        }
    }

    /// Generate the corpus.
    pub fn generate(&self) -> SourceSet {
        let vocab = Vocabulary::synthesize(self.flavour, self.vocab_size, self.seed ^ 0x5eed);
        let themes = ThemeModel::build(&vocab, self.n_themes, self.seed ^ 0x7e0e);
        match self.flavour {
            Flavour::Medical => pubmed::generate(self, &vocab, &themes),
            Flavour::Web => trec::generate(self, &vocab, &themes),
            Flavour::Newswire => newswire::generate(self, &vocab, &themes),
        }
    }

    pub(crate) fn rng_for_source(&self, source_idx: usize) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(source_idx as u64),
        )
    }

    /// Number of sources needed to reach the byte target.
    pub(crate) fn n_sources(&self) -> usize {
        self.target_bytes.div_ceil(self.source_bytes).max(1) as usize
    }

    /// Byte quota for each individual source, so the total lands on the
    /// target even when it is smaller than `source_bytes`.
    pub(crate) fn source_quota(&self) -> u64 {
        self.target_bytes.div_ceil(self.n_sources() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec::pubmed(64 * 1024, 42);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.sources.len(), b.sources.len());
        for (x, y) in a.sources.iter().zip(&b.sources) {
            assert_eq!(x.data, y.data);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CorpusSpec::pubmed(32 * 1024, 1).generate();
        let b = CorpusSpec::pubmed(32 * 1024, 2).generate();
        assert_ne!(a.sources[0].data, b.sources[0].data);
    }

    #[test]
    fn size_near_target() {
        for target in [64 * 1024u64, 300 * 1024] {
            let total: u64 = CorpusSpec::trec(target, 7)
                .generate()
                .sources
                .iter()
                .map(|s| s.data.len() as u64)
                .sum();
            let ratio = total as f64 / target as f64;
            assert!(
                (0.7..1.4).contains(&ratio),
                "total {total} vs target {target}"
            );
        }
    }

    #[test]
    fn sources_have_expected_format() {
        let pm = CorpusSpec::pubmed(32 * 1024, 3).generate();
        assert!(pm.sources.iter().all(|s| s.format == FormatKind::Medline));
        let tr = CorpusSpec::trec(32 * 1024, 3).generate();
        assert!(tr.sources.iter().all(|s| s.format == FormatKind::TrecWeb));
    }
}
