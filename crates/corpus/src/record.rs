//! Source files, record framing, and field parsing.
//!
//! The paper's data model (§2.1): *"A source is a collection of 'files' or
//! 'documents' or 'records'. Each record is set of fields, and each field
//! is a collection of terms."* A [`SourceSet`] is the corpus handed to the
//! engine; the scanner frames each source into records and parses each
//! record into named fields using the functions here.

use std::ops::Range;

/// On-disk record format of a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// MEDLINE tagged format (PubMed-like): `TAG - value` lines, records
    /// separated by blank lines.
    Medline,
    /// TREC web format (GOV2-like): `<DOC> … </DOC>` framing with DOCNO
    /// and DOCHDR headers followed by HTML content.
    TrecWeb,
    /// Message traffic (mbox-like): records begin with a `From ` line,
    /// followed by a `Subject:` header and the body.
    Message,
}

/// One source "file".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Source {
    pub name: String,
    pub data: Vec<u8>,
    pub format: FormatKind,
}

/// A corpus: an ordered collection of sources.
#[derive(Debug, Clone, Default)]
pub struct SourceSet {
    pub sources: Vec<Source>,
}

/// A parsed record: named fields with borrowed text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDocument<'a> {
    pub fields: Vec<(&'static str, &'a str)>,
}

impl Source {
    /// Byte ranges of the records in this source.
    pub fn record_ranges(&self) -> Vec<Range<usize>> {
        let text = std::str::from_utf8(&self.data).expect("sources are UTF-8");
        match self.format {
            FormatKind::Medline => split_blank_separated(text),
            FormatKind::TrecWeb => split_doc_tagged(text),
            FormatKind::Message => split_mbox(text),
        }
    }

    /// Parse the record at `range` into fields.
    pub fn parse_record(&self, range: Range<usize>) -> RawDocument<'_> {
        let text = std::str::from_utf8(&self.data[range]).expect("sources are UTF-8");
        match self.format {
            FormatKind::Medline => parse_medline(text),
            FormatKind::TrecWeb => parse_trec(text),
            FormatKind::Message => parse_message(text),
        }
    }
}

impl SourceSet {
    pub fn total_bytes(&self) -> u64 {
        self.sources.iter().map(|s| s.data.len() as u64).sum()
    }

    pub fn total_records(&self) -> usize {
        self.sources.iter().map(|s| s.record_ranges().len()).sum()
    }

    /// Per-source sizes, for partitioning.
    pub fn sizes(&self) -> Vec<u64> {
        self.sources.iter().map(|s| s.data.len() as u64).collect()
    }
}

/// Frame records separated by one or more blank lines.
fn split_blank_separated(text: &str) -> Vec<Range<usize>> {
    let bytes = text.as_bytes();
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut at = 0usize;
    while at < bytes.len() {
        // A record ends at "\n\n".
        if bytes[at] == b'\n' && at + 1 < bytes.len() && bytes[at + 1] == b'\n' {
            if at > start {
                ranges.push(start..at + 1);
            }
            at += 2;
            while at < bytes.len() && bytes[at] == b'\n' {
                at += 1;
            }
            start = at;
        } else {
            at += 1;
        }
    }
    if start < bytes.len() && bytes[start..].iter().any(|&b| b != b'\n') {
        ranges.push(start..bytes.len());
    }
    ranges
}

/// Frame `<DOC> … </DOC>` records.
fn split_doc_tagged(text: &str) -> Vec<Range<usize>> {
    let mut ranges = Vec::new();
    let mut at = 0usize;
    while let Some(open_rel) = text[at..].find("<DOC>") {
        let open = at + open_rel;
        let Some(close_rel) = text[open..].find("</DOC>") else {
            break;
        };
        let close = open + close_rel + "</DOC>".len();
        ranges.push(open..close);
        at = close;
    }
    ranges
}

/// Parse a MEDLINE record: `XXXX- value` tagged lines.
fn parse_medline(text: &str) -> RawDocument<'_> {
    let mut fields = Vec::new();
    for line in text.lines() {
        // Tags are 6 ASCII bytes ("PMID- ", "TI  - "); skip lines whose
        // sixth byte is not a character boundary (non-ASCII junk).
        if line.len() < 6 || !line.is_char_boundary(6) {
            continue;
        }
        let (tag, rest) = line.split_at(6);
        let name = match tag.trim_end_matches([' ', '-']) {
            "PMID" => "pmid",
            "TI" => "title",
            "AB" => "abstract",
            "MH" => "mesh",
            "AU" => "author",
            _ => continue,
        };
        fields.push((name, rest.trim()));
    }
    RawDocument { fields }
}

/// Parse a TREC web record: DOCNO, DOCHDR URL, and the HTML body.
fn parse_trec(text: &str) -> RawDocument<'_> {
    let mut fields = Vec::new();
    if let Some(docno) = extract_between(text, "<DOCNO>", "</DOCNO>") {
        fields.push(("docno", docno.trim()));
    }
    if let Some(hdr) = extract_between(text, "<DOCHDR>", "</DOCHDR>") {
        fields.push(("url", hdr.trim()));
    }
    // The body is everything after the DOCHDR block (or after DOCNO when
    // no header is present), up to the closing </DOC>.
    let body_start = text
        .find("</DOCHDR>")
        .map(|i| i + "</DOCHDR>".len())
        .or_else(|| text.find("</DOCNO>").map(|i| i + "</DOCNO>".len()))
        .unwrap_or(0);
    let body_end = text.rfind("</DOC>").unwrap_or(text.len());
    if body_start < body_end {
        fields.push(("body", text[body_start..body_end].trim()));
    }
    RawDocument { fields }
}

/// Frame mbox-style messages: a record starts at each line beginning
/// with `From ` (the classic mbox envelope separator).
fn split_mbox(text: &str) -> Vec<Range<usize>> {
    let mut starts = Vec::new();
    let bytes = text.as_bytes();
    let mut at = 0usize;
    while at < bytes.len() {
        if text[at..].starts_with("From ") {
            starts.push(at);
        }
        match bytes[at..].iter().position(|&b| b == b'\n') {
            Some(nl) => at += nl + 1,
            None => break,
        }
    }
    let mut ranges = Vec::with_capacity(starts.len());
    for (i, &s) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(bytes.len());
        ranges.push(s..end);
    }
    ranges
}

/// Parse a message: the envelope author, the `Subject:` header, and the
/// body (everything after the first blank line).
fn parse_message(text: &str) -> RawDocument<'_> {
    let mut fields = Vec::new();
    if let Some(envelope) = text.lines().next() {
        if let Some(author) = envelope.strip_prefix("From ") {
            let author = author.split_whitespace().next().unwrap_or("");
            if !author.is_empty() {
                fields.push(("author", author));
            }
        }
    }
    for line in text.lines().take(8) {
        if let Some(subject) = line.strip_prefix("Subject:") {
            fields.push(("title", subject.trim()));
            break;
        }
    }
    // Body: after the first blank line.
    if let Some(pos) = text.find("\n\n") {
        let body = text[pos + 2..].trim();
        if !body.is_empty() {
            fields.push(("body", body));
        }
    }
    RawDocument { fields }
}

fn extract_between<'a>(text: &'a str, open: &str, close: &str) -> Option<&'a str> {
    let start = text.find(open)? + open.len();
    let end = start + text[start..].find(close)?;
    Some(&text[start..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medline_source() -> Source {
        Source {
            name: "pm0".into(),
            format: FormatKind::Medline,
            data: b"PMID- 1\nTI  - alpha beta\nAB  - gamma delta epsilon\nMH  - zeta; eta\n\n\
PMID- 2\nTI  - second title\nAB  - second abstract text\n\n"
                .to_vec(),
        }
    }

    fn trec_source() -> Source {
        Source {
            name: "gx0".into(),
            format: FormatKind::TrecWeb,
            data: b"<DOC>\n<DOCNO>GX1</DOCNO>\n<DOCHDR>\nhttp://a.gov/x\n</DOCHDR>\n\
<html><body>hello world words</body></html>\n</DOC>\n\
<DOC>\n<DOCNO>GX2</DOCNO>\n<DOCHDR>\nhttp://b.gov/y\n</DOCHDR>\n<html>more text here</html>\n</DOC>\n"
                .to_vec(),
        }
    }

    #[test]
    fn medline_framing_finds_both_records() {
        let s = medline_source();
        let r = s.record_ranges();
        assert_eq!(r.len(), 2);
        assert!(std::str::from_utf8(&s.data[r[0].clone()])
            .unwrap()
            .starts_with("PMID- 1"));
        assert!(std::str::from_utf8(&s.data[r[1].clone()])
            .unwrap()
            .starts_with("PMID- 2"));
    }

    #[test]
    fn medline_fields_parsed() {
        let s = medline_source();
        let r = s.record_ranges();
        let doc = s.parse_record(r[0].clone());
        let get = |n: &str| doc.fields.iter().find(|(k, _)| *k == n).map(|(_, v)| *v);
        assert_eq!(get("pmid"), Some("1"));
        assert_eq!(get("title"), Some("alpha beta"));
        assert_eq!(get("abstract"), Some("gamma delta epsilon"));
        assert_eq!(get("mesh"), Some("zeta; eta"));
    }

    #[test]
    fn trec_framing_finds_both_docs() {
        let s = trec_source();
        let r = s.record_ranges();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn trec_fields_parsed() {
        let s = trec_source();
        let r = s.record_ranges();
        let doc = s.parse_record(r[0].clone());
        let get = |n: &str| doc.fields.iter().find(|(k, _)| *k == n).map(|(_, v)| *v);
        assert_eq!(get("docno"), Some("GX1"));
        assert_eq!(get("url"), Some("http://a.gov/x"));
        assert!(get("body").unwrap().contains("hello world words"));
    }

    #[test]
    fn empty_source_has_no_records() {
        for format in [FormatKind::Medline, FormatKind::TrecWeb] {
            let s = Source {
                name: "e".into(),
                data: Vec::new(),
                format,
            };
            assert!(s.record_ranges().is_empty());
        }
    }

    #[test]
    fn truncated_trec_doc_ignored() {
        let s = Source {
            name: "t".into(),
            format: FormatKind::TrecWeb,
            data: b"<DOC><DOCNO>GX9</DOCNO> unterminated".to_vec(),
        };
        assert!(s.record_ranges().is_empty());
    }

    fn message_source() -> Source {
        Source {
            name: "mbox0".into(),
            format: FormatKind::Message,
            data: b"From analyst3 Mon Jan 5 08:00:00 2004\nSubject: quarterly threat summary\n\nBody words one two three.\nFrom analyst9 Mon Jan 5 09:12:00 2004\nSubject: re quarterly threat summary\n\nreply body text here.\n"
                .to_vec(),
        }
    }

    #[test]
    fn mbox_framing_finds_both_messages() {
        let s = message_source();
        let r = s.record_ranges();
        assert_eq!(r.len(), 2);
        assert!(std::str::from_utf8(&s.data[r[1].clone()])
            .unwrap()
            .starts_with("From analyst9"));
    }

    #[test]
    fn message_fields_parsed() {
        let s = message_source();
        let doc = s.parse_record(s.record_ranges()[0].clone());
        let get = |n: &str| doc.fields.iter().find(|(k, _)| *k == n).map(|(_, v)| *v);
        assert_eq!(get("author"), Some("analyst3"));
        assert_eq!(get("title"), Some("quarterly threat summary"));
        assert!(get("body").unwrap().contains("one two three"));
    }

    #[test]
    fn mbox_without_body_still_frames() {
        let s = Source {
            name: "m".into(),
            format: FormatKind::Message,
            data: b"From someone\nSubject: headers only\n".to_vec(),
        };
        let r = s.record_ranges();
        assert_eq!(r.len(), 1);
        let doc = s.parse_record(r[0].clone());
        assert!(doc.fields.iter().any(|(k, _)| *k == "title"));
        assert!(!doc.fields.iter().any(|(k, _)| *k == "body"));
    }

    #[test]
    fn sourceset_totals() {
        let set = SourceSet {
            sources: vec![medline_source(), trec_source()],
        };
        assert_eq!(set.total_records(), 4);
        assert_eq!(set.total_bytes(), set.sizes().iter().sum::<u64>());
    }
}
