//! TREC GOV2-like corpus generation (`<DOC>`-framed web pages).
//!
//! GOV2 is *"a large proportion of the crawlable pages in .gov, including
//! HTML and text, plus the extracted text of PDF, Word, and Postscript
//! files"* (§4.1). The salient statistical properties for the engine are
//! heterogeneity and heavy tails: page lengths follow a Pareto-like
//! distribution (many stubs, a few enormous documents), and the text is
//! wrapped in markup. The heavy tail is what makes static byte-balanced
//! partitioning leave term-count imbalance for the indexing stage's
//! dynamic load balancer to fix (Figure 9).

use crate::record::{FormatKind, Source, SourceSet};
use crate::themes::ThemeModel;
use crate::vocab::Vocabulary;
use crate::CorpusSpec;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Pareto shape for body lengths: alpha ≈ 1.3 gives a realistic web tail.
const PARETO_ALPHA: f64 = 1.3;
/// Minimum body length in terms.
const BODY_MIN_TERMS: f64 = 30.0;
/// Cap so one document cannot swallow an entire source. Real GOV2 caps
/// captures at 256 KB; relative to the miniature corpora used in the
/// scaling experiments this keeps a single document a faithful fraction
/// of the whole (granularity matters for load balancing).
const BODY_MAX_TERMS: f64 = 3_000.0;

/// Sample a Pareto(alpha, xm)-distributed body length.
fn pareto_len<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let u: f64 = rng.random::<f64>().max(1e-12);
    (BODY_MIN_TERMS / u.powf(1.0 / PARETO_ALPHA)).min(BODY_MAX_TERMS) as usize
}

fn write_doc<R: Rng + ?Sized>(
    out: &mut String,
    rng: &mut R,
    source_idx: usize,
    doc_idx: usize,
    markup_density: f64,
    vocab: &Vocabulary,
    themes: &ThemeModel,
) {
    let (major, minor) = themes.pick_doc_themes(rng);
    out.push_str("<DOC>\n<DOCNO>GX");
    out.push_str(&format!(
        "{source_idx:03}-{doc_idx:02}-{:07}",
        doc_idx * 131 + 7
    ));
    out.push_str("</DOCNO>\n<DOCHDR>\nhttp://www.site");
    out.push_str(&(source_idx % 50).to_string());
    out.push_str(".gov/section");
    out.push_str(&(doc_idx % 20).to_string());
    out.push_str("/page");
    out.push_str(&doc_idx.to_string());
    out.push_str(".html\n</DOCHDR>\n<html><head><title>");
    let title_len = rng.random_range(3..10);
    for i in 0..title_len {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(vocab.word(themes.sample_token(rng, major, minor)));
    }
    out.push_str("</title></head>\n<body>\n");
    let body_len = pareto_len(rng);
    for i in 0..body_len {
        if i > 0 {
            // Occasional markup noise inside the body, as real extracted
            // web text has.
            if i % 97 == 0 {
                out.push_str("\n<p> ");
            } else {
                out.push(' ');
            }
        }
        if rng.random::<f64>() < markup_density {
            // Markup filler: bytes the scanner walks but the tokenizer
            // rejects (tags, attributes, numeric junk).
            out.push_str("<td 08 15>");
        } else {
            out.push_str(vocab.word(themes.sample_token(rng, major, minor)));
        }
    }
    out.push_str("\n</body></html>\n</DOC>\n");
}

/// Per-source size weight: crawl chunk files vary moderately in size
/// (mean ≈ 1, range 0.5–1.5).
fn source_weight(seed: u64, si: usize) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        seed.wrapping_mul(0xd1b54a32d192ed03)
            .wrapping_add(si as u64 * 0x9e37),
    );
    0.5 + rng.random::<f64>()
}

/// Number of contiguous crawl regions whose markup character differs.
const DENSITY_REGIONS: usize = 8;

/// Per-source markup density: a crawl is ordered by site, so long **runs**
/// of consecutive files lean link-farm-heavy (lots of markup, few content
/// terms per byte) or text-heavy. Byte-balanced static partitioning
/// therefore does NOT balance term counts — exactly the paper's §3.3
/// observation ("Although the sources were equally distributed to the
/// processes, the term distributions will not be distributed as such"),
/// and the reason the inversion stage needs dynamic load balancing
/// (Figure 9). Returns the fraction of body tokens that are
/// non-indexable markup filler.
fn source_markup_density(seed: u64, si: usize, n_sources: usize) -> f64 {
    let region = (si * DENSITY_REGIONS) / n_sources.max(1);
    let mut region_rng = rand::rngs::StdRng::seed_from_u64(
        seed.wrapping_mul(0xa0761d6478bd642f)
            .wrapping_add(region as u64 * 0x9e3779b9),
    );
    let base: f64 = region_rng.random::<f64>() * 0.5;
    let mut jitter_rng = rand::rngs::StdRng::seed_from_u64(
        seed.wrapping_mul(0xe7037ed1a0b428db)
            .wrapping_add(si as u64 * 0x1657),
    );
    (0.05 + base + 0.08 * jitter_rng.random::<f64>()).min(0.65)
}

/// Generate a TREC-flavoured [`SourceSet`] per `spec`.
pub fn generate(spec: &CorpusSpec, vocab: &Vocabulary, themes: &ThemeModel) -> SourceSet {
    let n_sources = spec.n_sources();
    let sources: Vec<Source> = (0..n_sources)
        .into_par_iter()
        .map(|si| {
            let mut rng = spec.rng_for_source(si);
            let quota =
                ((spec.source_quota() as f64) * source_weight(spec.seed, si)).max(1024.0) as u64;
            let markup_density = source_markup_density(spec.seed, si, n_sources);
            let mut data = String::with_capacity(quota as usize + 16384);
            let mut di = 0usize;
            let slack = (quota / 4).max(1024) as usize;
            while (data.len() as u64) < quota {
                let mut doc = String::new();
                write_doc(&mut doc, &mut rng, si, di, markup_density, vocab, themes);
                // Bound the overshoot of the final (possibly huge,
                // heavy-tailed) document.
                if !data.is_empty() && data.len() + doc.len() > quota as usize + slack {
                    break;
                }
                data.push_str(&doc);
                di += 1;
            }
            Source {
                name: format!("gov2-{si:04}.trec"),
                data: data.into_bytes(),
                format: FormatKind::TrecWeb,
            }
        })
        .collect();
    SourceSet { sources }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_set() -> SourceSet {
        CorpusSpec {
            source_bytes: 64 * 1024,
            ..CorpusSpec::trec(128 * 1024, 5)
        }
        .generate()
    }

    #[test]
    fn docs_parse_back() {
        let set = small_set();
        let mut n = 0;
        for s in &set.sources {
            for r in s.record_ranges() {
                let doc = s.parse_record(r);
                let names: Vec<&str> = doc.fields.iter().map(|(k, _)| *k).collect();
                assert!(names.contains(&"docno"));
                assert!(names.contains(&"url"));
                assert!(names.contains(&"body"));
                n += 1;
            }
        }
        assert!(n > 10, "expected documents, got {n}");
    }

    #[test]
    fn body_lengths_heavy_tailed() {
        let set = small_set();
        let mut lens = Vec::new();
        for s in &set.sources {
            for r in s.record_ranges() {
                let doc = s.parse_record(r);
                if let Some((_, body)) = doc.fields.iter().find(|(k, _)| *k == "body") {
                    lens.push(body.split_whitespace().count() as f64);
                }
            }
        }
        lens.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = lens[lens.len() / 2];
        let max = *lens.last().unwrap();
        // Heavy tail: the largest document dwarfs the median.
        assert!(
            max > 6.0 * median,
            "tail too light: median {median}, max {max}"
        );
    }

    #[test]
    fn pareto_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let l = pareto_len(&mut rng);
            assert!(l >= BODY_MIN_TERMS as usize - 1);
            assert!(l <= BODY_MAX_TERMS as usize);
        }
    }

    #[test]
    fn urls_are_gov() {
        let set = small_set();
        let s = &set.sources[0];
        let r = s.record_ranges();
        let doc = s.parse_record(r[0].clone());
        let url = doc.fields.iter().find(|(k, _)| *k == "url").unwrap().1;
        assert!(url.contains(".gov/"), "url {url}");
    }
}
