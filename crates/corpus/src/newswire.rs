//! Newswire / message-traffic corpus generation (mbox-framed messages).
//!
//! The paper's introduction motivates visual analytics with *"technical
//! reports, web data, newswire feeds and message traffic"*. This flavour
//! models the last one: short messages (tens of tokens), threaded —
//! replies share the original's theme and subject, producing the strong
//! burstiness characteristic of message traffic (long reply chains about
//! one topic).

use crate::record::{FormatKind, Source, SourceSet};
use crate::themes::ThemeModel;
use crate::vocab::Vocabulary;
use crate::CorpusSpec;
use rand::Rng;
use rayon::prelude::*;

/// Mean body length in tokens (messages are short).
const BODY_MEAN: usize = 45;
/// Probability that the next message continues the current thread.
const REPLY_PROB: f64 = 0.6;

struct Thread {
    major: Option<usize>,
    minor: Option<usize>,
    subject: Vec<usize>,
    replies: usize,
}

fn new_thread<R: Rng + ?Sized>(rng: &mut R, themes: &ThemeModel) -> Thread {
    let (major, minor) = themes.pick_doc_themes(rng);
    let subject_len = rng.random_range(3..7);
    let subject = (0..subject_len)
        .map(|_| themes.sample_token(rng, major, minor))
        .collect();
    Thread {
        major,
        minor,
        subject,
        replies: 0,
    }
}

fn write_message<R: Rng + ?Sized>(
    out: &mut String,
    rng: &mut R,
    thread: &Thread,
    seq: usize,
    vocab: &Vocabulary,
    themes: &ThemeModel,
) {
    out.push_str("From analyst");
    out.push_str(&(seq % 97).to_string());
    out.push_str(" Mon Jan 5 0");
    out.push_str(&(seq % 10).to_string());
    out.push_str(":00:00 2004\nSubject:");
    if thread.replies > 0 {
        out.push_str(" re");
    }
    for &w in &thread.subject {
        out.push(' ');
        out.push_str(vocab.word(w));
    }
    out.push_str("\n\n");
    let len = (BODY_MEAN as f64 * (0.4 + 1.2 * rng.random::<f64>())) as usize;
    for i in 0..len.max(5) {
        if i > 0 {
            out.push(if i % 13 == 0 { '\n' } else { ' ' });
        }
        out.push_str(vocab.word(themes.sample_token(rng, thread.major, thread.minor)));
    }
    out.push('\n');
}

/// Generate a newswire/message-traffic [`SourceSet`] per `spec`.
pub fn generate(spec: &CorpusSpec, vocab: &Vocabulary, themes: &ThemeModel) -> SourceSet {
    let n_sources = spec.n_sources();
    let sources: Vec<Source> = (0..n_sources)
        .into_par_iter()
        .map(|si| {
            let mut rng = spec.rng_for_source(si);
            let quota = spec.source_quota();
            let mut data = String::with_capacity(quota as usize + 2048);
            let mut thread = new_thread(&mut rng, themes);
            let mut seq = si * 1000;
            let slack = (quota / 4).max(512) as usize;
            while (data.len() as u64) < quota {
                let mut msg = String::new();
                write_message(&mut msg, &mut rng, &thread, seq, vocab, themes);
                if !data.is_empty() && data.len() + msg.len() > quota as usize + slack {
                    break;
                }
                data.push_str(&msg);
                seq += 1;
                if rng.random::<f64>() < REPLY_PROB {
                    thread.replies += 1;
                } else {
                    thread = new_thread(&mut rng, themes);
                }
            }
            Source {
                name: format!("traffic{si:04}.mbox"),
                data: data.into_bytes(),
                format: FormatKind::Message,
            }
        })
        .collect();
    SourceSet { sources }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_set() -> SourceSet {
        CorpusSpec::newswire(96 * 1024, 5).generate()
    }

    #[test]
    fn messages_parse_back() {
        let set = small_set();
        let mut n = 0;
        for s in &set.sources {
            for r in s.record_ranges() {
                let doc = s.parse_record(r);
                let names: Vec<&str> = doc.fields.iter().map(|(k, _)| *k).collect();
                assert!(names.contains(&"author"));
                assert!(names.contains(&"title"));
                assert!(names.contains(&"body"));
                n += 1;
            }
        }
        assert!(n > 100, "expected many short messages, got {n}");
    }

    #[test]
    fn messages_are_short() {
        let set = small_set();
        let stats = crate::CorpusStats::measure(&set);
        assert!(
            stats.mean_record_tokens < 80.0,
            "mean {} too long for message traffic",
            stats.mean_record_tokens
        );
    }

    #[test]
    fn threads_reuse_subjects() {
        // Reply chains mean duplicate subjects (modulo the "re" prefix).
        let set = small_set();
        let s = &set.sources[0];
        let mut subjects = Vec::new();
        for r in s.record_ranges() {
            let doc = s.parse_record(r);
            if let Some((_, t)) = doc.fields.iter().find(|(k, _)| *k == "title") {
                subjects.push(t.trim_start_matches("re ").to_string());
            }
        }
        let distinct: std::collections::HashSet<&String> = subjects.iter().collect();
        assert!(
            distinct.len() * 3 < subjects.len() * 2,
            "no threading: {} distinct of {}",
            distinct.len(),
            subjects.len()
        );
    }

    #[test]
    fn deterministic() {
        let a = CorpusSpec::newswire(32 * 1024, 9).generate();
        let b = CorpusSpec::newswire(32 * 1024, 9).generate();
        assert_eq!(a.sources[0].data, b.sources[0].data);
    }
}
