//! Latent theme model for token generation.
//!
//! Real document collections have topical structure: a biomedical abstract
//! about cardiology draws repeatedly from a cardiology-specific vocabulary
//! on top of general language. That *burstiness* is precisely what the
//! engine's Bookstein topicality measure detects, and the topical grouping
//! is what k-means clustering and the ThemeView terrain recover. A plain
//! Zipf stream would have neither, so documents are generated from a
//! mixture model:
//!
//! * a **background** Zipf distribution over the whole vocabulary, and
//! * `n_themes` **themes**, each a Zipf distribution over its own subset
//!   of mid-frequency words (head words are too common to discriminate,
//!   matching how real content-bearing words sit in the middle of the
//!   frequency spectrum).
//!
//! Each document picks one dominant theme (and optionally a minor theme)
//! and samples each token from theme or background according to a mixing
//! ratio.

use crate::vocab::Vocabulary;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fraction of tokens drawn from the document's themes (vs background).
pub const THEME_MIX: f64 = 0.45;
/// Fraction of documents with no theme at all (off-topic strays — every
/// real collection has them, and they are what produces the paper's
/// null/weak signatures when the topic space is too small, §4.2).
pub const STRAY_FRACTION: f64 = 0.08;
/// Words per theme.
pub const THEME_WORDS: usize = 400;

/// A set of latent themes over a vocabulary.
#[derive(Debug, Clone)]
pub struct ThemeModel {
    /// `topics[k]` lists the vocabulary ranks belonging to theme `k`,
    /// most characteristic first.
    pub themes: Vec<Vec<usize>>,
    /// Within-theme rank distribution.
    theme_zipf: Zipf,
    /// Background distribution over the full vocabulary.
    background: Zipf,
}

impl ThemeModel {
    /// Build `n_themes` themes over `vocab`, deterministically from `seed`.
    pub fn build(vocab: &Vocabulary, n_themes: usize, seed: u64) -> Self {
        assert!(n_themes > 0, "need at least one theme");
        let v = vocab.len();
        let mut rng = StdRng::seed_from_u64(seed);
        // Candidate pool: mid-frequency ranks (skip the stopword-like head
        // and the ultra-rare tail).
        let lo = (v / 100).max(16).min(v.saturating_sub(1));
        let hi = (v * 3 / 4).max(lo + 1).min(v);
        let pool: Vec<usize> = (lo..hi).collect();
        let words_per_theme = THEME_WORDS.min(pool.len() / n_themes.max(1)).max(1);
        let mut themes = Vec::with_capacity(n_themes);
        // Partition the pool by striding so themes overlap little.
        let mut shuffled = pool;
        // Fisher-Yates with the seeded RNG.
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..=i);
            shuffled.swap(i, j);
        }
        for k in 0..n_themes {
            let start = k * words_per_theme;
            let end = ((k + 1) * words_per_theme).min(shuffled.len());
            themes.push(shuffled[start..end].to_vec());
        }
        ThemeModel {
            themes,
            theme_zipf: Zipf::new(words_per_theme, 0.8),
            background: Zipf::new(v, 1.05),
        }
    }

    pub fn n_themes(&self) -> usize {
        self.themes.len()
    }

    /// Pick the dominant (and optional minor) theme for a new document.
    /// Strays ([`STRAY_FRACTION`]) have no theme and draw purely from the
    /// background.
    pub fn pick_doc_themes<R: Rng + ?Sized>(&self, rng: &mut R) -> (Option<usize>, Option<usize>) {
        if rng.random::<f64>() < STRAY_FRACTION {
            return (None, None);
        }
        let major = rng.random_range(0..self.themes.len());
        let minor = if rng.random::<f64>() < 0.3 {
            Some(rng.random_range(0..self.themes.len()))
        } else {
            None
        };
        (Some(major), minor)
    }

    /// Sample one token (vocabulary rank) for a document with the given
    /// themes.
    pub fn sample_token<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        major: Option<usize>,
        minor: Option<usize>,
    ) -> usize {
        let u: f64 = rng.random();
        let Some(major) = major else {
            return self.background.sample(rng);
        };
        if u < THEME_MIX {
            let theme = match minor {
                Some(m) if rng.random::<f64>() < 0.35 => m,
                _ => major,
            };
            let words = &self.themes[theme];
            let idx = self.theme_zipf.sample(rng).min(words.len() - 1);
            words[idx]
        } else {
            self.background.sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Flavour;

    fn model() -> (Vocabulary, ThemeModel) {
        let v = Vocabulary::synthesize(Flavour::Medical, 8000, 3);
        let t = ThemeModel::build(&v, 8, 4);
        (v, t)
    }

    #[test]
    fn themes_are_disjoint() {
        let (_, t) = model();
        let mut seen = std::collections::HashSet::new();
        for theme in &t.themes {
            for &w in theme {
                assert!(seen.insert(w), "rank {w} in two themes");
            }
        }
    }

    #[test]
    fn theme_words_are_mid_frequency() {
        let (v, t) = model();
        for theme in &t.themes {
            for &w in theme {
                assert!(w >= 16, "head rank {w} should not be thematic");
                assert!(w < v.len());
            }
        }
    }

    #[test]
    fn tokens_in_vocab_range() {
        let (v, t) = model();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let (major, minor) = t.pick_doc_themes(&mut rng);
            let tok = t.sample_token(&mut rng, major, minor);
            assert!(tok < v.len());
        }
    }

    #[test]
    fn documents_of_same_theme_share_vocabulary() {
        let (_, t) = model();
        let mut rng = StdRng::seed_from_u64(2);
        // Sample two documents from theme 0 and one from theme 5; theme-0
        // docs must overlap more in theme words.
        let doc = |theme: usize, rng: &mut StdRng| -> std::collections::HashSet<usize> {
            (0..300)
                .map(|_| t.sample_token(rng, Some(theme), None))
                .collect()
        };
        let a = doc(0, &mut rng);
        let b = doc(0, &mut rng);
        let c = doc(5, &mut rng);
        let theme0: std::collections::HashSet<usize> = t.themes[0].iter().copied().collect();
        let ab: usize = a.intersection(&b).filter(|w| theme0.contains(w)).count();
        let ac: usize = a.intersection(&c).filter(|w| theme0.contains(w)).count();
        assert!(
            ab > 3 * ac.max(1),
            "same-theme overlap {ab} should dwarf cross-theme {ac}"
        );
    }

    #[test]
    fn deterministic_model() {
        let v = Vocabulary::synthesize(Flavour::Web, 4000, 9);
        let a = ThemeModel::build(&v, 5, 77);
        let b = ThemeModel::build(&v, 5, 77);
        assert_eq!(a.themes, b.themes);
    }
}
