//! Static partitioning of sources across processes.
//!
//! §3.2: *"The source datasets are partitioned equally into a distinct set
//! of documents and distributed among processes. This static partitioning
//! of sources is based on the size of individual documents/records (bytes)
//! and ensures load balance when distributed."*
//!
//! Two strategies:
//!
//! * [`partition_contiguous`] — contiguous ranges of sources whose byte
//!   boundaries approximate equal shares (what a file-list split does, and
//!   the engine's default).
//! * [`partition_lpt`] — greedy longest-processing-time bin packing, a
//!   tighter balance used for comparison in ablation benchmarks.

use std::ops::Range;

/// Split `sizes` into `p` contiguous ranges with near-equal byte totals.
/// Every index is assigned to exactly one range; empty ranges are possible
/// when there are fewer items than partitions.
pub fn partition_contiguous(sizes: &[u64], p: usize) -> Vec<Range<usize>> {
    assert!(p > 0);
    let total: u64 = sizes.iter().sum();
    let mut out = Vec::with_capacity(p);
    let mut start = 0usize;
    let mut acc: u64 = 0;
    for r in 0..p {
        // Ideal cumulative boundary for the end of partition r.
        let target = total as f64 * (r + 1) as f64 / p as f64;
        let mut end = start;
        // Remaining partitions must each be able to stay non-degenerate:
        // leave at least (p - 1 - r) items behind if possible.
        let reserve = p - 1 - r;
        while end < sizes.len().saturating_sub(reserve) {
            let next = acc + sizes[end];
            // Stop when passing the target makes balance worse.
            if next as f64 >= target {
                let overshoot = next as f64 - target;
                let undershoot = target - acc as f64;
                if end > start && overshoot > undershoot {
                    break;
                }
                acc = next;
                end += 1;
                break;
            }
            acc = next;
            end += 1;
        }
        out.push(start..end);
        start = end;
    }
    // Any remainder goes to the last partition.
    if start < sizes.len() {
        out.last_mut().unwrap().end = sizes.len();
    }
    out
}

/// Greedy LPT: assign each item (largest first) to the currently lightest
/// bin. Returns, per bin, the item indices it received.
pub fn partition_lpt(sizes: &[u64], p: usize) -> Vec<Vec<usize>> {
    assert!(p > 0);
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(sizes[i]));
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); p];
    let mut loads = vec![0u64; p];
    for i in order {
        let lightest = (0..p).min_by_key(|&b| loads[b]).unwrap();
        loads[lightest] += sizes[i];
        bins[lightest].push(i);
    }
    bins
}

/// Max/mean byte imbalance of a contiguous partition (1.0 = perfect).
pub fn imbalance(sizes: &[u64], parts: &[Range<usize>]) -> f64 {
    let loads: Vec<u64> = parts
        .iter()
        .map(|r| sizes[r.clone()].iter().sum::<u64>())
        .collect();
    let max = *loads.iter().max().unwrap_or(&0) as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_covers_everything_once() {
        let sizes = vec![5, 1, 9, 2, 2, 7, 3, 8, 1, 1];
        for p in 1..=10 {
            let parts = partition_contiguous(&sizes, p);
            assert_eq!(parts.len(), p);
            let mut covered = Vec::new();
            for r in &parts {
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..sizes.len()).collect::<Vec<_>>(), "p={p}");
        }
    }

    #[test]
    fn contiguous_balances_uniform_sizes() {
        let sizes = vec![10u64; 100];
        let parts = partition_contiguous(&sizes, 4);
        for r in &parts {
            assert_eq!(r.len(), 25);
        }
        assert!((imbalance(&sizes, &parts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn contiguous_handles_fewer_items_than_parts() {
        let sizes = vec![3u64, 4];
        let parts = partition_contiguous(&sizes, 5);
        let total: usize = parts.iter().map(|r| r.len()).sum();
        assert_eq!(total, 2);
        assert_eq!(parts.len(), 5);
    }

    #[test]
    fn lpt_assigns_each_item_once() {
        let sizes = vec![9u64, 8, 7, 1, 1, 1, 1, 1, 1];
        let bins = partition_lpt(&sizes, 3);
        let mut all: Vec<usize> = bins.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn lpt_beats_or_matches_contiguous_on_skewed_sizes() {
        let sizes: Vec<u64> = (0..64).map(|i| if i % 13 == 0 { 100 } else { 3 }).collect();
        let p = 8;
        let cont = partition_contiguous(&sizes, p);
        let cont_imb = imbalance(&sizes, &cont);
        let bins = partition_lpt(&sizes, p);
        let loads: Vec<u64> = bins
            .iter()
            .map(|b| b.iter().map(|&i| sizes[i]).sum())
            .collect();
        let lpt_imb =
            *loads.iter().max().unwrap() as f64 / (loads.iter().sum::<u64>() as f64 / p as f64);
        assert!(
            lpt_imb <= cont_imb + 1e-9,
            "lpt {lpt_imb} vs cont {cont_imb}"
        );
    }

    #[test]
    fn empty_input() {
        let parts = partition_contiguous(&[], 3);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|r| r.is_empty()));
        let bins = partition_lpt(&[], 3);
        assert!(bins.iter().all(|b| b.is_empty()));
    }
}
