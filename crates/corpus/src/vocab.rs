//! Synthetic vocabulary generation.
//!
//! Builds a deterministic list of pronounceable pseudo-words with a domain
//! flavour. The words carry no meaning — they only need to be distinct,
//! realistic in length, and stable across runs so corpora are reproducible
//! and downstream theme labels are readable.

use intern::TermInterner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which corpus the vocabulary imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavour {
    /// PubMed-like biomedical language.
    Medical,
    /// GOV2-like web/government language.
    Web,
    /// Newswire / message-traffic language (reuses the web lexicon with a
    /// reporting flavour).
    Newswire,
}

const MEDICAL_PREFIX: &[&str] = &[
    "cardi", "neur", "hepat", "derm", "gastr", "immun", "onc", "path", "cyt", "hem", "nephr",
    "oste", "pulmon", "vascul", "lymph", "thromb", "glyc", "lip", "prote", "gen",
];
const MEDICAL_SUFFIX: &[&str] = &[
    "itis", "osis", "emia", "ectomy", "ology", "ocyte", "ase", "ide", "ine", "oma", "pathy",
    "gram", "plasty", "trophy", "genesis", "lysis", "phage", "statin", "mycin", "azole",
];
const WEB_PREFIX: &[&str] = &[
    "fed", "gov", "pol", "reg", "stat", "pub", "com", "leg", "jud", "adm", "sec", "dep", "bur",
    "cit", "nat", "loc", "rep", "sen", "cong", "dist",
];
const WEB_SUFFIX: &[&str] = &[
    "eral",
    "ance",
    "icy",
    "ulation",
    "ute",
    "lication",
    "mittee",
    "islation",
    "iciary",
    "inistration",
    "urity",
    "artment",
    "eau",
    "izen",
    "ional",
    "ality",
    "ort",
    "ate",
    "ress",
    "rict",
];
const MIDDLE: &[&str] = &[
    "a", "e", "i", "o", "u", "ar", "er", "ir", "or", "ur", "al", "el", "il", "ol", "ul", "an",
    "en", "in", "on", "un", "ab", "eb", "ib", "ob", "ub",
];

/// A closed synthetic vocabulary: `word(rank)` for Zipf rank `rank`.
/// Interner-backed: one byte arena instead of one heap `String` per word,
/// and the interner doubles as the collision check during synthesis.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    pub flavour: Flavour,
    words: TermInterner,
}

impl Vocabulary {
    /// Deterministically synthesize `size` distinct words.
    pub fn synthesize(flavour: Flavour, size: usize, seed: u64) -> Self {
        let (prefixes, suffixes) = match flavour {
            Flavour::Medical => (MEDICAL_PREFIX, MEDICAL_SUFFIX),
            Flavour::Web | Flavour::Newswire => (WEB_PREFIX, WEB_SUFFIX),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut words = TermInterner::with_capacity(size, 12);
        let mut w = String::with_capacity(32);
        while words.len() < size {
            let p = prefixes[rng.random_range(0..prefixes.len())];
            let s = suffixes[rng.random_range(0..suffixes.len())];
            let n_mid = rng.random_range(0..3);
            w.clear();
            w.push_str(p);
            for _ in 0..n_mid {
                w.push_str(MIDDLE[rng.random_range(0..MIDDLE.len())]);
            }
            w.push_str(s);
            // Disambiguate collisions with a short numeric tail so the
            // vocabulary always reaches the requested size.
            let (_, fresh) = words.intern(&w);
            if !fresh {
                use std::fmt::Write;
                let tag = words.len() % 97;
                write!(w, "{tag}").unwrap();
                words.intern(&w);
            }
        }
        Vocabulary { flavour, words }
    }

    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at Zipf rank `r`.
    pub fn word(&self, r: usize) -> &str {
        self.words.get(r as u32)
    }

    /// Words in Zipf-rank order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        self.words.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_and_distinct() {
        let v = Vocabulary::synthesize(Flavour::Medical, 5000, 11);
        assert_eq!(v.len(), 5000);
        let set: std::collections::HashSet<&str> = v.iter().collect();
        assert_eq!(set.len(), 5000);
    }

    #[test]
    fn deterministic() {
        let a = Vocabulary::synthesize(Flavour::Web, 1000, 5);
        let b = Vocabulary::synthesize(Flavour::Web, 1000, 5);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }

    #[test]
    fn flavours_differ() {
        let m = Vocabulary::synthesize(Flavour::Medical, 100, 5);
        let w = Vocabulary::synthesize(Flavour::Web, 100, 5);
        assert_ne!(m.iter().collect::<Vec<_>>(), w.iter().collect::<Vec<_>>());
    }

    #[test]
    fn words_are_lowercase_alphanumeric() {
        let v = Vocabulary::synthesize(Flavour::Medical, 2000, 13);
        for w in v.iter() {
            assert!(w
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            assert!(w.len() >= 3, "{w} too short");
        }
    }
}
