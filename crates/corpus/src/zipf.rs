//! Zipf-distributed sampling over ranked items.
//!
//! Term frequencies in natural-language text follow a Zipf law: the
//! `r`-th most frequent word has probability proportional to `1 / r^s`
//! with `s ≈ 1`. The sampler precomputes the cumulative distribution and
//! draws by binary search, which is fast, exact, and deterministic given
//! the caller's RNG.

use rand::Rng;

/// A Zipf sampler over ranks `0..n` (rank 0 most probable).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point shortfall at the right edge.
        *cumulative.last_mut().unwrap() = 1.0;
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[r] - self.cumulative[r - 1]
        }
    }

    /// Draw one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 1.07);
        let total: f64 = (0..z.len()).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_most_probable() {
        let z = Zipf::new(100, 1.0);
        for r in 1..100 {
            assert!(z.pmf(0) >= z.pmf(r));
        }
    }

    #[test]
    fn samples_within_range_and_skewed() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!(r < 50);
            counts[r] += 1;
        }
        // Head rank should dominate the tail rank decisively.
        assert!(counts[0] > 10 * counts[49].max(1));
        // Empirical mass of rank 0 should be near its pmf.
        let emp = counts[0] as f64 / 20_000.0;
        assert!((emp - z.pmf(0)).abs() < 0.02, "emp {emp} pmf {}", z.pmf(0));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }
}
