//! The generation manifest: the single source of truth for what an
//! ingest directory currently serves.
//!
//! The manifest is a small text file rewritten atomically (tmp +
//! rename) on every state change; its last line is a CRC32 over every
//! preceding byte so a torn rename target or bit rot is rejected rather
//! than half-trusted. Readers that race a writer see either the old or
//! the new generation, never a mix — this is the "atomic generation
//! flip" the serving tier polls.
//!
//! ```text
//! inspire-ingest-manifest v1
//! generation 7
//! base /abs/path/base.isnap     (or `-` when there is no base yet)
//! base_docs 1280
//! wal_sealed_bytes 18231
//! last_seal_unix 1765432100
//! next_seq 4
//! segment seg-000001.iseg 1280 64
//! segment seg-000003.iseg 1344 64
//! crc 0x89ab12cd
//! ```
//!
//! Segment files are named by an ever-increasing sequence number, so a
//! crashed sealer or compactor can never collide with a live file; any
//! `seg-*.iseg` on disk that the manifest does not list is a stray from
//! a crash window and is deleted on the next open.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Manifest file name inside an ingest directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
const MAGIC: &str = "inspire-ingest-manifest v1";

/// One live segment, in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRef {
    /// File name relative to the ingest directory.
    pub file: String,
    /// Global id of the segment's first document.
    pub doc_base: u32,
    /// Documents the segment adds (0 for tombstone-only segments).
    pub doc_count: u32,
}

/// Parsed manifest state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Bumped on every visible state change (seal, delete, compaction).
    pub generation: u64,
    /// Next segment sequence number (never reused).
    pub next_seq: u64,
    /// Absolute path of the base engine snapshot, if any.
    pub base: Option<PathBuf>,
    /// Documents in the base snapshot.
    pub base_docs: u32,
    /// WAL prefix already folded into segments; replay seals only
    /// records whose end offset lies past this watermark.
    pub wal_sealed_bytes: u64,
    /// Wall-clock seconds of the most recent seal (0 before the first).
    pub last_seal_unix: u64,
    /// Live segments in ascending `doc_base` order.
    pub segments: Vec<SegmentRef>,
}

fn bad(path: &Path, msg: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {msg}", path.display()),
    )
}

impl Manifest {
    /// Fresh manifest over `base` (already validated by the caller).
    pub fn new(base: Option<PathBuf>, base_docs: u32) -> Manifest {
        Manifest {
            generation: 0,
            next_seq: 1,
            base,
            base_docs,
            wal_sealed_bytes: 0,
            last_seal_unix: 0,
            segments: Vec::new(),
        }
    }

    /// First unassigned global document id: base docs plus everything
    /// the segments added.
    pub fn next_doc_base(&self) -> u32 {
        self.base_docs + self.segments.iter().map(|s| s.doc_count).sum::<u32>()
    }

    /// File name for the next sealed segment.
    pub fn next_segment_file(&self) -> String {
        format!("seg-{:06}.iseg", self.next_seq)
    }

    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    fn render(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("generation {}\n", self.generation));
        match &self.base {
            Some(p) => out.push_str(&format!("base {}\n", p.display())),
            None => out.push_str("base -\n"),
        }
        out.push_str(&format!("base_docs {}\n", self.base_docs));
        out.push_str(&format!("wal_sealed_bytes {}\n", self.wal_sealed_bytes));
        out.push_str(&format!("last_seal_unix {}\n", self.last_seal_unix));
        out.push_str(&format!("next_seq {}\n", self.next_seq));
        for s in &self.segments {
            out.push_str(&format!(
                "segment {} {} {}\n",
                s.file, s.doc_base, s.doc_count
            ));
        }
        out.push_str(&format!(
            "crc 0x{:08x}\n",
            inspire_store::crc32(out.as_bytes())
        ));
        out
    }

    /// Atomically replace the manifest under `dir`.
    pub fn store(&self, dir: &Path) -> io::Result<()> {
        let path = Self::path_in(dir);
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.render().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        // Make the rename itself durable before acknowledging anything
        // that depends on this generation.
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all().ok();
        }
        Ok(())
    }

    /// Load the manifest under `dir`; `Ok(None)` when none exists yet.
    pub fn load(dir: &Path) -> io::Result<Option<Manifest>> {
        let path = Self::path_in(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Self::parse(&path, &text).map(Some)
    }

    fn parse(path: &Path, text: &str) -> io::Result<Manifest> {
        let crc_at = text
            .rfind("crc 0x")
            .ok_or_else(|| bad(path, "missing crc line".into()))?;
        let crc_line = text[crc_at..].trim_end();
        let stored = u32::from_str_radix(crc_line.trim_start_matches("crc 0x"), 16)
            .map_err(|_| bad(path, format!("malformed crc line `{crc_line}`")))?;
        let covered = &text[..crc_at];
        let actual = inspire_store::crc32(covered.as_bytes());
        if actual != stored {
            return Err(bad(
                path,
                format!("checksum mismatch: stored 0x{stored:08x}, computed 0x{actual:08x}"),
            ));
        }
        let mut lines = covered.lines();
        if lines.next() != Some(MAGIC) {
            return Err(bad(path, format!("not a manifest (expected `{MAGIC}`)")));
        }
        let mut m = Manifest::new(None, 0);
        let mut seen_generation = false;
        for line in lines {
            let mut it = line.split_whitespace();
            let key = it.next().unwrap_or("");
            let parse_u64 = |v: Option<&str>| -> io::Result<u64> {
                v.and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(path, format!("malformed line `{line}`")))
            };
            match key {
                "generation" => {
                    m.generation = parse_u64(it.next())?;
                    seen_generation = true;
                }
                "base" => {
                    let v = it
                        .next()
                        .ok_or_else(|| bad(path, format!("malformed line `{line}`")))?;
                    m.base = (v != "-").then(|| PathBuf::from(v));
                }
                "base_docs" => m.base_docs = parse_u64(it.next())? as u32,
                "wal_sealed_bytes" => m.wal_sealed_bytes = parse_u64(it.next())?,
                "last_seal_unix" => m.last_seal_unix = parse_u64(it.next())?,
                "next_seq" => m.next_seq = parse_u64(it.next())?,
                "segment" => {
                    let file = it
                        .next()
                        .ok_or_else(|| bad(path, format!("malformed line `{line}`")))?
                        .to_string();
                    let doc_base = parse_u64(it.next())? as u32;
                    let doc_count = parse_u64(it.next())? as u32;
                    m.segments.push(SegmentRef {
                        file,
                        doc_base,
                        doc_count,
                    });
                }
                "" => {}
                other => return Err(bad(path, format!("unknown manifest key `{other}`"))),
            }
        }
        if !seen_generation {
            return Err(bad(path, "missing generation line".into()));
        }
        // Segments must tile the document space contiguously above the
        // base; a gap means a manifest from one directory is being read
        // against another's files.
        let mut next = m.base_docs;
        for s in &m.segments {
            if s.doc_base != next {
                return Err(bad(
                    path,
                    format!(
                        "segment {} starts at doc {} but {} documents precede it",
                        s.file, s.doc_base, next
                    ),
                ));
            }
            next += s.doc_count;
        }
        Ok(m)
    }
}

/// Read just the generation counter, cheaply enough to poll. Errors
/// (including a mid-flip read) surface as `None` so the poller retries.
pub fn peek_generation(dir: &Path) -> Option<u64> {
    Manifest::load(dir).ok().flatten().map(|m| m.generation)
}

/// Remove crash leftovers: `*.tmp` files and `seg-*.iseg` files the
/// manifest does not list. Both crash windows of the sealer/compactor
/// (file written but manifest not flipped; manifest flipped but old
/// files not yet unlinked) land here. The metrics sidecar
/// (`ingest_metrics.json`, see [`crate::metrics`]) survives — only its
/// own `.tmp` from a crashed atomic rewrite is swept.
pub fn clean_strays(dir: &Path, m: &Manifest) -> io::Result<Vec<PathBuf>> {
    let mut removed = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let is_tmp = name.ends_with(".tmp");
        let is_orphan_seg = name.starts_with("seg-")
            && name.ends_with(".iseg")
            && !m.segments.iter().any(|s| s.file == name);
        if is_tmp || is_orphan_seg {
            std::fs::remove_file(entry.path())?;
            removed.push(entry.path());
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_rejects_corruption_and_checks_tiling() {
        let dir = std::env::temp_dir().join(format!("manifest_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut m = Manifest::new(Some(PathBuf::from("/x/base.isnap")), 100);
        m.generation = 3;
        m.next_seq = 3;
        m.wal_sealed_bytes = 4096;
        m.last_seal_unix = 1_700_000_000;
        m.segments.push(SegmentRef {
            file: "seg-000001.iseg".into(),
            doc_base: 100,
            doc_count: 40,
        });
        m.segments.push(SegmentRef {
            file: "seg-000002.iseg".into(),
            doc_base: 140,
            doc_count: 0,
        });
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap().unwrap(), m);
        assert_eq!(m.next_doc_base(), 140);
        assert_eq!(peek_generation(&dir), Some(3));

        // Any flipped byte in the covered region is rejected.
        let path = Manifest::path_in(&dir);
        let good = std::fs::read(&path).unwrap();
        let mut bad_bytes = good.clone();
        bad_bytes[MAGIC.len() + 12] ^= 1;
        std::fs::write(&path, &bad_bytes).unwrap();
        assert!(Manifest::load(&dir).is_err());
        std::fs::write(&path, &good).unwrap();

        // Strays: unlisted segment and tmp files go, listed ones stay.
        std::fs::write(dir.join("seg-000001.iseg"), b"listed").unwrap();
        std::fs::write(dir.join("seg-000009.iseg"), b"orphan").unwrap();
        std::fs::write(dir.join("seg-000010.iseg.tmp"), b"tmp").unwrap();
        let removed = clean_strays(&dir, &m).unwrap();
        assert_eq!(removed.len(), 2);
        assert!(dir.join("seg-000001.iseg").exists());
        assert!(!dir.join("seg-000009.iseg").exists());

        // A gap in the document tiling is structural corruption.
        m.segments[1].doc_base = 150;
        m.store(&dir).unwrap();
        assert!(Manifest::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
